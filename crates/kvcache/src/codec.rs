//! The KV-cache communication codec.
//!
//! Wraps [`crate::quant`] into the per-request operation a prefill replica
//! performs before shipping a KV cache: quantize → pack → (wire) → unpack →
//! dequantize. Also provides the sizing arithmetic the cost model and the
//! simulator use to turn "`tokens` tokens of model M at 4-bit" into wire
//! bytes.

use crate::quant::{decode_wire, encode_wire, quantize, QuantBits, QuantizedTensor};
use bytes::Bytes;
use serde::{Deserialize, Serialize};
use ts_common::ModelSpec;

/// KV transfer precision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KvWirePrecision {
    /// Uncompressed fp16 (the baseline in Table 8 / Figure 18).
    F16,
    /// 8-bit group-wise quantization.
    Int8 {
        /// Values per scale/zero pair.
        group_size: usize,
    },
    /// 4-bit group-wise quantization (ThunderServe's default).
    Int4 {
        /// Values per scale/zero pair.
        group_size: usize,
    },
    /// 2-bit group-wise quantization (KIVI's most aggressive setting;
    /// trades fidelity for another 2x wire shrink).
    Int2 {
        /// Values per scale/zero pair.
        group_size: usize,
    },
}

impl KvWirePrecision {
    /// ThunderServe's default: int4 with 64-value groups.
    pub const DEFAULT_COMPRESSED: KvWirePrecision = KvWirePrecision::Int4 { group_size: 64 };

    /// Wire bytes per KV element (including amortized metadata).
    pub fn bytes_per_element(&self) -> f64 {
        match *self {
            KvWirePrecision::F16 => 2.0,
            KvWirePrecision::Int8 { group_size } => 1.0 + 8.0 / group_size as f64,
            KvWirePrecision::Int4 { group_size } => 0.5 + 8.0 / group_size as f64,
            KvWirePrecision::Int2 { group_size } => 0.25 + 8.0 / group_size as f64,
        }
    }

    /// Size ratio relative to fp16 — the `compression_ratio` the cost model
    /// plugs into Eq. (1).
    pub fn ratio_vs_f16(&self) -> f64 {
        self.bytes_per_element() / 2.0
    }
}

/// Per-model KV wire codec.
#[derive(Debug, Clone)]
pub struct KvCodec {
    model: ModelSpec,
    precision: KvWirePrecision,
}

impl KvCodec {
    /// Creates a codec for `model` at the given wire precision.
    pub fn new(model: ModelSpec, precision: KvWirePrecision) -> Self {
        KvCodec { model, precision }
    }

    /// The configured precision.
    pub fn precision(&self) -> KvWirePrecision {
        self.precision
    }

    /// Wire bytes for the full-model KV cache of `tokens` tokens.
    pub fn wire_bytes(&self, tokens: u64) -> u64 {
        let elements = self.model.kv_bytes_per_token() / 2; // fp16 elements
        (elements as f64 * tokens as f64 * self.precision.bytes_per_element()).ceil() as u64
    }

    /// Wire bytes for the KV slice of `layers` transformer layers — the
    /// payload of one leg of a multi-stage KV route. The flow-level network
    /// fabric sizes each leg's flow with this.
    pub fn wire_bytes_layers(&self, tokens: u64, layers: usize) -> u64 {
        let elements = self.model.kv_bytes_per_token_layers(layers) / 2; // fp16 elements
        (elements as f64 * tokens as f64 * self.precision.bytes_per_element()).ceil() as u64
    }

    /// Encodes a flat KV tensor for transmission. For quantized precisions
    /// this performs real quantization + packing; fp16 is a plain copy.
    pub fn encode(&self, values: &[f32]) -> Bytes {
        match self.precision {
            KvWirePrecision::F16 => {
                // Model fp16 by truncating mantissas via f32→f16→f32 bit ops
                // is unnecessary for sizing; ship raw little-endian f32
                // halves' worth: we emulate fp16 payload size by packing
                // 2 bytes per element from the f32 bit pattern's top half.
                let mut buf = Vec::with_capacity(values.len() * 2);
                for &v in values {
                    let bits = half_bits(v);
                    buf.extend_from_slice(&bits.to_le_bytes());
                }
                Bytes::from(buf)
            }
            KvWirePrecision::Int8 { group_size } => {
                encode_wire(&quantize(values, QuantBits::Int8, group_size))
            }
            KvWirePrecision::Int4 { group_size } => {
                encode_wire(&quantize(values, QuantBits::Int4, group_size))
            }
            KvWirePrecision::Int2 { group_size } => {
                encode_wire(&quantize(values, QuantBits::Int2, group_size))
            }
        }
    }

    /// Decodes bytes produced by [`KvCodec::encode`] back to f32 values.
    ///
    /// # Errors
    /// Returns a description of the corruption for malformed buffers.
    pub fn decode(&self, wire: &[u8]) -> Result<Vec<f32>, String> {
        match self.precision {
            KvWirePrecision::F16 => {
                if !wire.len().is_multiple_of(2) {
                    return Err("odd fp16 payload length".into());
                }
                Ok(wire
                    .chunks_exact(2)
                    .map(|c| half_to_f32(u16::from_le_bytes([c[0], c[1]])))
                    .collect())
            }
            KvWirePrecision::Int8 { .. }
            | KvWirePrecision::Int4 { .. }
            | KvWirePrecision::Int2 { .. } => {
                let t: QuantizedTensor = decode_wire(wire)?;
                Ok(t.dequantize())
            }
        }
    }
}

/// f32 → IEEE 754 half bits (round-to-nearest-even, no subnormal care needed
/// for KV magnitudes).
fn half_bits(v: f32) -> u16 {
    let bits = v.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xFF) as i32 - 127 + 15;
    let mant = bits & 0x007F_FFFF;
    if exp <= 0 {
        return sign; // flush to zero
    }
    if exp >= 31 {
        return sign | 0x7C00; // infinity
    }
    // round mantissa from 23 to 10 bits
    let mant10 = ((mant + 0x0000_1000) >> 13) as u16;
    if mant10 == 0x0400 {
        // mantissa overflowed into exponent
        return sign | (((exp + 1) as u16) << 10);
    }
    sign | ((exp as u16) << 10) | (mant10 & 0x03FF)
}

/// IEEE 754 half bits → f32.
fn half_to_f32(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = ((h >> 10) & 0x1F) as u32;
    let mant = (h & 0x03FF) as u32;
    let bits = if exp == 0 {
        if mant == 0 {
            sign
        } else {
            // subnormal half — normalize
            let mut e = 127 - 15 + 1;
            let mut m = mant;
            while m & 0x0400 == 0 {
                m <<= 1;
                e -= 1;
            }
            sign | ((e as u32) << 23) | ((m & 0x03FF) << 13)
        }
    } else if exp == 31 {
        sign | 0x7F80_0000 | (mant << 13)
    } else {
        sign | ((exp + 127 - 15) << 23) | (mant << 13)
    };
    f32::from_bits(bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precision_ratios() {
        assert_eq!(KvWirePrecision::F16.ratio_vs_f16(), 1.0);
        let r4 = KvWirePrecision::DEFAULT_COMPRESSED.ratio_vs_f16();
        assert!(r4 > 0.25 && r4 < 0.35, "int4 ratio {r4}");
        let r8 = KvWirePrecision::Int8 { group_size: 64 }.ratio_vs_f16();
        assert!(r8 > 0.5 && r8 < 0.6);
        let r2 = KvWirePrecision::Int2 { group_size: 64 }.ratio_vs_f16();
        assert!(r2 > 0.12 && r2 < 0.2, "int2 ratio {r2}");
    }

    #[test]
    fn int2_codec_round_trips_coarsely() {
        let m = ModelSpec::llama_7b();
        let codec = KvCodec::new(m, KvWirePrecision::Int2 { group_size: 32 });
        let xs: Vec<f32> = (0..640)
            .map(|i| ((i * 13) % 64) as f32 / 32.0 - 1.0)
            .collect();
        let wire = codec.encode(&xs);
        let back = codec.decode(&wire).unwrap();
        assert_eq!(back.len(), xs.len());
        // coarse: within one-third of each group's range
        for (a, b) in xs.iter().zip(&back) {
            assert!((a - b).abs() < 0.7, "{a} vs {b}");
        }
    }

    #[test]
    fn wire_bytes_scale_with_tokens_and_precision() {
        let m = ModelSpec::llama_7b();
        let f16 = KvCodec::new(m.clone(), KvWirePrecision::F16);
        let i4 = KvCodec::new(m.clone(), KvWirePrecision::DEFAULT_COMPRESSED);
        assert_eq!(f16.wire_bytes(100), m.kv_bytes_per_token() * 100);
        let ratio = i4.wire_bytes(100) as f64 / f16.wire_bytes(100) as f64;
        assert!(ratio < 0.35, "ratio {ratio}");
    }

    #[test]
    fn layer_subset_wire_bytes_partition_the_whole() {
        let m = ModelSpec::llama_7b();
        let codec = KvCodec::new(m.clone(), KvWirePrecision::DEFAULT_COMPRESSED);
        let split =
            codec.wire_bytes_layers(100, 10) + codec.wire_bytes_layers(100, m.num_layers - 10);
        let whole = codec.wire_bytes(100);
        // Per-leg ceils may add at most one byte each.
        assert!(split >= whole && split <= whole + 2, "{split} vs {whole}");
        assert_eq!(codec.wire_bytes_layers(100, m.num_layers), whole);
    }

    #[test]
    fn f16_codec_round_trips_with_half_precision() {
        let m = ModelSpec::llama_7b();
        let codec = KvCodec::new(m, KvWirePrecision::F16);
        let xs: Vec<f32> = (0..100).map(|i| (i as f32 * 0.173).sin() * 4.0).collect();
        let wire = codec.encode(&xs);
        assert_eq!(wire.len(), 200);
        let back = codec.decode(&wire).unwrap();
        for (a, b) in xs.iter().zip(&back) {
            assert!((a - b).abs() < 4.0 * 2f32.powi(-10), "{a} vs {b}");
        }
    }

    #[test]
    fn int4_codec_round_trips() {
        let m = ModelSpec::llama_7b();
        let codec = KvCodec::new(m, KvWirePrecision::DEFAULT_COMPRESSED);
        let xs: Vec<f32> = (0..999)
            .map(|i| ((i * 37) % 100) as f32 / 50.0 - 1.0)
            .collect();
        let wire = codec.encode(&xs);
        let back = codec.decode(&wire).unwrap();
        assert_eq!(back.len(), xs.len());
        for (a, b) in xs.iter().zip(&back) {
            assert!((a - b).abs() < 0.08, "{a} vs {b}");
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        let m = ModelSpec::llama_7b();
        let codec = KvCodec::new(m.clone(), KvWirePrecision::DEFAULT_COMPRESSED);
        assert!(codec.decode(&[1, 2, 3]).is_err());
        let f16 = KvCodec::new(m, KvWirePrecision::F16);
        assert!(f16.decode(&[0u8; 3]).is_err());
    }

    #[test]
    fn half_conversion_edge_cases() {
        for v in [0.0f32, -0.0, 1.0, -1.0, 65504.0, 1e-8, f32::INFINITY] {
            let h = half_bits(v);
            let back = half_to_f32(h);
            if v.abs() < 6e-5 {
                assert_eq!(back, if v.is_sign_negative() { -0.0 } else { 0.0 });
            } else if v.is_infinite() {
                assert!(back.is_infinite());
            } else {
                assert!((back - v).abs() / v.abs().max(1.0) < 1e-3, "{v} -> {back}");
            }
        }
    }
}
