//! # ts-kvcache
//!
//! Paged KV-cache management and the KV-cache communication codec.
//!
//! Phase-split serving must move the KV cache produced by prefill replicas to
//! decode replicas over slow cloud links; ThunderServe compresses it with
//! one-shot 4-bit group-wise quantization (§4 of the paper, after KIVI),
//! dequantizing immediately on receipt so *computation always runs in 16-bit*.
//!
//! * [`block`] — a PagedAttention-style block allocator that tracks KV memory
//!   occupancy per sequence (the bookkeeping a decode replica performs);
//! * [`quant`] — group-wise asymmetric int4/int8 quantization with real bit
//!   packing;
//! * [`codec`] — the wire codec for whole per-request KV slabs, plus sizing
//!   helpers the cost model uses;
//! * [`synthetic`] — LLM-like synthetic KV tensor generator (Gaussian with
//!   per-channel scales and heavy-tailed outliers);
//! * [`fidelity`] — reconstruction-quality metrics (SNR, max error, attention
//!   output cosine similarity), the proxy for the paper's Tables 2/6/7.
//!
//! # Examples
//!
//! ```
//! use ts_kvcache::quant::{quantize, QuantBits};
//!
//! let data: Vec<f32> = (0..256).map(|i| (i as f32 * 0.37).sin()).collect();
//! let q = quantize(&data, QuantBits::Int4, 64);
//! let back = q.dequantize();
//! let max_err = data.iter().zip(&back).map(|(a, b)| (a - b).abs()).fold(0.0f32, f32::max);
//! assert!(max_err < 0.075); // within one quantization step
//! let f16_bytes = data.len() * 2;
//! assert!((q.wire_bytes() as f64) < 0.4 * f16_bytes as f64); // far below fp16 size
//! ```

pub mod block;
pub mod codec;
pub mod fidelity;
pub mod quant;
pub mod synthetic;

pub use block::{BlockAllocator, BlockId};
pub use codec::KvCodec;
pub use quant::{quantize, QuantBits, QuantizedTensor};
