//! PagedAttention-style KV block allocator.
//!
//! Decode replicas store KV caches in fixed-size blocks of `block_size`
//! tokens (Kwon et al., 2023). The allocator hands blocks to sequences as
//! they grow token by token and reclaims them when the sequence finishes.
//! The simulator uses it to enforce KV memory limits and expose occupancy.

use std::collections::HashMap;
use ts_common::{Error, RequestId, Result};

/// Index of one KV block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

/// Fixed-capacity block allocator.
#[derive(Debug, Clone)]
pub struct BlockAllocator {
    block_size: usize,
    free: Vec<BlockId>,
    /// Per-sequence: allocated blocks plus the token count actually used.
    sequences: HashMap<RequestId, SeqAlloc>,
}

#[derive(Debug, Clone)]
struct SeqAlloc {
    blocks: Vec<BlockId>,
    tokens: usize,
}

impl BlockAllocator {
    /// Creates an allocator managing `num_blocks` blocks of `block_size`
    /// tokens each.
    ///
    /// # Panics
    /// Panics if either argument is zero.
    pub fn new(num_blocks: usize, block_size: usize) -> Self {
        assert!(
            num_blocks > 0 && block_size > 0,
            "allocator must be non-empty"
        );
        BlockAllocator {
            block_size,
            free: (0..num_blocks as u32).rev().map(BlockId).collect(),
            sequences: HashMap::new(),
        }
    }

    /// Sizes an allocator for a KV budget of `capacity_tokens` tokens.
    pub fn with_token_capacity(capacity_tokens: u64, block_size: usize) -> Self {
        let blocks = (capacity_tokens as usize / block_size.max(1)).max(1);
        Self::new(blocks, block_size)
    }

    /// Tokens per block.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Number of currently free blocks.
    pub fn free_blocks(&self) -> usize {
        self.free.len()
    }

    /// Number of blocks handed out.
    pub fn used_blocks(&self) -> usize {
        self.total_blocks() - self.free.len()
    }

    /// Total number of blocks managed.
    pub fn total_blocks(&self) -> usize {
        self.free.len()
            + self
                .sequences
                .values()
                .map(|s| s.blocks.len())
                .sum::<usize>()
    }

    /// Total token capacity still available (whole free blocks only).
    pub fn free_tokens(&self) -> u64 {
        (self.free.len() * self.block_size) as u64
    }

    /// Fraction of allocated token slots actually holding tokens — 1.0 means
    /// no internal fragmentation.
    pub fn occupancy(&self) -> f64 {
        let allocated: usize = self
            .sequences
            .values()
            .map(|s| s.blocks.len() * self.block_size)
            .sum();
        if allocated == 0 {
            return 1.0;
        }
        let used: usize = self.sequences.values().map(|s| s.tokens).sum();
        used as f64 / allocated as f64
    }

    /// Whether a sequence is registered.
    pub fn contains(&self, id: RequestId) -> bool {
        self.sequences.contains_key(&id)
    }

    /// Number of live sequences.
    pub fn num_sequences(&self) -> usize {
        self.sequences.len()
    }

    /// Admits a sequence with `tokens` initial KV tokens (the prompt KV that
    /// arrives from the prefill replica).
    ///
    /// # Errors
    /// Returns [`Error::CapacityExceeded`] if not enough free blocks remain
    /// (nothing is allocated in that case) and [`Error::InvalidConfig`] if
    /// the sequence already exists.
    pub fn admit(&mut self, id: RequestId, tokens: usize) -> Result<()> {
        if self.sequences.contains_key(&id) {
            return Err(Error::InvalidConfig(format!(
                "sequence {id} already admitted"
            )));
        }
        let needed = tokens.div_ceil(self.block_size).max(1);
        if needed > self.free.len() {
            return Err(Error::CapacityExceeded(format!(
                "need {needed} blocks for {tokens} tokens, only {} free",
                self.free.len()
            )));
        }
        let blocks = self.free.split_off(self.free.len() - needed);
        self.sequences.insert(id, SeqAlloc { blocks, tokens });
        Ok(())
    }

    /// Extends a sequence by one generated token, allocating a new block at
    /// block boundaries.
    ///
    /// # Errors
    /// Returns [`Error::InvalidConfig`] for unknown sequences and
    /// [`Error::CapacityExceeded`] if a new block is needed but none is free
    /// (the sequence is left unchanged).
    pub fn append_token(&mut self, id: RequestId) -> Result<()> {
        let seq = self
            .sequences
            .get_mut(&id)
            .ok_or_else(|| Error::InvalidConfig(format!("unknown sequence {id}")))?;
        if seq.tokens == seq.blocks.len() * self.block_size {
            let block = self
                .free
                .pop()
                .ok_or_else(|| Error::CapacityExceeded("no free KV blocks for append".into()))?;
            seq.blocks.push(block);
        }
        seq.tokens += 1;
        Ok(())
    }

    /// Releases a sequence and returns how many blocks were freed.
    ///
    /// # Errors
    /// Returns [`Error::InvalidConfig`] for unknown sequences.
    pub fn release(&mut self, id: RequestId) -> Result<usize> {
        let seq = self
            .sequences
            .remove(&id)
            .ok_or_else(|| Error::InvalidConfig(format!("unknown sequence {id}")))?;
        let n = seq.blocks.len();
        self.free.extend(seq.blocks);
        Ok(n)
    }

    /// Current token count of a sequence, if registered.
    pub fn tokens_of(&self, id: RequestId) -> Option<usize> {
        self.sequences.get(&id).map(|s| s.tokens)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rid(i: u64) -> RequestId {
        RequestId(i)
    }

    #[test]
    fn admit_rounds_up_to_blocks() {
        let mut a = BlockAllocator::new(10, 16);
        a.admit(rid(1), 17).unwrap();
        assert_eq!(a.used_blocks(), 2);
        assert_eq!(a.tokens_of(rid(1)), Some(17));
    }

    #[test]
    fn admit_fails_atomically_when_full() {
        let mut a = BlockAllocator::new(2, 16);
        a.admit(rid(1), 20).unwrap(); // 2 blocks
        let err = a.admit(rid(2), 1);
        assert!(matches!(err, Err(Error::CapacityExceeded(_))));
        assert_eq!(a.free_blocks(), 0);
        assert!(!a.contains(rid(2)));
    }

    #[test]
    fn append_allocates_at_boundary() {
        let mut a = BlockAllocator::new(3, 4);
        a.admit(rid(1), 4).unwrap(); // exactly one block
        assert_eq!(a.used_blocks(), 1);
        a.append_token(rid(1)).unwrap(); // crosses boundary
        assert_eq!(a.used_blocks(), 2);
        for _ in 0..3 {
            a.append_token(rid(1)).unwrap();
        }
        assert_eq!(a.used_blocks(), 2); // still inside second block
        assert_eq!(a.tokens_of(rid(1)), Some(8));
    }

    #[test]
    fn release_returns_blocks() {
        let mut a = BlockAllocator::new(4, 8);
        a.admit(rid(1), 20).unwrap(); // 3 blocks
        let freed = a.release(rid(1)).unwrap();
        assert_eq!(freed, 3);
        assert_eq!(a.free_blocks(), 4);
        assert!(a.release(rid(1)).is_err());
    }

    #[test]
    fn occupancy_reflects_fragmentation() {
        let mut a = BlockAllocator::new(10, 10);
        a.admit(rid(1), 1).unwrap(); // 1 of 10 slots used
        assert!((a.occupancy() - 0.1).abs() < 1e-9);
        a.admit(rid(2), 10).unwrap();
        assert!((a.occupancy() - 11.0 / 20.0).abs() < 1e-9);
    }

    #[test]
    fn duplicate_admit_rejected() {
        let mut a = BlockAllocator::new(4, 8);
        a.admit(rid(1), 5).unwrap();
        assert!(a.admit(rid(1), 5).is_err());
    }

    #[test]
    fn with_token_capacity_sizes_correctly() {
        let a = BlockAllocator::with_token_capacity(1000, 16);
        assert_eq!(a.total_blocks(), 62);
        assert_eq!(a.free_tokens(), 62 * 16);
    }

    #[test]
    fn block_accounting_invariant() {
        let mut a = BlockAllocator::new(8, 4);
        a.admit(rid(1), 10).unwrap();
        a.admit(rid(2), 3).unwrap();
        a.append_token(rid(2)).unwrap();
        a.append_token(rid(2)).unwrap();
        assert_eq!(a.total_blocks(), 8);
        assert_eq!(a.used_blocks() + a.free_blocks(), 8);
    }
}
