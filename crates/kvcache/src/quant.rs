//! Group-wise asymmetric quantization with real bit packing.
//!
//! Values are split into contiguous groups of `group_size`; each group stores
//! an `f32` scale and zero-point plus `bits`-wide codes. Int4 codes are
//! packed two per byte (low nibble first). This is the KIVI-style one-shot
//! scheme of §4: the prefill replica quantizes, the wire carries the packed
//! representation, and the decode replica dequantizes back to 16-bit before
//! any computation.

use bytes::{BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};

/// Quantization width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QuantBits {
    /// 2-bit codes, four per byte (KIVI's most aggressive setting).
    Int2,
    /// 4-bit codes, two per byte.
    Int4,
    /// 8-bit codes.
    Int8,
}

impl QuantBits {
    /// Number of bits per code.
    #[inline]
    pub const fn bits(self) -> u32 {
        match self {
            QuantBits::Int2 => 2,
            QuantBits::Int4 => 4,
            QuantBits::Int8 => 8,
        }
    }

    /// Largest code value (`2^bits - 1`).
    #[inline]
    pub const fn max_code(self) -> u32 {
        (1 << self.bits()) - 1
    }
}

/// A quantized tensor: packed codes plus per-group scale/zero metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedTensor {
    bits: QuantBits,
    group_size: usize,
    len: usize,
    scales: Vec<f32>,
    zeros: Vec<f32>,
    data: Bytes,
}

impl QuantizedTensor {
    /// Quantization width.
    pub fn bits(&self) -> QuantBits {
        self.bits
    }

    /// Number of original elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total bytes this tensor occupies on the wire: packed codes plus
    /// per-group `f32` scale and zero-point, plus a small fixed header.
    pub fn wire_bytes(&self) -> usize {
        const HEADER: usize = 16; // bits, group_size, len, checksum
        HEADER + self.data.len() + (self.scales.len() + self.zeros.len()) * 4
    }

    /// Compression ratio relative to fp16 storage of the same element count
    /// (e.g. ~0.27 for int4 with group size 64).
    pub fn ratio_vs_f16(&self) -> f64 {
        self.wire_bytes() as f64 / (self.len.max(1) * 2) as f64
    }

    /// Reconstructs the original values (lossily).
    pub fn dequantize(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.len);
        for (gi, chunk_start) in (0..self.len).step_by(self.group_size).enumerate() {
            let scale = self.scales[gi];
            let zero = self.zeros[gi];
            let group_len = self.group_size.min(self.len - chunk_start);
            for k in 0..group_len {
                let idx = chunk_start + k;
                let code = match self.bits {
                    QuantBits::Int8 => self.data[idx] as u32,
                    QuantBits::Int4 => {
                        let byte = self.data[idx / 2];
                        if idx % 2 == 0 {
                            (byte & 0x0F) as u32
                        } else {
                            (byte >> 4) as u32
                        }
                    }
                    QuantBits::Int2 => {
                        let byte = self.data[idx / 4];
                        ((byte >> (2 * (idx % 4))) & 0x03) as u32
                    }
                };
                out.push(code as f32 * scale + zero);
            }
        }
        out
    }
}

/// Quantizes `values` with the given width and group size.
///
/// Each group's range `[min, max]` maps linearly onto the code range; a
/// degenerate group (all values equal) gets scale 0 and reconstructs exactly.
///
/// # Panics
/// Panics if `group_size` is zero or any value is not finite.
pub fn quantize(values: &[f32], bits: QuantBits, group_size: usize) -> QuantizedTensor {
    assert!(group_size > 0, "group size must be positive");
    let n = values.len();
    let num_groups = n.div_ceil(group_size);
    let mut scales = Vec::with_capacity(num_groups);
    let mut zeros = Vec::with_capacity(num_groups);
    let packed_len = match bits {
        QuantBits::Int8 => n,
        QuantBits::Int4 => n.div_ceil(2),
        QuantBits::Int2 => n.div_ceil(4),
    };
    let mut data = BytesMut::zeroed(packed_len);
    let max_code = bits.max_code() as f32;

    for (gi, group) in values.chunks(group_size).enumerate() {
        let mut lo = f32::INFINITY;
        let mut hi = f32::NEG_INFINITY;
        for &v in group {
            assert!(v.is_finite(), "cannot quantize non-finite value {v}");
            lo = lo.min(v);
            hi = hi.max(v);
        }
        let scale = if hi > lo { (hi - lo) / max_code } else { 0.0 };
        scales.push(scale);
        zeros.push(lo);
        for (k, &v) in group.iter().enumerate() {
            let code = if scale > 0.0 {
                (((v - lo) / scale).round() as u32).min(bits.max_code())
            } else {
                0
            };
            let idx = gi * group_size + k;
            match bits {
                QuantBits::Int8 => data[idx] = code as u8,
                QuantBits::Int4 => {
                    if idx.is_multiple_of(2) {
                        data[idx / 2] |= code as u8 & 0x0F;
                    } else {
                        data[idx / 2] |= (code as u8) << 4;
                    }
                }
                QuantBits::Int2 => {
                    data[idx / 4] |= ((code as u8) & 0x03) << (2 * (idx % 4));
                }
            }
        }
    }

    QuantizedTensor {
        bits,
        group_size,
        len: n,
        scales,
        zeros,
        data: data.freeze(),
    }
}

/// Serializes a tensor into a flat byte buffer (header + metadata + codes) —
/// the exact bytes a prefill replica would put on the wire.
pub fn encode_wire(t: &QuantizedTensor) -> Bytes {
    let mut buf = BytesMut::with_capacity(t.wire_bytes());
    buf.put_u32_le(t.bits.bits());
    buf.put_u32_le(t.group_size as u32);
    buf.put_u64_le(t.len as u64);
    for &s in &t.scales {
        buf.put_f32_le(s);
    }
    for &z in &t.zeros {
        buf.put_f32_le(z);
    }
    buf.extend_from_slice(&t.data);
    buf.freeze()
}

/// Parses bytes produced by [`encode_wire`].
///
/// # Errors
/// Returns a message describing the corruption if the buffer is malformed.
pub fn decode_wire(mut buf: &[u8]) -> Result<QuantizedTensor, String> {
    use bytes::Buf;
    if buf.len() < 16 {
        return Err("buffer too short for header".into());
    }
    let bits = match buf.get_u32_le() {
        2 => QuantBits::Int2,
        4 => QuantBits::Int4,
        8 => QuantBits::Int8,
        other => return Err(format!("unknown bit width {other}")),
    };
    let group_size = buf.get_u32_le() as usize;
    if group_size == 0 {
        return Err("zero group size".into());
    }
    let len = buf.get_u64_le() as usize;
    let num_groups = len.div_ceil(group_size);
    if buf.len() < num_groups * 8 {
        return Err("buffer too short for metadata".into());
    }
    let mut scales = Vec::with_capacity(num_groups);
    for _ in 0..num_groups {
        scales.push(buf.get_f32_le());
    }
    let mut zeros = Vec::with_capacity(num_groups);
    for _ in 0..num_groups {
        zeros.push(buf.get_f32_le());
    }
    let packed_len = match bits {
        QuantBits::Int8 => len,
        QuantBits::Int4 => len.div_ceil(2),
        QuantBits::Int2 => len.div_ceil(4),
    };
    if buf.len() != packed_len {
        return Err(format!(
            "expected {packed_len} code bytes, got {}",
            buf.len()
        ));
    }
    Ok(QuantizedTensor {
        bits,
        group_size,
        len,
        scales,
        zeros,
        data: Bytes::copy_from_slice(buf),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize) -> Vec<f32> {
        (0..n).map(|i| i as f32 * 0.01 - 1.0).collect()
    }

    #[test]
    fn int8_round_trip_error_within_half_step() {
        let xs = ramp(1000);
        let q = quantize(&xs, QuantBits::Int8, 128);
        let back = q.dequantize();
        assert_eq!(back.len(), xs.len());
        // step = range/255 per group; error <= step/2 + float fuzz
        let step = (128.0 * 0.01) / 255.0;
        for (a, b) in xs.iter().zip(&back) {
            assert!((a - b).abs() <= step / 2.0 + 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn int4_round_trip_error_within_half_step() {
        let xs = ramp(512);
        let q = quantize(&xs, QuantBits::Int4, 64);
        let back = q.dequantize();
        let step = (64.0 * 0.01) / 15.0;
        for (a, b) in xs.iter().zip(&back) {
            assert!((a - b).abs() <= step / 2.0 + 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn int2_round_trip_error_within_half_step() {
        let xs = ramp(256);
        let q = quantize(&xs, QuantBits::Int2, 32);
        let back = q.dequantize();
        let step = (32.0 * 0.01) / 3.0;
        for (a, b) in xs.iter().zip(&back) {
            assert!((a - b).abs() <= step / 2.0 + 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn int2_wire_round_trip_with_odd_lengths() {
        for n in [1usize, 3, 4, 5, 63, 64, 65] {
            let xs = ramp(n);
            let q = quantize(&xs, QuantBits::Int2, 16);
            let q2 = decode_wire(&encode_wire(&q)).unwrap();
            assert_eq!(q, q2, "n={n}");
            assert_eq!(q2.dequantize().len(), n);
        }
    }

    #[test]
    fn int2_is_about_8x_smaller_than_f16() {
        let xs = ramp(16384);
        let q = quantize(&xs, QuantBits::Int2, 128);
        let r = q.ratio_vs_f16();
        assert!(r > 0.12 && r < 0.17, "ratio {r}");
    }

    #[test]
    fn constant_group_reconstructs_exactly() {
        let xs = vec![3.25f32; 100];
        for bits in [QuantBits::Int2, QuantBits::Int4, QuantBits::Int8] {
            let q = quantize(&xs, bits, 32);
            assert_eq!(q.dequantize(), xs);
        }
    }

    #[test]
    fn odd_lengths_and_partial_groups() {
        let xs = ramp(77);
        let q = quantize(&xs, QuantBits::Int4, 16);
        assert_eq!(q.len(), 77);
        assert_eq!(q.dequantize().len(), 77);
    }

    #[test]
    fn empty_input() {
        let q = quantize(&[], QuantBits::Int4, 64);
        assert!(q.is_empty());
        assert!(q.dequantize().is_empty());
    }

    #[test]
    fn int4_is_about_4x_smaller_than_f16() {
        let xs = ramp(16384);
        let q = quantize(&xs, QuantBits::Int4, 128);
        let r = q.ratio_vs_f16();
        assert!(r > 0.24 && r < 0.30, "ratio {r}");
    }

    #[test]
    fn wire_round_trip() {
        let xs = ramp(333);
        let q = quantize(&xs, QuantBits::Int4, 64);
        let wire = encode_wire(&q);
        let q2 = decode_wire(&wire).unwrap();
        assert_eq!(q, q2);
        assert_eq!(q2.dequantize(), q.dequantize());
    }

    #[test]
    fn decode_rejects_corruption() {
        let xs = ramp(64);
        let q = quantize(&xs, QuantBits::Int8, 32);
        let wire = encode_wire(&q);
        assert!(decode_wire(&wire[..8]).is_err());
        let mut bad = wire.to_vec();
        bad[0] = 7; // invalid bit width
        assert!(decode_wire(&bad).is_err());
        let mut truncated = wire.to_vec();
        truncated.pop();
        assert!(decode_wire(&truncated).is_err());
    }

    #[test]
    fn codes_saturate_at_extremes() {
        // Round-off at group boundaries must clamp into the code range.
        let xs = vec![-1e30f32, 1e30f32];
        let q = quantize(&xs, QuantBits::Int4, 2);
        let back = q.dequantize();
        assert_eq!(back[0], -1e30);
        assert_eq!(back[1], 1e30);
    }

    #[test]
    #[should_panic]
    fn nan_panics() {
        let _ = quantize(&[f32::NAN], QuantBits::Int8, 8);
    }
}
