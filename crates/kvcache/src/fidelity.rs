//! Reconstruction-quality metrics for quantized KV caches.
//!
//! These are the proxies for the paper's model-quality tables (Tables 2, 6,
//! 7): since we cannot evaluate CoQA accuracy or WikiText perplexity without
//! the real model, we measure (a) direct reconstruction error of the KV
//! values and (b) the cosine similarity of *attention outputs* computed with
//! the original versus the dequantized cache — the quantity that actually
//! bounds downstream quality, because ThunderServe dequantizes before any
//! computation.

use crate::synthetic::SyntheticKv;
use rand::Rng;

/// Summary statistics comparing a reconstruction to its reference.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FidelityReport {
    /// Mean squared error.
    pub mse: f64,
    /// Signal-to-noise ratio in dB (higher is better; >20 dB is very good).
    pub snr_db: f64,
    /// Largest absolute element error.
    pub max_abs_err: f64,
    /// Cosine similarity of the flattened tensors.
    pub cosine: f64,
}

/// Compares two equal-length tensors.
///
/// # Panics
/// Panics if lengths differ or the reference is all-zero.
pub fn compare(reference: &[f32], reconstructed: &[f32]) -> FidelityReport {
    assert_eq!(reference.len(), reconstructed.len(), "length mismatch");
    assert!(!reference.is_empty(), "empty tensors");
    let mut err_sq = 0.0f64;
    let mut sig_sq = 0.0f64;
    let mut dot = 0.0f64;
    let mut rec_sq = 0.0f64;
    let mut max_err = 0.0f64;
    for (&a, &b) in reference.iter().zip(reconstructed) {
        let (a, b) = (a as f64, b as f64);
        err_sq += (a - b) * (a - b);
        sig_sq += a * a;
        rec_sq += b * b;
        dot += a * b;
        max_err = max_err.max((a - b).abs());
    }
    assert!(sig_sq > 0.0, "reference signal is zero");
    let n = reference.len() as f64;
    FidelityReport {
        mse: err_sq / n,
        snr_db: 10.0 * (sig_sq / err_sq.max(1e-30)).log10(),
        max_abs_err: max_err,
        cosine: dot / (sig_sq.sqrt() * rec_sq.sqrt().max(1e-30)),
    }
}

/// Quantizes a KV tensor **channel-wise** (groups run along the token axis
/// within one channel) and returns the reconstruction. This mirrors KIVI's
/// per-channel key quantization: outlier channels get their own scale instead
/// of polluting their neighbours', which is what keeps 4-bit KV usable.
pub fn reconstruct_channelwise(
    kv: &SyntheticKv,
    bits: crate::quant::QuantBits,
    group_size: usize,
) -> SyntheticKv {
    // Transpose to channel-major.
    let mut transposed = vec![0.0f32; kv.values.len()];
    for t in 0..kv.tokens {
        for c in 0..kv.channels {
            transposed[c * kv.tokens + t] = kv.at(t, c);
        }
    }
    let q = crate::quant::quantize(&transposed, bits, group_size.min(kv.tokens.max(1)));
    let deq = q.dequantize();
    let mut values = vec![0.0f32; kv.values.len()];
    for c in 0..kv.channels {
        for t in 0..kv.tokens {
            values[t * kv.channels + c] = deq[c * kv.tokens + t];
        }
    }
    SyntheticKv {
        tokens: kv.tokens,
        channels: kv.channels,
        values,
    }
}

/// Computes per-head attention outputs `softmax(q·Kᵀ/√d)·V` for `num_queries`
/// random queries against the given K/V tensors, with `heads` heads laid out
/// along the channel dimension. Returns the flattened outputs.
///
/// # Panics
/// Panics if the channel count is not divisible by `heads`, or K/V shapes
/// differ.
pub fn attention_outputs<R: Rng>(
    keys: &SyntheticKv,
    values: &SyntheticKv,
    heads: usize,
    num_queries: usize,
    rng: &mut R,
) -> Vec<f32> {
    assert_eq!(keys.tokens, values.tokens, "K/V token mismatch");
    assert_eq!(keys.channels, values.channels, "K/V channel mismatch");
    assert!(
        heads > 0 && keys.channels.is_multiple_of(heads),
        "bad head count"
    );
    let head_dim = keys.channels / heads;
    let scale = 1.0 / (head_dim as f64).sqrt();

    // Deterministic queries per (query, head): uniform in [-1, 1].
    let queries: Vec<f32> = (0..num_queries * keys.channels)
        .map(|_| rng.gen_range(-1.0f32..1.0))
        .collect();

    let mut out = Vec::with_capacity(num_queries * keys.channels);
    for q in 0..num_queries {
        for h in 0..heads {
            let q_vec = &queries[q * keys.channels + h * head_dim..][..head_dim];
            // scores over tokens
            let mut scores = Vec::with_capacity(keys.tokens);
            let mut max_s = f64::NEG_INFINITY;
            for t in 0..keys.tokens {
                let mut s = 0.0f64;
                for d in 0..head_dim {
                    s += q_vec[d] as f64 * keys.at(t, h * head_dim + d) as f64;
                }
                s *= scale;
                max_s = max_s.max(s);
                scores.push(s);
            }
            let mut denom = 0.0f64;
            for s in scores.iter_mut() {
                *s = (*s - max_s).exp();
                denom += *s;
            }
            for d in 0..head_dim {
                let mut acc = 0.0f64;
                for t in 0..keys.tokens {
                    acc += scores[t] / denom * values.at(t, h * head_dim + d) as f64;
                }
                out.push(acc as f32);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quant::{quantize, QuantBits};
    use crate::synthetic::generate_kv;
    use ts_common::{seeded_rng, ModelSpec};

    #[test]
    fn identical_tensors_are_perfect() {
        let xs: Vec<f32> = (0..100).map(|i| (i as f32).sin()).collect();
        let r = compare(&xs, &xs);
        assert_eq!(r.mse, 0.0);
        assert!(r.snr_db > 100.0);
        assert!((r.cosine - 1.0).abs() < 1e-12);
    }

    #[test]
    fn int4_kv_has_high_snr() {
        let m = ModelSpec::llama_7b();
        let mut rng = seeded_rng(5);
        let kv = generate_kv(&m, 64, &mut rng);
        // Channel-wise grouping (KIVI-style) isolates outlier channels.
        let rec = reconstruct_channelwise(&kv, QuantBits::Int4, 64);
        let r = compare(&kv.values, &rec.values);
        assert!(r.snr_db > 18.0, "int4 SNR too low: {} dB", r.snr_db);
        assert!(r.cosine > 0.995, "cosine {}", r.cosine);
    }

    #[test]
    fn channelwise_beats_rowmajor_grouping() {
        let m = ModelSpec::llama_7b();
        let mut rng = seeded_rng(5);
        let kv = generate_kv(&m, 64, &mut rng);
        let naive = compare(
            &kv.values,
            &quantize(&kv.values, QuantBits::Int4, 64).dequantize(),
        );
        let chan = compare(
            &kv.values,
            &reconstruct_channelwise(&kv, QuantBits::Int4, 64).values,
        );
        assert!(
            chan.snr_db > naive.snr_db,
            "{} vs {}",
            chan.snr_db,
            naive.snr_db
        );
    }

    #[test]
    fn int8_beats_int4() {
        let m = ModelSpec::llama_7b();
        let mut rng = seeded_rng(6);
        let kv = generate_kv(&m, 64, &mut rng);
        let r4 = compare(
            &kv.values,
            &quantize(&kv.values, QuantBits::Int4, 64).dequantize(),
        );
        let r8 = compare(
            &kv.values,
            &quantize(&kv.values, QuantBits::Int8, 64).dequantize(),
        );
        assert!(
            r8.snr_db > r4.snr_db + 15.0,
            "{} vs {}",
            r8.snr_db,
            r4.snr_db
        );
    }

    #[test]
    fn attention_outputs_are_stable_under_int4() {
        // The paper's Table 2 claim, in proxy form: attention computed from
        // dequantized 4-bit KV matches the 16-bit attention very closely.
        let m = ModelSpec::llama_7b();
        let mut rng = seeded_rng(9);
        let k = generate_kv(&m, 128, &mut rng);
        let v = generate_kv(&m, 128, &mut rng);
        let k2 = reconstruct_channelwise(&k, QuantBits::Int4, 64);
        let v2 = reconstruct_channelwise(&v, QuantBits::Int4, 64);
        let ref_out = attention_outputs(&k, &v, m.num_heads, 4, &mut seeded_rng(100));
        let q_out = attention_outputs(&k2, &v2, m.num_heads, 4, &mut seeded_rng(100));
        let r = compare(&ref_out, &q_out);
        assert!(r.cosine > 0.98, "attention cosine {}", r.cosine);
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        let _ = compare(&[1.0], &[1.0, 2.0]);
    }
}
