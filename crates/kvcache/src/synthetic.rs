//! Synthetic KV tensors with LLM-like statistics.
//!
//! We cannot run LLaMA here, so quantization quality is evaluated on
//! synthetic key/value tensors that mimic the empirical structure of
//! transformer KV caches: per-channel Gaussian values with heterogeneous
//! channel scales and a small fraction of heavy-tailed outlier channels
//! (the structure KIVI-style quantizers are designed around).

use rand::Rng;
use rand_distributions::{sample_lognormal, sample_normal};
use ts_common::ModelSpec;

mod rand_distributions {
    use rand::Rng;

    /// Box-Muller standard normal scaled to (mean, std).
    pub fn sample_normal<R: Rng>(rng: &mut R, mean: f64, std: f64) -> f64 {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        mean + std * z
    }

    /// Lognormal via exp(normal).
    pub fn sample_lognormal<R: Rng>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
        sample_normal(rng, mu, sigma).exp()
    }
}

/// A synthetic `[tokens × channels]` K or V tensor, row-major.
#[derive(Debug, Clone)]
pub struct SyntheticKv {
    /// Number of token rows.
    pub tokens: usize,
    /// Number of channels (kv_heads × head_dim).
    pub channels: usize,
    /// Row-major values.
    pub values: Vec<f32>,
}

impl SyntheticKv {
    /// Value at `(token, channel)`.
    ///
    /// # Panics
    /// Panics if out of bounds.
    #[inline]
    pub fn at(&self, token: usize, channel: usize) -> f32 {
        self.values[token * self.channels + channel]
    }
}

/// Generates a KV tensor for `tokens` tokens of the model's KV width.
///
/// Each channel `c` draws i.i.d. `N(0, s_c)` where `s_c ~ LogNormal(0, 0.5)`;
/// 2% of channels are "outlier" channels with 8× the scale, mirroring the
/// per-channel outlier structure of real caches.
pub fn generate_kv<R: Rng>(model: &ModelSpec, tokens: usize, rng: &mut R) -> SyntheticKv {
    let channels = model.num_kv_heads * model.head_dim();
    let mut channel_scale = Vec::with_capacity(channels);
    for _ in 0..channels {
        let mut s = sample_lognormal(rng, 0.0, 0.5);
        if rng.gen_bool(0.02) {
            s *= 8.0;
        }
        channel_scale.push(s);
    }
    let mut values = Vec::with_capacity(tokens * channels);
    for _ in 0..tokens {
        for &s in &channel_scale {
            values.push(sample_normal(rng, 0.0, s) as f32);
        }
    }
    SyntheticKv {
        tokens,
        channels,
        values,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_common::seeded_rng;

    #[test]
    fn shape_matches_model() {
        let m = ModelSpec::llama_7b();
        let mut rng = seeded_rng(1);
        let kv = generate_kv(&m, 16, &mut rng);
        assert_eq!(kv.tokens, 16);
        assert_eq!(kv.channels, 4096);
        assert_eq!(kv.values.len(), 16 * 4096);
    }

    #[test]
    fn deterministic_given_seed() {
        let m = ModelSpec::llama_7b();
        let a = generate_kv(&m, 4, &mut seeded_rng(7)).values;
        let b = generate_kv(&m, 4, &mut seeded_rng(7)).values;
        assert_eq!(a, b);
    }

    #[test]
    fn has_outlier_structure() {
        let m = ModelSpec::llama_13b();
        let kv = generate_kv(&m, 64, &mut seeded_rng(3));
        // per-channel std spread should be wide (outliers present)
        let mut stds = Vec::new();
        for c in 0..kv.channels {
            let mut sum = 0.0f64;
            let mut sq = 0.0f64;
            for t in 0..kv.tokens {
                let v = kv.at(t, c) as f64;
                sum += v;
                sq += v * v;
            }
            let n = kv.tokens as f64;
            stds.push(((sq - sum * sum / n) / n).sqrt());
        }
        let max = stds.iter().cloned().fold(0.0, f64::max);
        let med = {
            let mut s = stds.clone();
            s.sort_by(|a, b| a.partial_cmp(b).unwrap());
            s[s.len() / 2]
        };
        assert!(
            max > 4.0 * med,
            "expected outlier channels: max {max}, median {med}"
        );
    }

    #[test]
    fn values_are_finite() {
        let m = ModelSpec::llama_7b();
        let kv = generate_kv(&m, 8, &mut seeded_rng(11));
        assert!(kv.values.iter().all(|v| v.is_finite()));
    }
}
