//! Integration tests for the streaming observability plane.
//!
//! Covers the three contracts the plane makes with the rest of the stack:
//!
//! 1. **Sketch parity** — the mergeable quantile sketches exposed through
//!    [`Metrics::latency_sketch`] / [`Metrics::itl_sketch`] agree with the
//!    exact nearest-rank percentiles on every existing metric site, within
//!    the sketch's configured relative-error bound.
//! 2. **Online == post-hoc** — the quantiles the [`StreamingPlane`]
//!    accumulates incrementally from driver events match the exact
//!    percentiles recomputed after the fact from the `TraceLog` spans.
//! 3. **Burn-gated hedging** — with `burn_gated_hedging` on, hedges are
//!    suppressed while the SLO burn-rate monitor reports `Healthy` and
//!    re-enabled once the error budget burns.

use ts_cluster::presets;
use ts_common::{
    DeploymentPlan, GpuId, GroupSpec, ModelSpec, ParallelConfig, Phase, RoutingMatrix, SimDuration,
    SimTime, SloKind, SloSpec, StageSpec,
};
use ts_sim::{FaultKind, FaultScript, Metrics, SimConfig, Simulation, TimedFault};
use ts_telemetry::StreamConfig;
use ts_workload::{generator::generate, spec};

fn group(model: &ModelSpec, phase: Phase, ids: &[u32], tp: usize) -> GroupSpec {
    GroupSpec::new(
        phase,
        ParallelConfig::new(tp, 1).unwrap(),
        vec![StageSpec {
            gpus: ids.iter().map(|&i| GpuId(i)).collect(),
            layers: model.num_layers,
        }],
    )
    .unwrap()
}

/// Two tp=2 prefill replicas + two tp=2 decode replicas.
fn testbed() -> (ts_cluster::Cluster, DeploymentPlan, SimConfig) {
    let cluster = presets::network_case_cluster(presets::ETH_40GBPS);
    let model = ModelSpec::llama_13b();
    let plan = DeploymentPlan::new(
        vec![
            group(&model, Phase::Prefill, &[0, 1], 2),
            group(&model, Phase::Prefill, &[2, 3], 2),
            group(&model, Phase::Decode, &[4, 5], 2),
            group(&model, Phase::Decode, &[6, 7], 2),
        ],
        RoutingMatrix::uniform(2, 2),
    )
    .unwrap();
    (cluster, plan, SimConfig::new(model))
}

/// `|sketch - exact| <= alpha * exact + slack`, where the slack absorbs the
/// microsecond quantization both values go through.
fn assert_within(sketch: SimDuration, exact: SimDuration, alpha: f64, what: &str) {
    let (s, e) = (sketch.as_secs_f64(), exact.as_secs_f64());
    let bound = alpha * e + 2e-6;
    assert!(
        (s - e).abs() <= bound,
        "{what}: sketch {s} vs exact {e} exceeds bound {bound}"
    );
}

/// Satellite: every approximate-tail metric site routed through the sketch
/// stays within the configured relative error of the exact nearest-rank
/// percentile, across accuracies and quantiles.
#[test]
fn sketch_parity_on_all_metric_sites() {
    let (cluster, plan, cfg) = testbed();
    let reqs = generate(&spec::coding(2.0), SimDuration::from_secs(40), 7);
    let m = Simulation::new(&cluster, &plan, cfg)
        .unwrap()
        .run(&reqs)
        .unwrap();
    assert!(
        m.num_completed() > 50,
        "workload too small to exercise tails"
    );

    for &alpha in &[0.01, 0.05] {
        for &q in &[0.5, 0.9, 0.95, 0.99, 1.0] {
            for kind in [SloKind::Ttft, SloKind::Tpot, SloKind::E2e] {
                let sk = m.latency_sketch(kind, alpha);
                assert_eq!(sk.count() as usize, m.num_completed());
                assert_within(
                    sk.quantile_duration(q).unwrap(),
                    m.latency_percentile(kind, q).unwrap(),
                    alpha,
                    &format!("{kind:?} q={q} alpha={alpha}"),
                );
            }
            let itl = m.itl_sketch(alpha);
            assert_within(
                itl.quantile_duration(q).unwrap(),
                m.itl_percentile(q).unwrap(),
                alpha,
                &format!("ITL q={q} alpha={alpha}"),
            );
        }
    }
}

/// Tentpole: the plane's incrementally-built TTFT/E2E sketches agree with
/// exact percentiles recomputed post-hoc from the trace spans, and its
/// counters tie out with the run's metrics.
#[test]
fn streaming_plane_matches_posthoc_trace() {
    let (cluster, plan, cfg) = testbed();
    let slo = SloSpec::new(
        SimDuration::from_millis(500),
        SimDuration::from_millis(50),
        SimDuration::from_secs(10),
    );
    let alpha = 0.01;
    let cfg = cfg
        .with_telemetry(true)
        .with_streaming(StreamConfig::new(slo).with_sketch_alpha(alpha));
    let reqs = generate(&spec::coding(2.0), SimDuration::from_secs(40), 11);
    let mut sim = Simulation::new(&cluster, &plan, cfg).unwrap();
    let m = sim.run(&reqs).unwrap();
    let log = sim.take_trace().expect("telemetry was on");
    let plane = sim.take_streaming().expect("streaming was on");
    let snap = plane.snapshot();

    // Exact percentiles from the post-hoc spans, over the same populations
    // the plane inserts into its sketches online.
    let spans: Vec<_> = log
        .request_ids()
        .into_iter()
        .filter_map(|id| log.request_span(id))
        .collect();
    let mut ttfts: Vec<_> = spans.iter().filter_map(|s| s.ttft()).collect();
    let mut e2es: Vec<_> = spans.iter().filter_map(|s| s.e2e()).collect();
    ttfts.sort_unstable();
    e2es.sort_unstable();
    assert_eq!(snap.ttft.count() as usize, ttfts.len());
    assert_eq!(snap.e2e.count() as usize, e2es.len());
    assert_eq!(snap.totals.finished as usize, m.num_completed());
    assert_eq!(
        (snap.totals.dropped + snap.totals.rejected) as usize,
        m.num_dropped() + m.num_rejected()
    );

    for &q in &[0.5, 0.9, 0.99] {
        assert_within(
            snap.ttft.quantile_duration(q).unwrap(),
            ts_common::stats::percentile(&ttfts, q).unwrap(),
            alpha,
            &format!("online TTFT q={q}"),
        );
        assert_within(
            snap.e2e.quantile_duration(q).unwrap(),
            ts_common::stats::percentile(&e2es, q).unwrap(),
            alpha,
            &format!("online E2E q={q}"),
        );
    }

    // The pressure sketches saw traffic and the exporter round-trips.
    assert!(snap.queue_depth.count() > 0);
    assert!(snap.batch_occupancy.count() > 0);
    let text = ts_telemetry::render_prometheus(&snap);
    let stats = ts_telemetry::validate_exposition(&text).expect("valid exposition");
    assert_eq!(stats.histograms, 4);
}

/// Tentpole: burn-gated hedging holds fire while the burn monitor reports
/// `Healthy` and fires once the SLO budget burns.
#[test]
fn burn_gated_hedging_follows_health_signal() {
    let (cluster, plan, cfg) = testbed();
    let reqs = generate(&spec::coding(1.5), SimDuration::from_secs(60), 45);
    // Prefill 0 becomes a deep straggler at t=5s; without suppression the
    // 400ms hedge timer rescues requests stuck behind it.
    let script = FaultScript::new(
        vec![TimedFault {
            at: SimTime::from_secs_f64(5.0),
            kind: FaultKind::PrefillSlow(0, 40.0),
        }],
        SimDuration::from_millis(500),
    );
    let run = |c: SimConfig| -> Metrics {
        Simulation::new(&cluster, &plan, c)
            .unwrap()
            .run_with_faults(&reqs, &script)
            .unwrap()
    };
    let hedged = |c: SimConfig| run(c.with_hedging(SimDuration::from_millis(400)));

    let generous = SloSpec::new(
        SimDuration::from_secs(1000),
        SimDuration::from_secs(1),
        SimDuration::from_secs(2000),
    );
    let tight = SloSpec::new(
        SimDuration::from_millis(1),
        SimDuration::from_micros(100),
        SimDuration::from_millis(2),
    );

    // Baseline: plain hedging fires against the straggler.
    let plain = hedged(cfg.clone());
    assert!(plain.recovery().hedges_launched > 0);

    // Streaming on but the gate off: observation alone must not suppress.
    let observed = hedged(cfg.clone().with_streaming(StreamConfig::new(generous)));
    assert_eq!(
        observed.recovery().hedges_launched,
        plain.recovery().hedges_launched,
        "an observing plane with the gate off must not change hedging"
    );

    // Gate on with a generous SLO: nothing ever misses, the monitor stays
    // Healthy, and every hedge is suppressed.
    let suppressed = hedged(
        cfg.clone()
            .with_streaming(StreamConfig::new(generous))
            .with_burn_gated_hedging(true),
    );
    assert_eq!(
        suppressed.recovery().hedges_launched,
        0,
        "healthy burn signal must suppress hedges: {:?}",
        suppressed.recovery()
    );
    assert_eq!(
        suppressed.num_completed() + suppressed.num_dropped() + suppressed.num_rejected(),
        reqs.len(),
        "suppression must not lose requests"
    );

    // Gate on with an unattainable SLO: the budget burns immediately, the
    // signal leaves Healthy, and hedging fires as usual.
    let burning = hedged(
        cfg.with_streaming(StreamConfig::new(tight))
            .with_burn_gated_hedging(true),
    );
    assert!(
        burning.recovery().hedges_launched > 0,
        "a burning SLO budget must re-enable hedges: {:?}",
        burning.recovery()
    );
}
