//! Mid-flight fault injection for the serving engine.
//!
//! The paper's §3.4 failure experiments (Figure 11, Appendix E) flip cluster
//! availability *between* serving segments; this module lets the engine take
//! faults *during* a run. A [`FaultScript`] is a time-ordered list of
//! replica-, link- and service-level faults that
//! [`crate::engine::Simulation::run_with_faults`] consumes as ordinary
//! discrete events: capacity changes take effect at `at`, while recovery
//! actions wait one heartbeat `detection_delay` — between the two, lost work
//! stays silently lost, exactly as a real deployment would experience it.
//!
//! Scripts can be written by hand or derived from the runtime's
//! [`ts_cluster::availability::ClusterEvent`] scripts with
//! [`FaultScript::from_cluster_events`], which projects GPU-level
//! availability changes onto the replicas of a concrete deployment plan.
//!
//! # Colocated engines
//!
//! Because fault handling lives in the shared execution core
//! ([`crate::exec`]), the same scripts drive
//! [`crate::colocated::ColocatedSimulation::run_with_faults`]. A colocated
//! replica hosts both phases, so [`FaultKind::PrefillDown`]`(i)` and
//! [`FaultKind::DecodeDown`]`(i)` both mean "replica `i` dies" (and the
//! `*Up` variants both revive it); [`FaultKind::Pause`] is
//! topology-agnostic; the link faults are rejected with `InvalidConfig`
//! since colocated replicas have no inter-replica KV transfer fabric.

use std::collections::BTreeSet;
use ts_cluster::availability::{ClusterEvent, EventKind as ClusterEventKind};
use ts_cluster::Cluster;
use ts_common::{DeploymentPlan, GpuId, SimDuration, SimTime};

/// A single injected fault.
///
/// The crash-stop kinds (`*Down`/`*Up`, `LinkDown`/`LinkUp`, `Pause`) kill
/// or restore capacity outright. The *gray* kinds (`PrefillSlow`,
/// `DecodeSlow`, `LinkDegraded`, `HeartbeatFlaky`) model capacity that
/// stays online but underperforms — the dominant failure mode on cloud
/// GPUs. Degradation factors are slowdown multipliers (≥ 1; exactly 1
/// heals), so carrying them makes `FaultKind` `PartialEq` but not `Eq`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Prefill replica (engine index) dies: its queued and in-flight batches
    /// are lost until detection, then re-routed to survivors.
    PrefillDown(usize),
    /// Decode replica (engine index) dies: sequences decoding on it lose
    /// their KV cache and must be re-prefilled on a survivor.
    DecodeDown(usize),
    /// Prefill replica comes (back) online, immediately accepting work.
    PrefillUp(usize),
    /// Decode replica comes (back) online with an empty KV cache.
    DecodeUp(usize),
    /// The prefill→decode transfer link of a replica pair goes down:
    /// transfers completing while it is down are retried with capped
    /// exponential backoff.
    LinkDown {
        /// Engine index of the sending prefill replica.
        prefill: usize,
        /// Engine index of the receiving decode replica.
        decode: usize,
    },
    /// The pair's transfer link recovers.
    LinkUp {
        /// Engine index of the sending prefill replica.
        prefill: usize,
        /// Engine index of the receiving decode replica.
        decode: usize,
    },
    /// Whole-service pause until the given time (models the reload blackout
    /// of a full reschedule happening mid-segment): arrivals stall in the
    /// coordinator up to the shed threshold, in-system work drains.
    Pause {
        /// When the service resumes.
        until: SimTime,
    },
    /// Prefill replica becomes a straggler: its batch iteration times
    /// multiply by `factor` (≥ 1; exactly 1 heals it). On colocated
    /// engines, like `PrefillDown`, the index names the whole replica and
    /// both phases slow down.
    PrefillSlow(usize, f64),
    /// Decode replica becomes a straggler: its decode step times multiply
    /// by `factor` (≥ 1; exactly 1 heals it). Colocated: same semantics as
    /// [`FaultKind::PrefillSlow`].
    DecodeSlow(usize, f64),
    /// The prefill→decode transfer path of a replica pair loses bandwidth:
    /// legacy modeled transfers take `factor`× longer, and under
    /// `network_contention` the fabric links along the pair's KV route have
    /// their capacity divided by `factor` with in-flight flows re-fair-
    /// shared live. Factor ≥ 1; exactly 1 heals.
    LinkDegraded {
        /// Engine index of the sending prefill replica.
        prefill: usize,
        /// Engine index of the receiving decode replica.
        decode: usize,
        /// Slowdown multiplier (≥ 1; 1 heals).
        factor: f64,
    },
    /// A replica host's heartbeats are lost with probability `loss_prob`
    /// per beat window (the script's `detection_delay`), drawn from the
    /// engine's seeded fault RNG. A missed beat masks the replica out of
    /// routing as a false positive; the next delivered beat readmits it.
    /// `loss_prob` of 0 heals. The host index counts prefill replicas
    /// first, then decode replicas (colocated: the replica index).
    HeartbeatFlaky(usize, f64),
}

/// A fault and the time it takes effect.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimedFault {
    /// When the fault strikes (capacity changes immediately).
    pub at: SimTime,
    /// What breaks (or heals).
    pub kind: FaultKind,
}

/// A time-ordered fault injection plan for one simulation run.
#[derive(Debug, Clone, Default)]
pub struct FaultScript {
    /// The faults, sorted by time (constructors enforce this).
    pub faults: Vec<TimedFault>,
    /// Heartbeat detection delay: recovery actions for a fault at `t` run at
    /// `t + detection_delay`. Up/healing faults act immediately.
    pub detection_delay: SimDuration,
    /// Whether the engine actively recovers (re-route, re-prefill, retry).
    /// With `false` the faults still destroy capacity and work, but nothing
    /// is rescued — the `ReschedulePolicy::None` baseline.
    pub recovery: bool,
}

impl FaultScript {
    /// The empty script: `run_with_faults` with this is exactly `run`.
    pub fn none() -> Self {
        FaultScript::default()
    }

    /// Builds a script with recovery enabled, sorting the faults by time.
    pub fn new(mut faults: Vec<TimedFault>, detection_delay: SimDuration) -> Self {
        faults.sort_by_key(|f| f.at);
        FaultScript {
            faults,
            detection_delay,
            recovery: true,
        }
    }

    /// Returns a copy with recovery disabled (faults destroy work; nothing
    /// is re-routed, re-prefilled or retried).
    pub fn without_recovery(mut self) -> Self {
        self.recovery = false;
        self
    }

    /// Whether the script injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Projects a cluster availability script onto the replicas of `plan`:
    /// a replica is down while *any* of its GPUs is down. Emits one
    /// `PrefillDown`/`DecodeDown`/`PrefillUp`/`DecodeUp` fault per replica
    /// liveness transition, at the cluster event's time. `cluster` is only
    /// used to resolve node ids to GPU lists; its current availability mask
    /// is ignored (the plan's replicas are assumed live at time zero).
    pub fn from_cluster_events(
        cluster: &Cluster,
        plan: &DeploymentPlan,
        events: &[ClusterEvent],
        detection_delay: SimDuration,
    ) -> Self {
        let mut events: Vec<ClusterEvent> = events.to_vec();
        ts_cluster::availability::sort_script(&mut events);

        // GPU sets per replica, in engine (routing) order.
        let replica_gpus =
            |group_idx: usize| -> BTreeSet<GpuId> { plan.groups[group_idx].gpus().collect() };
        let prefills: Vec<BTreeSet<GpuId>> = plan
            .prefill_indices()
            .into_iter()
            .map(replica_gpus)
            .collect();
        let decodes: Vec<BTreeSet<GpuId>> = plan
            .decode_indices()
            .into_iter()
            .map(replica_gpus)
            .collect();

        let mut down: BTreeSet<GpuId> = BTreeSet::new();
        let mut prefill_dead = vec![false; prefills.len()];
        let mut decode_dead = vec![false; decodes.len()];
        let mut faults = Vec::new();

        let node_gpus = |n: ts_common::NodeId| -> BTreeSet<GpuId> {
            cluster.node(n).gpus.iter().copied().collect()
        };
        let on_node = |sets: &[BTreeSet<GpuId>], gpus: &BTreeSet<GpuId>| -> Vec<usize> {
            sets.iter()
                .enumerate()
                .filter(|(_, s)| !s.is_disjoint(gpus))
                .map(|(i, _)| i)
                .collect()
        };
        for ev in &events {
            match &ev.kind {
                // A spot reclaim (`ScaleDown`) that lands while replicas
                // still occupy the node is a crash-stop from the engine's
                // point of view — exactly a `NodeDown`. A drained node has
                // no replicas on it, so the projection naturally emits
                // nothing.
                ClusterEventKind::NodeDown(n) | ClusterEventKind::ScaleDown(n) => {
                    down.extend(cluster.node(*n).gpus.iter().copied());
                }
                ClusterEventKind::NodeUp(n) | ClusterEventKind::ScaleUp(n) => {
                    for g in &cluster.node(*n).gpus {
                        down.remove(g);
                    }
                }
                // Advisory: nothing fails until the reclaim itself lands.
                ClusterEventKind::PreemptionWarning(_) => {}
                ClusterEventKind::GpusDown(ids) => down.extend(ids.iter().copied()),
                ClusterEventKind::GpusUp(ids) => {
                    for g in ids {
                        down.remove(g);
                    }
                }
                // Gray kinds don't change the availability mask: project
                // them straight onto the replicas hosted by the node(s).
                ClusterEventKind::NodeSlow(n, f) => {
                    let gpus = node_gpus(*n);
                    for i in on_node(&prefills, &gpus) {
                        faults.push(TimedFault {
                            at: ev.at,
                            kind: FaultKind::PrefillSlow(i, *f),
                        });
                    }
                    for j in on_node(&decodes, &gpus) {
                        faults.push(TimedFault {
                            at: ev.at,
                            kind: FaultKind::DecodeSlow(j, *f),
                        });
                    }
                }
                ClusterEventKind::LinkDegraded(a, b, f) => {
                    let (ga, gb) = (node_gpus(*a), node_gpus(*b));
                    for i in on_node(&prefills, &ga) {
                        for j in on_node(&decodes, &gb) {
                            faults.push(TimedFault {
                                at: ev.at,
                                kind: FaultKind::LinkDegraded {
                                    prefill: i,
                                    decode: j,
                                    factor: *f,
                                },
                            });
                        }
                    }
                }
                ClusterEventKind::HeartbeatFlaky(n, p) => {
                    let gpus = node_gpus(*n);
                    for i in on_node(&prefills, &gpus) {
                        faults.push(TimedFault {
                            at: ev.at,
                            kind: FaultKind::HeartbeatFlaky(i, *p),
                        });
                    }
                    for j in on_node(&decodes, &gpus) {
                        faults.push(TimedFault {
                            at: ev.at,
                            kind: FaultKind::HeartbeatFlaky(prefills.len() + j, *p),
                        });
                    }
                }
            }
            let mut transition =
                |dead: &mut [bool], gpus: &[BTreeSet<GpuId>], mk: fn(usize, bool) -> FaultKind| {
                    for (i, set) in gpus.iter().enumerate() {
                        let now_dead = set.iter().any(|g| down.contains(g));
                        if now_dead != dead[i] {
                            dead[i] = now_dead;
                            faults.push(TimedFault {
                                at: ev.at,
                                kind: mk(i, now_dead),
                            });
                        }
                    }
                };
            transition(&mut prefill_dead, &prefills, |i, d| {
                if d {
                    FaultKind::PrefillDown(i)
                } else {
                    FaultKind::PrefillUp(i)
                }
            });
            transition(&mut decode_dead, &decodes, |i, d| {
                if d {
                    FaultKind::DecodeDown(i)
                } else {
                    FaultKind::DecodeUp(i)
                }
            });
        }
        FaultScript::new(faults, detection_delay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_cluster::catalog::GpuModel;
    use ts_cluster::topology::ClusterBuilder;
    use ts_common::{GroupSpec, NodeId, ParallelConfig, Phase, RoutingMatrix, StageSpec};

    fn testbed() -> (Cluster, DeploymentPlan) {
        let cluster = ClusterBuilder::new()
            .node("a", GpuModel::A5000, 2)
            .node("b", GpuModel::A5000, 2)
            .build()
            .unwrap();
        let single = |phase, id: u32| {
            GroupSpec::new(
                phase,
                ParallelConfig::SINGLE,
                vec![StageSpec {
                    gpus: vec![GpuId(id)],
                    layers: 40,
                }],
            )
            .unwrap()
        };
        let plan = DeploymentPlan::new(
            vec![
                single(Phase::Prefill, 0),
                single(Phase::Decode, 2),
                single(Phase::Decode, 3),
            ],
            RoutingMatrix::uniform(1, 2),
        )
        .unwrap();
        (cluster, plan)
    }

    #[test]
    fn empty_script_is_empty() {
        assert!(FaultScript::none().is_empty());
        assert!(!FaultScript::none().recovery || FaultScript::none().faults.is_empty());
    }

    #[test]
    fn new_sorts_by_time() {
        let s = FaultScript::new(
            vec![
                TimedFault {
                    at: SimTime::from_secs_f64(5.0),
                    kind: FaultKind::DecodeDown(0),
                },
                TimedFault {
                    at: SimTime::from_secs_f64(1.0),
                    kind: FaultKind::PrefillDown(0),
                },
            ],
            SimDuration::from_millis(100),
        );
        assert_eq!(s.faults[0].kind, FaultKind::PrefillDown(0));
        assert!(s.recovery);
        assert!(!s.clone().without_recovery().recovery);
    }

    #[test]
    fn cluster_events_project_onto_replicas() {
        let (cluster, plan) = testbed();
        let events = vec![
            // GPU 2 hosts decode replica 0
            ClusterEvent::new(
                SimTime::from_secs_f64(2.0),
                ClusterEventKind::GpusDown(vec![GpuId(2)]),
            ),
            ClusterEvent::new(
                SimTime::from_secs_f64(4.0),
                ClusterEventKind::GpusUp(vec![GpuId(2)]),
            ),
        ];
        let s = FaultScript::from_cluster_events(
            &cluster,
            &plan,
            &events,
            SimDuration::from_millis(50),
        );
        assert_eq!(
            s.faults.iter().map(|f| f.kind).collect::<Vec<_>>(),
            vec![FaultKind::DecodeDown(0), FaultKind::DecodeUp(0)]
        );
        assert_eq!(s.detection_delay, SimDuration::from_millis(50));
    }

    #[test]
    fn node_down_kills_every_replica_on_it() {
        let (cluster, plan) = testbed();
        // node b hosts GPUs 2 and 3 -> both decode replicas die
        let events = vec![ClusterEvent::new(
            SimTime::from_secs_f64(1.0),
            ClusterEventKind::NodeDown(NodeId(1)),
        )];
        let s = FaultScript::from_cluster_events(
            &cluster,
            &plan,
            &events,
            SimDuration::from_millis(50),
        );
        assert_eq!(
            s.faults.iter().map(|f| f.kind).collect::<Vec<_>>(),
            vec![FaultKind::DecodeDown(0), FaultKind::DecodeDown(1)]
        );
    }

    #[test]
    fn gray_cluster_events_project_onto_replicas() {
        let (cluster, plan) = testbed();
        // Node a (GPUs 0,1) hosts the prefill replica; node b (GPUs 2,3)
        // hosts both decode replicas.
        let events = vec![
            ClusterEvent::new(
                SimTime::from_secs_f64(1.0),
                ClusterEventKind::NodeSlow(NodeId(1), 4.0),
            ),
            ClusterEvent::new(
                SimTime::from_secs_f64(2.0),
                ClusterEventKind::LinkDegraded(NodeId(0), NodeId(1), 8.0),
            ),
            ClusterEvent::new(
                SimTime::from_secs_f64(3.0),
                ClusterEventKind::HeartbeatFlaky(NodeId(0), 0.5),
            ),
        ];
        let s = FaultScript::from_cluster_events(
            &cluster,
            &plan,
            &events,
            SimDuration::from_millis(50),
        );
        assert_eq!(
            s.faults.iter().map(|f| f.kind).collect::<Vec<_>>(),
            vec![
                FaultKind::DecodeSlow(0, 4.0),
                FaultKind::DecodeSlow(1, 4.0),
                FaultKind::LinkDegraded {
                    prefill: 0,
                    decode: 0,
                    factor: 8.0
                },
                FaultKind::LinkDegraded {
                    prefill: 0,
                    decode: 1,
                    factor: 8.0
                },
                // Host indices count prefills first: prefill 0 -> host 0.
                FaultKind::HeartbeatFlaky(0, 0.5),
            ]
        );
    }

    #[test]
    fn redundant_events_emit_no_duplicate_transitions() {
        let (cluster, plan) = testbed();
        let down = |t: f64| {
            ClusterEvent::new(
                SimTime::from_secs_f64(t),
                ClusterEventKind::GpusDown(vec![GpuId(2)]),
            )
        };
        let s = FaultScript::from_cluster_events(
            &cluster,
            &plan,
            &[down(1.0), down(2.0)],
            SimDuration::ZERO,
        );
        assert_eq!(s.faults.len(), 1);
    }
}
