//! Colocated (non-disaggregated) serving engine for baselines.
//!
//! vLLM-like and HexGen-like systems run prefill and decode on the *same*
//! model replica. This engine models that faithfully: each replica holds a
//! prefill queue and a continuous decode batch, and when both have work the
//! prefill batch runs first (prefill-priority, as in vLLM's default
//! scheduler) — so long prompts stall ongoing decodes, producing exactly the
//! prefill/decode interference that phase splitting removes.

use crate::config::SimConfig;
use crate::event::{EventKind, EventQueue};
use crate::metrics::{Metrics, RequestRecord};
use crate::router::StrideRouter;
use std::collections::{HashMap, VecDeque};
use ts_cluster::Cluster;
use ts_common::{Error, GroupSpec, Request, RequestId, Result, SimTime};
use ts_costmodel::ReplicaCostModel;

#[derive(Debug, Clone, Copy)]
struct ActiveSeq {
    id: RequestId,
    context: u64,
    remaining: u32,
    last_token_at: ts_common::SimTime,
    max_gap: ts_common::SimDuration,
}

#[derive(Debug, Clone, Copy)]
struct WaitingSeq {
    id: RequestId,
    prompt_len: u64,
    remaining: u32,
}

/// Scheduling policy of a colocated replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColocatedPolicy {
    /// Whole prefill batches run before any decode step (vLLM's default
    /// behaviour; long prompts stall ongoing decodes).
    PrefillPriority,
    /// Sarathi/vLLM-CP-style chunked prefill: prompt processing is split
    /// into chunks of at most this many tokens, and a decode step runs
    /// between chunks, bounding the decode stall per prompt.
    Chunked {
        /// Maximum prompt tokens processed per chunk.
        chunk_tokens: u64,
    },
}

/// What a replica is currently executing.
#[derive(Debug, Clone)]
enum Work {
    /// Processing a chunk of prompt tokens; requests in `finishing`
    /// complete their prefill when this work item ends.
    Prefill { finishing: Vec<Request> },
    DecodeStep,
}

#[derive(Debug)]
struct Replica {
    cost: ReplicaCostModel,
    kv_capacity: u64,
    kv_used: u64,
    prefill_queue: VecDeque<Request>,
    /// Prompt tokens of the queue head already processed by earlier chunks.
    head_progress: u64,
    active: Vec<ActiveSeq>,
    waiting: VecDeque<WaitingSeq>,
    current: Option<Work>,
    /// Under chunked scheduling, alternate prefill chunks and decode steps.
    decode_turn: bool,
}

#[derive(Debug, Clone, Copy)]
struct Pending {
    replica: usize,
    first_token_at: Option<SimTime>,
}

/// A colocated-serving simulation over identical-role replicas.
pub struct ColocatedSimulation<'a> {
    cluster: &'a Cluster,
    cfg: SimConfig,
    policy: ColocatedPolicy,
    replicas: Vec<Replica>,
    router: StrideRouter,
    queue: EventQueue,
    pending: HashMap<RequestId, Pending>,
    payloads: HashMap<RequestId, Request>,
    records: Vec<RequestRecord>,
    dropped: usize,
    now: SimTime,
}

impl<'a> ColocatedSimulation<'a> {
    /// Builds a simulation over `groups`, each serving both phases. The
    /// groups' `phase` fields are ignored. Requests are routed proportional
    /// to each replica's decode throughput capacity.
    ///
    /// # Errors
    /// Returns [`Error::Infeasible`] if any group cannot hold the model or
    /// `groups` is empty.
    pub fn new(cluster: &'a Cluster, groups: &[GroupSpec], cfg: SimConfig) -> Result<Self> {
        Self::with_policy(cluster, groups, cfg, ColocatedPolicy::PrefillPriority)
    }

    /// Like [`ColocatedSimulation::new`] with an explicit scheduling policy.
    ///
    /// # Errors
    /// Returns [`Error::Infeasible`] if any group cannot hold the model or
    /// `groups` is empty.
    pub fn with_policy(
        cluster: &'a Cluster,
        groups: &[GroupSpec],
        cfg: SimConfig,
        policy: ColocatedPolicy,
    ) -> Result<Self> {
        if groups.is_empty() {
            return Err(Error::Infeasible("no replicas".into()));
        }
        let mut replicas = Vec::with_capacity(groups.len());
        let mut weights = Vec::with_capacity(groups.len());
        for g in groups {
            let cost = ReplicaCostModel::new(cluster, &cfg.model, g, &cfg.params)?;
            let kv_capacity = cost.kv_capacity_tokens();
            // Route proportional to steady decode throughput at batch 32.
            weights.push(cost.decode_throughput(32.min(kv_capacity / 1024).max(1), 1024));
            replicas.push(Replica {
                cost,
                kv_capacity,
                kv_used: 0,
                prefill_queue: VecDeque::new(),
                head_progress: 0,
                active: Vec::new(),
                waiting: VecDeque::new(),
                current: None,
                decode_turn: false,
            });
        }
        Ok(ColocatedSimulation {
            cluster,
            cfg,
            policy,
            replicas,
            router: StrideRouter::new(weights)?,
            queue: EventQueue::new(),
            pending: HashMap::new(),
            payloads: HashMap::new(),
            records: Vec::new(),
            dropped: 0,
            now: SimTime::ZERO,
        })
    }

    /// The cluster this simulation runs on.
    pub fn cluster(&self) -> &Cluster {
        self.cluster
    }

    /// Runs the trace to completion.
    ///
    /// # Errors
    /// Returns [`Error::Simulation`] on internal invariant violations.
    pub fn run(&mut self, requests: &[Request]) -> Result<Metrics> {
        for r in requests {
            self.queue.push(r.arrival, EventKind::Arrival(*r));
        }
        let submitted = requests.len();
        while let Some(ev) = self.queue.pop() {
            self.now = ev.at;
            match ev.kind {
                EventKind::Arrival(req) => {
                    let r = self.router.next();
                    self.payloads.insert(req.id, req);
                    self.pending.insert(
                        req.id,
                        Pending {
                            replica: r,
                            first_token_at: None,
                        },
                    );
                    self.replicas[r].prefill_queue.push_back(req);
                    self.maybe_start_work(r);
                }
                EventKind::WorkDone { replica } => self.on_work_done(replica)?,
                other => {
                    return Err(Error::Simulation(format!(
                        "unexpected event {other:?} in colocated engine"
                    )))
                }
            }
        }
        if self.records.len() + self.dropped != submitted {
            return Err(Error::Simulation(format!(
                "conservation violated: {} + {} != {submitted}",
                self.records.len(),
                self.dropped
            )));
        }
        let horizon = self.now.saturating_since(SimTime::ZERO);
        Ok(Metrics::new(
            std::mem::take(&mut self.records),
            self.dropped,
            horizon,
        ))
    }

    fn maybe_start_work(&mut self, ri: usize) {
        self.admit_waiting(ri);
        let budget = self.cfg.max_prefill_batch_tokens;
        let policy = self.policy;
        let r = &mut self.replicas[ri];
        if r.current.is_some() {
            return;
        }
        let has_prefill = !r.prefill_queue.is_empty();
        let has_decode = !r.active.is_empty();
        let run_decode = match policy {
            ColocatedPolicy::PrefillPriority => !has_prefill && has_decode,
            // Chunked: strictly alternate when both kinds of work exist.
            ColocatedPolicy::Chunked { .. } => {
                has_decode && (!has_prefill || r.decode_turn)
            }
        };
        if run_decode {
            let batch = r.active.len() as u64;
            let avg = r.active.iter().map(|a| a.context).sum::<u64>() / batch;
            let latency = r.cost.decode_step_latency(batch, avg);
            r.current = Some(Work::DecodeStep);
            r.decode_turn = false;
            self.queue
                .push(self.now + latency, EventKind::WorkDone { replica: ri });
            return;
        }
        if !has_prefill {
            return;
        }
        match policy {
            ColocatedPolicy::PrefillPriority => {
                // Whole-request FCFS batch up to the token budget.
                let mut total = 0u64;
                let mut batch = Vec::new();
                while let Some(front) = r.prefill_queue.front() {
                    let t = front.prompt_len as u64;
                    if !batch.is_empty() && total + t > budget {
                        break;
                    }
                    total += t;
                    batch.push(r.prefill_queue.pop_front().unwrap());
                }
                let avg = total / batch.len() as u64;
                let latency = r.cost.prefill_latency(total, avg);
                r.current = Some(Work::Prefill { finishing: batch });
                self.queue
                    .push(self.now + latency, EventKind::WorkDone { replica: ri });
            }
            ColocatedPolicy::Chunked { chunk_tokens } => {
                // Process up to chunk_tokens of the queue head(s); requests
                // whose prompts finish within this chunk complete prefill.
                let mut tokens = 0u64;
                let mut finishing = Vec::new();
                while tokens < chunk_tokens {
                    let Some(front) = r.prefill_queue.front().copied() else {
                        break;
                    };
                    let remaining = front.prompt_len as u64 - r.head_progress;
                    let room = chunk_tokens - tokens;
                    if remaining <= room {
                        tokens += remaining;
                        r.head_progress = 0;
                        finishing.push(r.prefill_queue.pop_front().unwrap());
                    } else {
                        r.head_progress += room;
                        tokens += room;
                        break;
                    }
                }
                let avg = finishing
                    .first()
                    .map(|f| f.prompt_len as u64)
                    .unwrap_or(tokens.max(1));
                let latency = r.cost.prefill_latency(tokens.max(1), avg);
                r.current = Some(Work::Prefill { finishing });
                r.decode_turn = true;
                self.queue
                    .push(self.now + latency, EventKind::WorkDone { replica: ri });
            }
        }
    }

    fn on_work_done(&mut self, ri: usize) -> Result<()> {
        let work = self.replicas[ri]
            .current
            .take()
            .ok_or_else(|| Error::Simulation("WorkDone with no work".into()))?;
        match work {
            Work::Prefill { finishing: batch } => {
                for req in batch {
                    let pend = self
                        .pending
                        .get_mut(&req.id)
                        .ok_or_else(|| Error::Simulation(format!("unknown {}", req.id)))?;
                    pend.first_token_at = Some(self.now);
                    if req.decode_steps() == 0 {
                        self.finish(req, self.now, ts_common::SimDuration::ZERO)?;
                    } else {
                        // KV is already local: straight to the waiting queue.
                        self.replicas[ri].waiting.push_back(WaitingSeq {
                            id: req.id,
                            prompt_len: req.prompt_len as u64,
                            remaining: req.decode_steps(),
                        });
                    }
                }
            }
            Work::DecodeStep => {
                let now = self.now;
                let r = &mut self.replicas[ri];
                let mut finished = Vec::new();
                let mut idx = 0;
                while idx < r.active.len() {
                    let a = &mut r.active[idx];
                    a.context += 1;
                    a.remaining -= 1;
                    r.kv_used += 1;
                    let gap = now.saturating_since(a.last_token_at);
                    a.max_gap = a.max_gap.max(gap);
                    a.last_token_at = now;
                    if a.remaining == 0 {
                        let done = r.active.swap_remove(idx);
                        r.kv_used -= done.context;
                        finished.push((done.id, done.max_gap));
                    } else {
                        idx += 1;
                    }
                }
                for (id, gap) in finished {
                    let req = self
                        .payloads
                        .get(&id)
                        .copied()
                        .ok_or_else(|| Error::Simulation(format!("lost request {id}")))?;
                    self.finish(req, self.now, gap)?;
                }
            }
        }
        self.maybe_start_work(ri);
        Ok(())
    }

    fn admit_waiting(&mut self, ri: usize) {
        loop {
            let r = &mut self.replicas[ri];
            let Some(front) = r.waiting.front().copied() else {
                return;
            };
            let need = front.prompt_len + 1;
            let total_need = need + front.remaining as u64;
            if total_need > r.kv_capacity {
                r.waiting.pop_front();
                self.pending.remove(&front.id);
                self.payloads.remove(&front.id);
                self.dropped += 1;
                continue;
            }
            if r.active.len() as u64 >= self.cfg.max_decode_batch
                || r.kv_used + need > r.kv_capacity
            {
                return;
            }
            if let Some(cap) = self.cfg.tpot_batch_cap {
                if !r.active.is_empty() {
                    let batch = r.active.len() as u64 + 1;
                    let ctx = (r.active.iter().map(|a| a.context).sum::<u64>() + need) / batch;
                    if r.cost.decode_step_latency(batch, ctx) > cap {
                        return;
                    }
                }
            }
            r.waiting.pop_front();
            r.kv_used += need;
            let first_token_at = self
                .pending
                .get(&front.id)
                .and_then(|p| p.first_token_at)
                .unwrap_or(self.now);
            r.active.push(ActiveSeq {
                id: front.id,
                context: need,
                remaining: front.remaining,
                last_token_at: first_token_at,
                max_gap: ts_common::SimDuration::ZERO,
            });
        }
    }

    fn finish(
        &mut self,
        req: Request,
        at: SimTime,
        max_token_gap: ts_common::SimDuration,
    ) -> Result<()> {
        self.payloads.remove(&req.id);
        let pend = self
            .pending
            .remove(&req.id)
            .ok_or_else(|| Error::Simulation(format!("finish without pending {}", req.id)))?;
        let first = pend
            .first_token_at
            .ok_or_else(|| Error::Simulation(format!("finish before prefill {}", req.id)))?;
        self.records.push(RequestRecord {
            request: req,
            prefill_replica: pend.replica,
            decode_replica: pend.replica,
            first_token_at: first,
            finished_at: at,
            max_token_gap,
        });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_cluster::presets;
    use ts_common::{GpuId, ModelSpec, ParallelConfig, Phase, SimDuration, SloKind, StageSpec};
    use ts_workload::{generator::generate, spec};

    fn group(gpus: &[u32], tp: usize, pp: usize, layers: usize) -> GroupSpec {
        let per = layers / pp;
        let stages = (0..pp)
            .map(|s| StageSpec {
                gpus: gpus[s * tp..(s + 1) * tp].iter().map(|&g| GpuId(g)).collect(),
                layers: if s + 1 == pp { layers - per * (pp - 1) } else { per },
            })
            .collect();
        GroupSpec::new(Phase::Prefill, ParallelConfig::new(tp, pp).unwrap(), stages).unwrap()
    }

    #[test]
    fn completes_all_requests() {
        let cluster = presets::paper_inhouse_cluster();
        let model = ModelSpec::llama_30b();
        let groups = vec![
            group(&[0, 1], 2, 1, model.num_layers),
            group(&[2, 3], 2, 1, model.num_layers),
            group(&[4, 5], 2, 1, model.num_layers),
            group(&[6, 7], 2, 1, model.num_layers),
        ];
        let mut sim =
            ColocatedSimulation::new(&cluster, &groups, SimConfig::new(model)).unwrap();
        let reqs = generate(&spec::coding(1.0), SimDuration::from_secs(60), 1);
        let m = sim.run(&reqs).unwrap();
        assert_eq!(m.num_completed(), reqs.len());
    }

    #[test]
    fn prefill_interferes_with_decode() {
        // With colocation, adding prefill-heavy load must inflate TPOT: the
        // interference phase splitting removes.
        let cluster = presets::paper_inhouse_cluster();
        let model = ModelSpec::llama_30b();
        let groups = vec![group(&[0, 1], 2, 1, model.num_layers)];
        let cfg = SimConfig::new(model);
        // Light load: few long-decode requests.
        let light = generate(&spec::fixed(256, 64, 0.05), SimDuration::from_secs(120), 2);
        let m_light = ColocatedSimulation::new(&cluster, &groups, cfg.clone())
            .unwrap()
            .run(&light)
            .unwrap();
        // Same decode load + heavy prefill traffic.
        let mut mixed = light.clone();
        let noise = generate(&spec::fixed(3500, 2, 1.2), SimDuration::from_secs(120), 3);
        let base = mixed.len() as u64;
        mixed.extend(noise.into_iter().map(|r| ts_common::Request {
            id: ts_common::RequestId(base + r.id.0),
            ..r
        }));
        mixed.sort_by_key(|r| r.arrival);
        let m_mixed = ColocatedSimulation::new(&cluster, &groups, cfg)
            .unwrap()
            .run(&mixed)
            .unwrap();
        let tpot_light = m_light.mean_latency(SloKind::Tpot).unwrap();
        // mean TPOT over only the long-decode requests in the mixed run
        let tpots: Vec<_> = m_mixed
            .records()
            .iter()
            .filter(|r| r.request.output_len == 64)
            .map(|r| r.tpot())
            .collect();
        let tpot_mixed = tpots.iter().copied().sum::<ts_common::SimDuration>() / tpots.len() as u64;
        assert!(
            tpot_mixed > tpot_light,
            "interference should inflate TPOT: {tpot_mixed} vs {tpot_light}"
        );
    }

    #[test]
    fn deterministic() {
        let cluster = presets::paper_inhouse_cluster();
        let model = ModelSpec::llama_30b();
        let groups = vec![group(&[0, 1, 2, 3], 2, 2, model.num_layers)];
        let cfg = SimConfig::new(model);
        let reqs = generate(&spec::conversation(0.5), SimDuration::from_secs(40), 4);
        let a = ColocatedSimulation::new(&cluster, &groups, cfg.clone()).unwrap().run(&reqs).unwrap();
        let b = ColocatedSimulation::new(&cluster, &groups, cfg).unwrap().run(&reqs).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_groups_rejected() {
        let cluster = presets::paper_inhouse_cluster();
        let model = ModelSpec::llama_30b();
        assert!(ColocatedSimulation::new(&cluster, &[], SimConfig::new(model)).is_err());
    }
}

#[cfg(test)]
mod chunked_tests {
    use super::*;
    use ts_cluster::presets;
    use ts_common::{GpuId, ModelSpec, ParallelConfig, Phase, SimDuration, SloKind, StageSpec};
    use ts_workload::{generator::generate, spec};

    fn one_replica(model: &ModelSpec) -> (ts_cluster::Cluster, Vec<GroupSpec>) {
        let cluster = presets::paper_inhouse_cluster();
        let g = GroupSpec::new(
            Phase::Prefill,
            ParallelConfig::new(2, 1).unwrap(),
            vec![StageSpec {
                gpus: vec![GpuId(0), GpuId(1)],
                layers: model.num_layers,
            }],
        )
        .unwrap();
        (cluster, vec![g])
    }

    #[test]
    fn chunked_prefill_reduces_decode_stalls() {
        // Long prompts + ongoing decodes: chunked prefill should cut the
        // p90 TPOT versus prefill-priority at the cost of slower TTFT.
        let model = ModelSpec::llama_30b();
        let (cluster, groups) = one_replica(&model);
        let w = spec::fixed(3000, 96, 0.35);
        let reqs = generate(&w, SimDuration::from_secs(180), 8);

        let run = |policy| {
            ColocatedSimulation::with_policy(
                &cluster,
                &groups,
                SimConfig::new(model.clone()),
                policy,
            )
            .unwrap()
            .run(&reqs)
            .unwrap()
        };
        let pp = run(ColocatedPolicy::PrefillPriority);
        let ck = run(ColocatedPolicy::Chunked { chunk_tokens: 512 });

        // Chunking's contract: the worst single-token stall is bounded by
        // one chunk's processing time instead of a whole prompt's.
        // (Average TPOT may be *worse* — chunks delay every step a little.)
        let itl = |m: &crate::metrics::Metrics| m.itl_percentile(0.99).unwrap();
        assert!(
            itl(&ck) < itl(&pp),
            "chunked p99 ITL {} should beat prefill-priority {}",
            itl(&ck),
            itl(&pp)
        );
        // The trade-off: whole-batch prefill gives better TTFT.
        let ttft = |m: &crate::metrics::Metrics| m.latency_percentile(SloKind::Ttft, 0.9).unwrap();
        assert!(
            ttft(&ck) >= ttft(&pp),
            "chunking trades TTFT: {} vs {}",
            ttft(&ck),
            ttft(&pp)
        );
        assert_eq!(ck.num_completed() + ck.num_dropped(), reqs.len());
    }

    #[test]
    fn chunked_conserves_and_orders() {
        let model = ModelSpec::llama_30b();
        let (cluster, groups) = one_replica(&model);
        let w = spec::conversation(0.5);
        let reqs = generate(&w, SimDuration::from_secs(60), 9);
        let m = ColocatedSimulation::with_policy(
            &cluster,
            &groups,
            SimConfig::new(model),
            ColocatedPolicy::Chunked { chunk_tokens: 256 },
        )
        .unwrap()
        .run(&reqs)
        .unwrap();
        assert_eq!(m.num_completed() + m.num_dropped(), reqs.len());
        for r in m.records() {
            assert!(r.first_token_at >= r.request.arrival);
            assert!(r.finished_at >= r.first_token_at);
        }
    }

    #[test]
    fn tiny_chunks_still_complete() {
        let model = ModelSpec::llama_30b();
        let (cluster, groups) = one_replica(&model);
        let w = spec::fixed(100, 4, 0.4);
        let reqs = generate(&w, SimDuration::from_secs(30), 10);
        let m = ColocatedSimulation::with_policy(
            &cluster,
            &groups,
            SimConfig::new(model),
            ColocatedPolicy::Chunked { chunk_tokens: 1 },
        )
        .unwrap()
        .run(&reqs)
        .unwrap();
        assert_eq!(m.num_completed(), reqs.len());
    }
}
