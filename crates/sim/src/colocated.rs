//! Colocated (non-disaggregated) serving engine for baselines.
//!
//! vLLM-like and HexGen-like systems run prefill and decode on the *same*
//! model replica. This engine models that faithfully: each replica holds a
//! prefill queue and a continuous decode batch, and when both have work the
//! prefill batch runs first (prefill-priority, as in vLLM's default
//! scheduler) — so long prompts stall ongoing decodes, producing exactly the
//! prefill/decode interference that phase splitting removes.
//!
//! [`ColocatedSimulation`] is a thin facade over the shared execution core
//! in [`crate::exec`] — the same event loop, router, admission policy and
//! fault layer that drive the phase-split [`crate::engine::Simulation`],
//! instantiated with the [`crate::exec::ColocatedExecutor`] topology. A
//! direct consequence of that sharing:
//! [`ColocatedSimulation::run_with_faults`] accepts the same
//! [`FaultScript`]s as the phase-split engine and produces the same
//! [`crate::metrics::RecoveryCounters`] semantics, so the paper's failure
//! experiments can compare fault behaviour against colocated baselines on
//! equal footing. Since a colocated replica hosts both phases,
//! `PrefillDown(i)` and `DecodeDown(i)` both mean "replica `i` dies" (and
//! symmetrically for `*Up`); link faults are rejected because there is no
//! inter-replica KV fabric.

use crate::config::SimConfig;
use crate::exec::driver::Driver;
use crate::fault::FaultScript;
use crate::metrics::Metrics;
use ts_cluster::Cluster;
use ts_common::{GroupSpec, Request, Result};

pub use crate::exec::ColocatedPolicy;

/// A colocated-serving simulation over identical-role replicas.
pub struct ColocatedSimulation<'a> {
    cluster: &'a Cluster,
    driver: Driver,
}

impl<'a> ColocatedSimulation<'a> {
    /// Builds a simulation over `groups`, each serving both phases. The
    /// groups' `phase` fields are ignored. Requests are routed proportional
    /// to each replica's decode throughput capacity.
    ///
    /// # Errors
    /// Returns [`ts_common::Error::Infeasible`] if any group cannot hold the
    /// model or `groups` is empty.
    pub fn new(cluster: &'a Cluster, groups: &[GroupSpec], cfg: SimConfig) -> Result<Self> {
        Self::with_policy(cluster, groups, cfg, ColocatedPolicy::PrefillPriority)
    }

    /// Like [`ColocatedSimulation::new`] with an explicit scheduling policy.
    ///
    /// # Errors
    /// Returns [`ts_common::Error::Infeasible`] if any group cannot hold the
    /// model or `groups` is empty.
    pub fn with_policy(
        cluster: &'a Cluster,
        groups: &[GroupSpec],
        cfg: SimConfig,
        policy: ColocatedPolicy,
    ) -> Result<Self> {
        Ok(ColocatedSimulation {
            cluster,
            driver: Driver::new_colocated(cluster, groups, cfg, policy)?,
        })
    }

    /// The cluster this simulation runs on.
    pub fn cluster(&self) -> &Cluster {
        self.cluster
    }

    /// Runs the trace to completion.
    ///
    /// # Errors
    /// Returns [`ts_common::Error::Simulation`] on internal invariant
    /// violations.
    pub fn run(&mut self, requests: &[Request]) -> Result<Metrics> {
        self.run_with_faults(requests, &FaultScript::none())
    }

    /// Runs the trace with mid-flight fault injection — same contract as
    /// [`crate::engine::Simulation::run_with_faults`], with replica-level
    /// faults interpreted on colocated replicas (either phase's
    /// `Down(i)`/`Up(i)` maps to replica `i`). With an empty script this is
    /// exactly [`ColocatedSimulation::run`].
    ///
    /// # Errors
    /// Returns [`ts_common::Error::InvalidConfig`] for out-of-range replica
    /// indices or link faults in the script, and
    /// [`ts_common::Error::Simulation`] on invariant violations.
    pub fn run_with_faults(
        &mut self,
        requests: &[Request],
        script: &FaultScript,
    ) -> Result<Metrics> {
        self.driver.run_with_faults(requests, script)
    }

    /// Takes the telemetry recorded so far, finalized into a time-sorted
    /// [`ts_telemetry::TraceLog`]. Returns `None` unless the simulation was
    /// built with [`SimConfig::with_telemetry`] enabled (or if the trace was
    /// already taken). Call after [`ColocatedSimulation::run`] to get the
    /// full run.
    pub fn take_trace(&mut self) -> Option<ts_telemetry::TraceLog> {
        self.driver.take_trace()
    }

    /// Takes the streaming observability plane accumulated over the run
    /// (online sketches, window counters, burn monitors). Returns `None`
    /// unless the simulation was built with [`SimConfig::with_streaming`]
    /// (or if the plane was already taken).
    pub fn take_streaming(&mut self) -> Option<Box<ts_telemetry::StreamingPlane>> {
        self.driver.take_streaming()
    }

    /// Read access to the live streaming plane, `None` unless
    /// [`SimConfig::with_streaming`] was set.
    pub fn streaming(&self) -> Option<&ts_telemetry::StreamingPlane> {
        self.driver.streaming()
    }

    /// Total number of discrete events dispatched so far (across every run
    /// on this simulation). The benchmark harness divides by wall time for
    /// an events/sec figure.
    pub fn events_processed(&self) -> u64 {
        self.driver.events_processed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_cluster::presets;
    use ts_common::{GpuId, ModelSpec, ParallelConfig, Phase, SimDuration, SloKind, StageSpec};
    use ts_workload::{generator::generate, spec};

    fn group(gpus: &[u32], tp: usize, pp: usize, layers: usize) -> GroupSpec {
        let per = layers / pp;
        let stages = (0..pp)
            .map(|s| StageSpec {
                gpus: gpus[s * tp..(s + 1) * tp]
                    .iter()
                    .map(|&g| GpuId(g))
                    .collect(),
                layers: if s + 1 == pp {
                    layers - per * (pp - 1)
                } else {
                    per
                },
            })
            .collect();
        GroupSpec::new(Phase::Prefill, ParallelConfig::new(tp, pp).unwrap(), stages).unwrap()
    }

    #[test]
    fn completes_all_requests() {
        let cluster = presets::paper_inhouse_cluster();
        let model = ModelSpec::llama_30b();
        let groups = vec![
            group(&[0, 1], 2, 1, model.num_layers),
            group(&[2, 3], 2, 1, model.num_layers),
            group(&[4, 5], 2, 1, model.num_layers),
            group(&[6, 7], 2, 1, model.num_layers),
        ];
        let mut sim = ColocatedSimulation::new(&cluster, &groups, SimConfig::new(model)).unwrap();
        let reqs = generate(&spec::coding(1.0), SimDuration::from_secs(60), 1);
        let m = sim.run(&reqs).unwrap();
        assert_eq!(m.num_completed(), reqs.len());
    }

    #[test]
    fn prefill_interferes_with_decode() {
        // With colocation, adding prefill-heavy load must inflate TPOT: the
        // interference phase splitting removes.
        let cluster = presets::paper_inhouse_cluster();
        let model = ModelSpec::llama_30b();
        let groups = vec![group(&[0, 1], 2, 1, model.num_layers)];
        let cfg = SimConfig::new(model);
        // Light load: few long-decode requests.
        let light = generate(&spec::fixed(256, 64, 0.05), SimDuration::from_secs(120), 2);
        let m_light = ColocatedSimulation::new(&cluster, &groups, cfg.clone())
            .unwrap()
            .run(&light)
            .unwrap();
        // Same decode load + heavy prefill traffic.
        let mut mixed = light.clone();
        let noise = generate(&spec::fixed(3500, 2, 1.2), SimDuration::from_secs(120), 3);
        let base = mixed.len() as u64;
        mixed.extend(noise.into_iter().map(|r| ts_common::Request {
            id: ts_common::RequestId(base + r.id.0),
            ..r
        }));
        mixed.sort_by_key(|r| r.arrival);
        let m_mixed = ColocatedSimulation::new(&cluster, &groups, cfg)
            .unwrap()
            .run(&mixed)
            .unwrap();
        let tpot_light = m_light.mean_latency(SloKind::Tpot).unwrap();
        // mean TPOT over only the long-decode requests in the mixed run
        let tpots: Vec<_> = m_mixed
            .records()
            .iter()
            .filter(|r| r.request.output_len == 64)
            .map(|r| r.tpot())
            .collect();
        let tpot_mixed = tpots.iter().copied().sum::<ts_common::SimDuration>() / tpots.len() as u64;
        assert!(
            tpot_mixed > tpot_light,
            "interference should inflate TPOT: {tpot_mixed} vs {tpot_light}"
        );
    }

    #[test]
    fn deterministic() {
        let cluster = presets::paper_inhouse_cluster();
        let model = ModelSpec::llama_30b();
        let groups = vec![group(&[0, 1, 2, 3], 2, 2, model.num_layers)];
        let cfg = SimConfig::new(model);
        let reqs = generate(&spec::conversation(0.5), SimDuration::from_secs(40), 4);
        let a = ColocatedSimulation::new(&cluster, &groups, cfg.clone())
            .unwrap()
            .run(&reqs)
            .unwrap();
        let b = ColocatedSimulation::new(&cluster, &groups, cfg)
            .unwrap()
            .run(&reqs)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_groups_rejected() {
        let cluster = presets::paper_inhouse_cluster();
        let model = ModelSpec::llama_30b();
        assert!(ColocatedSimulation::new(&cluster, &[], SimConfig::new(model)).is_err());
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use crate::fault::{FaultKind, FaultScript, TimedFault};
    use ts_cluster::presets;
    use ts_common::{GpuId, ModelSpec, ParallelConfig, Phase, SimDuration, SimTime, StageSpec};
    use ts_workload::{generator::generate, spec};

    fn two_replicas(model: &ModelSpec) -> (ts_cluster::Cluster, Vec<GroupSpec>) {
        let cluster = presets::paper_inhouse_cluster();
        let group = |ids: [u32; 2]| {
            GroupSpec::new(
                Phase::Prefill,
                ParallelConfig::new(2, 1).unwrap(),
                vec![StageSpec {
                    gpus: ids.iter().map(|&i| GpuId(i)).collect(),
                    layers: model.num_layers,
                }],
            )
            .unwrap()
        };
        (cluster, vec![group([0, 1]), group([2, 3])])
    }

    fn fault(at_s: f64, kind: FaultKind) -> TimedFault {
        TimedFault {
            at: SimTime::from_secs_f64(at_s),
            kind,
        }
    }

    #[test]
    fn empty_script_matches_plain_run() {
        let model = ModelSpec::llama_30b();
        let (cluster, groups) = two_replicas(&model);
        let cfg = SimConfig::new(model);
        let reqs = generate(&spec::coding(0.8), SimDuration::from_secs(40), 31);
        let plain = ColocatedSimulation::new(&cluster, &groups, cfg.clone())
            .unwrap()
            .run(&reqs)
            .unwrap();
        let scripted = ColocatedSimulation::new(&cluster, &groups, cfg)
            .unwrap()
            .run_with_faults(&reqs, &FaultScript::none())
            .unwrap();
        assert_eq!(plain, scripted);
    }

    #[test]
    fn replica_death_mid_run_recovers_on_survivor() {
        // The colocated analogue of the phase-split failover test: one of
        // two vLLM-style replicas dies mid-decode and the survivor absorbs
        // its re-prefilled sequences, with the same RecoveryCounters
        // semantics as the disaggregated engine.
        let model = ModelSpec::llama_30b();
        let (cluster, groups) = two_replicas(&model);
        let cfg = SimConfig::new(model);
        let reqs = generate(&spec::fixed(512, 192, 1.5), SimDuration::from_secs(60), 32);
        let script = FaultScript::new(
            vec![fault(20.0, FaultKind::DecodeDown(0))],
            SimDuration::from_millis(500),
        );
        let run = || {
            ColocatedSimulation::new(&cluster, &groups, cfg.clone())
                .unwrap()
                .run_with_faults(&reqs, &script)
                .unwrap()
        };
        let m = run();
        assert!(
            m.recovery().reprefilled_tokens > 0,
            "expected lost KV to be re-prefilled: {:?}",
            m.recovery()
        );
        assert_eq!(
            m.num_completed() + m.num_dropped() + m.num_rejected(),
            reqs.len()
        );
        assert_eq!(
            m.num_completed(),
            reqs.len(),
            "survivor should absorb all work"
        );
        assert!(m.recovery().max_time_to_recover().is_some());
        // Every post-fault completion ran on the survivor.
        for r in m.records() {
            if r.finished_at > SimTime::from_secs_f64(21.0) {
                assert_eq!(r.decode_replica, 1, "dead replica served a request");
            }
        }
        assert_eq!(m, run());
    }

    #[test]
    fn recovery_beats_no_recovery() {
        let model = ModelSpec::llama_30b();
        let (cluster, groups) = two_replicas(&model);
        let cfg = SimConfig::new(model);
        let reqs = generate(&spec::fixed(512, 192, 1.5), SimDuration::from_secs(60), 33);
        let script = FaultScript::new(
            vec![fault(20.0, FaultKind::PrefillDown(0))],
            SimDuration::from_millis(500),
        );
        let with = ColocatedSimulation::new(&cluster, &groups, cfg.clone())
            .unwrap()
            .run_with_faults(&reqs, &script)
            .unwrap();
        let without = ColocatedSimulation::new(&cluster, &groups, cfg)
            .unwrap()
            .run_with_faults(&reqs, &script.clone().without_recovery())
            .unwrap();
        assert!(
            without.num_dropped() > 0,
            "no-recovery should lose requests"
        );
        assert!(with.num_completed() > without.num_completed());
        assert_eq!(
            without.num_completed() + without.num_dropped() + without.num_rejected(),
            reqs.len()
        );
    }

    #[test]
    fn blip_restores_service() {
        let model = ModelSpec::llama_30b();
        let (cluster, groups) = two_replicas(&model);
        let cfg = SimConfig::new(model);
        let reqs = generate(&spec::fixed(512, 96, 1.5), SimDuration::from_secs(60), 34);
        let script = FaultScript::new(
            vec![
                fault(15.0, FaultKind::DecodeDown(0)),
                fault(25.0, FaultKind::DecodeUp(0)),
            ],
            SimDuration::from_secs_f64(2.0),
        );
        let m = ColocatedSimulation::new(&cluster, &groups, cfg)
            .unwrap()
            .run_with_faults(&reqs, &script)
            .unwrap();
        assert_eq!(m.num_completed(), reqs.len(), "{:?}", m.recovery());
        assert!(m.recovery().any());
    }

    #[test]
    fn link_faults_are_rejected() {
        // Colocated replicas have no inter-replica KV fabric to fault.
        let model = ModelSpec::llama_30b();
        let (cluster, groups) = two_replicas(&model);
        let script = FaultScript::new(
            vec![fault(
                1.0,
                FaultKind::LinkDown {
                    prefill: 0,
                    decode: 1,
                },
            )],
            SimDuration::ZERO,
        );
        let err = ColocatedSimulation::new(&cluster, &groups, SimConfig::new(model))
            .unwrap()
            .run_with_faults(&[], &script);
        assert!(err.is_err());
    }

    #[test]
    fn out_of_range_fault_is_rejected() {
        let model = ModelSpec::llama_30b();
        let (cluster, groups) = two_replicas(&model);
        let script = FaultScript::new(
            vec![fault(1.0, FaultKind::DecodeDown(7))],
            SimDuration::ZERO,
        );
        let err = ColocatedSimulation::new(&cluster, &groups, SimConfig::new(model))
            .unwrap()
            .run_with_faults(&[], &script);
        assert!(err.is_err());
    }
}

#[cfg(test)]
mod chunked_tests {
    use super::*;
    use ts_cluster::presets;
    use ts_common::{GpuId, ModelSpec, ParallelConfig, Phase, SimDuration, SloKind, StageSpec};
    use ts_workload::{generator::generate, spec};

    fn one_replica(model: &ModelSpec) -> (ts_cluster::Cluster, Vec<GroupSpec>) {
        let cluster = presets::paper_inhouse_cluster();
        let g = GroupSpec::new(
            Phase::Prefill,
            ParallelConfig::new(2, 1).unwrap(),
            vec![StageSpec {
                gpus: vec![GpuId(0), GpuId(1)],
                layers: model.num_layers,
            }],
        )
        .unwrap();
        (cluster, vec![g])
    }

    #[test]
    fn chunked_prefill_reduces_decode_stalls() {
        // Long prompts + ongoing decodes: chunked prefill should cut the
        // p90 TPOT versus prefill-priority at the cost of slower TTFT.
        let model = ModelSpec::llama_30b();
        let (cluster, groups) = one_replica(&model);
        let w = spec::fixed(3000, 96, 0.35);
        let reqs = generate(&w, SimDuration::from_secs(180), 8);

        let run = |policy| {
            ColocatedSimulation::with_policy(
                &cluster,
                &groups,
                SimConfig::new(model.clone()),
                policy,
            )
            .unwrap()
            .run(&reqs)
            .unwrap()
        };
        let pp = run(ColocatedPolicy::PrefillPriority);
        let ck = run(ColocatedPolicy::Chunked { chunk_tokens: 512 });

        // Chunking's contract: the worst single-token stall is bounded by
        // one chunk's processing time instead of a whole prompt's.
        // (Average TPOT may be *worse* — chunks delay every step a little.)
        let itl = |m: &crate::metrics::Metrics| m.itl_percentile(0.99).unwrap();
        assert!(
            itl(&ck) < itl(&pp),
            "chunked p99 ITL {} should beat prefill-priority {}",
            itl(&ck),
            itl(&pp)
        );
        // The trade-off: whole-batch prefill gives better TTFT.
        let ttft = |m: &crate::metrics::Metrics| m.latency_percentile(SloKind::Ttft, 0.9).unwrap();
        assert!(
            ttft(&ck) >= ttft(&pp),
            "chunking trades TTFT: {} vs {}",
            ttft(&ck),
            ttft(&pp)
        );
        assert_eq!(ck.num_completed() + ck.num_dropped(), reqs.len());
    }

    #[test]
    fn chunked_conserves_and_orders() {
        let model = ModelSpec::llama_30b();
        let (cluster, groups) = one_replica(&model);
        let w = spec::conversation(0.5);
        let reqs = generate(&w, SimDuration::from_secs(60), 9);
        let m = ColocatedSimulation::with_policy(
            &cluster,
            &groups,
            SimConfig::new(model),
            ColocatedPolicy::Chunked { chunk_tokens: 256 },
        )
        .unwrap()
        .run(&reqs)
        .unwrap();
        assert_eq!(m.num_completed() + m.num_dropped(), reqs.len());
        for r in m.records() {
            assert!(r.first_token_at >= r.request.arrival);
            assert!(r.finished_at >= r.first_token_at);
        }
    }

    #[test]
    fn tiny_chunks_still_complete() {
        let model = ModelSpec::llama_30b();
        let (cluster, groups) = one_replica(&model);
        let w = spec::fixed(100, 4, 0.4);
        let reqs = generate(&w, SimDuration::from_secs(30), 10);
        let m = ColocatedSimulation::with_policy(
            &cluster,
            &groups,
            SimConfig::new(model),
            ColocatedPolicy::Chunked { chunk_tokens: 1 },
        )
        .unwrap()
        .run(&reqs)
        .unwrap();
        assert_eq!(m.num_completed(), reqs.len());
    }
}
