//! Shared per-sequence bookkeeping for every executor.
//!
//! Both the phase-split and the colocated engines used to carry private
//! copies of these structs; they now live here once. The lifecycle is the
//! same everywhere:
//!
//! 1. an arrival becomes a [`PrefillJob`] (fresh, or a re-prefill of lost
//!    context after a fault),
//! 2. a completed prefill becomes a [`WaitingSeq`] queued for decode
//!    admission,
//! 3. admission turns it into an [`ActiveSeq`] inside a [`BatchCore`],
//!    which tracks KV memory and per-token gap statistics until the
//!    sequence finishes.
//!
//! All of these carry the request's dense [`SlabKey`] into the driver's
//! request slab rather than the request payload or its id: the structs stay
//! `Copy` and 8-byte-keyed, and every per-event lookup is an array index
//! instead of a hash probe. The id (for traces and records) and the payload
//! live in the slab entry.

use crate::config::{PrefillPolicy, SimConfig};
use std::collections::VecDeque;
use ts_common::{Request, SimDuration, SimTime, SlabKey};
use ts_costmodel::ReplicaCostModel;

/// Per-request routing decision and timing bookkeeping held by the driver.
///
/// For the phase-split topology `prefill` and `decode` index distinct
/// replica lists; for the colocated topology they are the same replica.
#[derive(Debug, Clone, Copy)]
pub struct Pending {
    /// Index of the prefill replica serving this request.
    pub prefill: usize,
    /// Index of the decode replica serving this request.
    pub decode: usize,
    /// When the first output token was produced (set once; re-prefills
    /// after a fault keep the original TTFT).
    pub first_token_at: Option<SimTime>,
    /// When the KV transfer was first enqueued on the sender (set once, at
    /// prefill completion; `None` for colocated or single-token requests).
    pub kv_enqueued_at: Option<SimTime>,
    /// When the KV bytes last started moving on the wire (re-stamped by
    /// retries, so delivery sees the successful attempt's start).
    pub kv_wire_started_at: Option<SimTime>,
    /// When the KV cache was delivered to the decode replica.
    pub kv_done_at: Option<SimTime>,
    /// Whether a prefill completion already launched this request's KV
    /// transfer. Guards against duplicate launches when a hedged prefill
    /// copy finishes second (first completion wins); reset when a fault
    /// forces a re-prefill.
    pub kv_launched: bool,
    /// The (prefill, decode) pair of an in-flight hedged duplicate, if one
    /// was launched; `None` until the hedge timer fires and again once the
    /// race resolves.
    pub hedge: Option<(usize, usize)>,
}

impl Pending {
    /// Fresh bookkeeping for a request routed to `(prefill, decode)`.
    pub fn new(prefill: usize, decode: usize) -> Self {
        Pending {
            prefill,
            decode,
            first_token_at: None,
            kv_enqueued_at: None,
            kv_wire_started_at: None,
            kv_done_at: None,
            kv_launched: false,
            hedge: None,
        }
    }
}

/// Decode-side progress carried across a fault: a re-prefilled sequence
/// resumes its token-gap accounting instead of starting fresh, so the
/// recovery stall shows up in ITL metrics.
#[derive(Debug, Clone, Copy)]
pub struct ResumeState {
    /// When this sequence's previous token was emitted.
    pub last_token_at: SimTime,
    /// Longest inter-token gap observed before the fault.
    pub max_gap: SimDuration,
}

/// A unit of prefill work: a fresh request (prompt prefill) or a recovered
/// sequence being re-prefilled over its full lost context.
#[derive(Debug, Clone, Copy)]
pub struct PrefillJob {
    /// Slab handle of the request being served.
    pub key: SlabKey,
    /// Tokens to prefill: the prompt for fresh requests, the whole lost
    /// context (prompt + generated) for recovered ones.
    pub tokens: u64,
    /// Decode steps still owed after this prefill.
    pub remaining: u32,
    /// Gap-tracking state carried across a fault, if any.
    pub resume: Option<ResumeState>,
}

impl PrefillJob {
    /// A fresh (non-recovery) job for the request stored under `key`.
    pub fn fresh(key: SlabKey, req: &Request) -> Self {
        PrefillJob {
            key,
            tokens: req.prompt_len as u64,
            remaining: req.decode_steps(),
            resume: None,
        }
    }
}

/// A sequence whose KV cache is resident and which is waiting for a slot in
/// the continuous decode batch.
#[derive(Debug, Clone, Copy)]
pub struct WaitingSeq {
    /// Slab handle of the request.
    pub key: SlabKey,
    /// Context tokens whose KV is resident (prompt, or full re-prefilled
    /// context for recovered sequences).
    pub tokens: u64,
    /// Decode steps still to run.
    pub remaining: u32,
    /// Gap-tracking state carried across a fault, if any.
    pub resume: Option<ResumeState>,
}

/// A sequence inside the continuous decode batch.
#[derive(Debug, Clone, Copy)]
pub struct ActiveSeq {
    /// Slab handle of the request.
    pub key: SlabKey,
    /// Tokens currently in this sequence's KV cache (prompt + generated).
    pub context: u64,
    /// Decode steps still to run.
    pub remaining: u32,
    /// When this sequence's previous token was emitted.
    pub last_token_at: SimTime,
    /// Longest inter-token gap observed so far.
    pub max_gap: SimDuration,
}

/// Outcome of one admission pass, in the exact order decisions were made.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitOutcome {
    /// The sequence joined the active batch.
    Admitted(SlabKey),
    /// The sequence can never fit in KV memory and was evicted.
    Dropped(SlabKey),
}

/// The continuous-batching core of a decode-capable replica: KV memory
/// accounting plus the active batch and its admission queue.
///
/// This is the single copy of the batching/ITL logic both engines used to
/// duplicate; the executors own one each and the driver calls
/// [`BatchCore::admit`] / [`BatchCore::advance`].
#[derive(Debug, Default)]
pub struct BatchCore {
    /// KV capacity of the replica in tokens.
    pub kv_capacity: u64,
    /// KV tokens currently resident.
    pub kv_used: u64,
    /// Sequences in the continuous batch.
    pub active: Vec<ActiveSeq>,
    /// Sequences waiting for admission, FCFS.
    pub waiting: VecDeque<WaitingSeq>,
}

impl BatchCore {
    /// An empty core with the given KV capacity.
    pub fn new(kv_capacity: u64) -> Self {
        BatchCore {
            kv_capacity,
            ..Default::default()
        }
    }

    /// Admits waiting sequences in FCFS order while memory, batch-size and
    /// (optional) TPOT-cap limits allow. Oversized sequences that can never
    /// fit are dropped. Returns the decisions in order; the caller applies
    /// their side effects (drop accounting, recovery bookkeeping).
    pub fn admit(
        &mut self,
        cost: &ReplicaCostModel,
        cfg: &SimConfig,
        now: SimTime,
        first_token_at: impl Fn(SlabKey) -> Option<SimTime>,
    ) -> Vec<AdmitOutcome> {
        let mut out = Vec::new();
        loop {
            let Some(front) = self.waiting.front().copied() else {
                return out;
            };
            let need = front.tokens + 1;
            let total_need = front.tokens + 1 + front.remaining as u64;
            if total_need > self.kv_capacity {
                // can never fit: drop
                self.waiting.pop_front();
                out.push(AdmitOutcome::Dropped(front.key));
                continue;
            }
            if self.active.len() as u64 >= cfg.max_decode_batch
                || self.kv_used + need > self.kv_capacity
            {
                return out;
            }
            // SLO-aware batch cap: do not grow the batch past the point
            // where the projected step latency breaks the TPOT deadline.
            if let Some(cap) = cfg.tpot_batch_cap {
                if !self.active.is_empty() {
                    let batch = self.active.len() as u64 + 1;
                    let ctx = (self.active.iter().map(|a| a.context).sum::<u64>() + need) / batch;
                    if cost.decode_step_latency(batch, ctx) > cap {
                        return out;
                    }
                }
            }
            self.waiting.pop_front();
            self.kv_used += need;
            let first = first_token_at(front.key).unwrap_or(now);
            let (last_token_at, max_gap) = match front.resume {
                Some(r) => (r.last_token_at, r.max_gap),
                None => (first, SimDuration::ZERO),
            };
            self.active.push(ActiveSeq {
                key: front.key,
                context: need,
                remaining: front.remaining,
                last_token_at,
                max_gap,
            });
            out.push(AdmitOutcome::Admitted(front.key));
        }
    }

    /// Runs one decode step over the active batch at time `now`: every
    /// sequence gains one token of context, KV grows, inter-token gaps are
    /// tracked, and finished sequences are removed. Returns
    /// `(key, max_token_gap)` for each sequence that finished.
    pub fn advance(&mut self, now: SimTime) -> Vec<(SlabKey, SimDuration)> {
        let mut finished = Vec::new();
        let mut idx = 0;
        while idx < self.active.len() {
            let a = &mut self.active[idx];
            a.context += 1;
            a.remaining -= 1;
            self.kv_used += 1;
            let gap = now.saturating_since(a.last_token_at);
            a.max_gap = a.max_gap.max(gap);
            a.last_token_at = now;
            if a.remaining == 0 {
                let done = self.active.swap_remove(idx);
                self.kv_used -= done.context;
                finished.push((done.key, done.max_gap));
            } else {
                idx += 1;
            }
        }
        finished
    }

    /// Retroactively applies one coalesced intermediate decode step that
    /// ended at `at`: identical to [`BatchCore::advance`] except that no
    /// sequence may finish — the decode-step coalescer plans runs up to the
    /// first finish boundary, so intermediate steps only grow context and
    /// gap statistics.
    pub fn materialize_step(&mut self, at: SimTime) {
        debug_assert!(
            self.active.iter().all(|a| a.remaining > 1),
            "an intermediate coalesced step must not finish a sequence"
        );
        for a in &mut self.active {
            a.context += 1;
            a.remaining -= 1;
            self.kv_used += 1;
            let gap = at.saturating_since(a.last_token_at);
            a.max_gap = a.max_gap.max(gap);
            a.last_token_at = at;
        }
    }

    /// Mean context length of the active batch (caller must ensure the
    /// batch is non-empty) — the input to the decode step cost model.
    pub fn avg_context(&self) -> u64 {
        let batch = self.active.len() as u64;
        self.active.iter().map(|a| a.context).sum::<u64>() / batch
    }
}

/// A prefill work queue with chunked-prefill progress tracking, shared by
/// prefill and colocated executors.
#[derive(Debug, Default)]
pub struct PrefillQueue {
    /// Queued jobs: FCFS arrival order, or kept sorted by prompt length
    /// (ties in arrival order) when `sjf` is set.
    pub queue: VecDeque<PrefillJob>,
    /// Prompt tokens of the queue head already processed by earlier chunks.
    pub head_progress: u64,
    /// Whether the queue maintains shortest-job-first order at insertion.
    /// Set when the replica's policy is [`PrefillPolicy::ShortestFirst`]
    /// and prefills are not chunked: insertion is a binary search instead
    /// of an O(n log n) re-sort of the whole queue on every batch launch.
    sjf: bool,
}

impl PrefillQueue {
    /// An empty queue; `sjf` keeps it insertion-sorted by prompt length.
    pub fn new(sjf: bool) -> Self {
        PrefillQueue {
            sjf,
            ..Default::default()
        }
    }

    /// Whether no work is queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Enqueues `job`: appended under FCFS, binary-inserted after the last
    /// job with the same or a shorter prompt under SJF — exactly the
    /// position a stable sort by token count would give it.
    pub fn enqueue(&mut self, job: PrefillJob) {
        if self.sjf {
            let pos = self.queue.partition_point(|j| j.tokens <= job.tokens);
            self.queue.insert(pos, job);
        } else {
            self.queue.push_back(job);
        }
    }

    /// Takes a whole-request batch under the token `budget`: FCFS (or
    /// shortest-first under SJF, stable among equal prompt lengths) until
    /// the next job would exceed the budget. At least one job is always
    /// taken. Returns the batch and its total token count.
    pub fn take_batch(&mut self, budget: u64, policy: PrefillPolicy) -> (Vec<PrefillJob>, u64) {
        let mut batch = Vec::new();
        let total = self.take_batch_into(budget, policy, &mut batch);
        (batch, total)
    }

    /// [`PrefillQueue::take_batch`] into a caller-provided buffer (cleared
    /// first), so steady-state batch formation can recycle one allocation
    /// per replica instead of allocating per batch. Returns the total
    /// prompt tokens taken.
    pub fn take_batch_into(
        &mut self,
        budget: u64,
        policy: PrefillPolicy,
        batch: &mut Vec<PrefillJob>,
    ) -> u64 {
        if policy == PrefillPolicy::ShortestFirst && !self.sjf {
            // Stable sort keeps arrival order among equal prompt lengths.
            // (Executors built with the SJF flag maintain this order at
            // insertion instead and skip the sort.)
            self.queue.make_contiguous().sort_by_key(|j| j.tokens);
        }
        batch.clear();
        let mut total = 0u64;
        while let Some(front) = self.queue.front() {
            let t = front.tokens;
            if !batch.is_empty() && total + t > budget {
                break;
            }
            total += t;
            batch.push(self.queue.pop_front().unwrap());
        }
        total
    }

    /// Takes up to `chunk_tokens` of the queue head(s), Sarathi-style: jobs
    /// whose remaining tokens fit in the chunk finish their prefill, a
    /// partially covered head records its progress and stays queued.
    /// Returns the finishing jobs and the tokens processed this chunk.
    pub fn take_chunk(&mut self, chunk_tokens: u64) -> (Vec<PrefillJob>, u64) {
        let mut tokens = 0u64;
        let mut finishing = Vec::new();
        while tokens < chunk_tokens {
            let Some(front) = self.queue.front().copied() else {
                break;
            };
            let remaining = front.tokens - self.head_progress;
            let room = chunk_tokens - tokens;
            if remaining <= room {
                tokens += remaining;
                self.head_progress = 0;
                finishing.push(self.queue.pop_front().unwrap());
            } else {
                self.head_progress += room;
                tokens += room;
                break;
            }
        }
        (finishing, tokens)
    }

    /// Drains every queued job (fault evacuation), resetting chunk
    /// progress: a partially prefilled head must start over.
    pub fn drain_all(&mut self) -> Vec<PrefillJob> {
        self.head_progress = 0;
        self.queue.drain(..).collect()
    }

    /// Removes one queued job by request key (hedge-loser cancellation).
    /// Chunk progress resets if the head is removed — the partial work is
    /// abandoned with it. Returns whether a job was found.
    pub fn remove(&mut self, key: SlabKey) -> bool {
        let Some(pos) = self.queue.iter().position(|j| j.key == key) else {
            return false;
        };
        if pos == 0 {
            self.head_progress = 0;
        }
        self.queue.remove(pos);
        true
    }
}
