//! The phase-agnostic execution core.
//!
//! Both serving engines — the phase-split [`crate::engine::Simulation`] and
//! the colocated [`crate::colocated::ColocatedSimulation`] — are thin
//! facades over the layered machinery in this module:
//!
//! ```text
//!   Simulation / ColocatedSimulation        (facades: public API)
//!                  │
//!                  ▼
//!            exec::Driver                   (one event loop: routing,
//!           ┌──────┴───────┐                 admission/shed, fault layer,
//!           ▼              ▼                 recovery accounting)
//!     Topology::Split  Topology::Colocated
//!           │              │
//!           ▼              ▼
//!   PrefillExecutor   ColocatedExecutor     (ReplicaExecutor impls:
//!   DecodeExecutor                           liveness/epoch/drain contract)
//!           │              │
//!           └──────┬───────┘
//!                  ▼
//!        seq::{BatchCore, PrefillQueue}     (shared batching + ITL
//!        seq::{PrefillJob, ActiveSeq, …}     bookkeeping, one copy)
//! ```
//!
//! The driver owns everything both engines share; the executors own what a
//! single replica knows; [`seq`] owns the per-sequence types every layer
//! passes around. Fault handling is written once in the driver against the
//! [`ReplicaExecutor`] trait, which is why the colocated baselines support
//! `run_with_faults` with the same [`crate::metrics::RecoveryCounters`]
//! semantics as the phase-split engine.

pub mod executor;
pub mod seq;

pub(crate) mod driver;

pub use executor::{
    ColocatedExecutor, ColocatedPolicy, DecodeExecutor, DrainedWork, LostSeq, PrefillExecutor,
    ReplicaExecutor, Work,
};
pub use seq::{
    ActiveSeq, AdmitOutcome, BatchCore, Pending, PrefillJob, PrefillQueue, ResumeState, WaitingSeq,
};
