//! Replica executors: the phase-specific halves of the execution core.
//!
//! A [`ReplicaExecutor`] owns one replica's work state and implements the
//! liveness/epoch/drain contract the shared driver's fault layer is written
//! against. Three concrete executors exist:
//!
//! * [`PrefillExecutor`] — prefill-only replica of the phase-split engine
//!   (pipelined batches, whole-batch or chunked);
//! * [`DecodeExecutor`] — decode-only replica of the phase-split engine
//!   (continuous batching over a [`BatchCore`]);
//! * [`ColocatedExecutor`] — a vLLM/HexGen-style replica serving both
//!   phases on one set of GPUs, with prefill-priority or chunked
//!   scheduling ([`ColocatedPolicy`]).

use super::seq::{BatchCore, PrefillJob, PrefillQueue, ResumeState};
use std::collections::VecDeque;
use ts_common::{RequestId, SimTime};
use ts_costmodel::ReplicaCostModel;

/// Scheduling policy of a colocated replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColocatedPolicy {
    /// Whole prefill batches run before any decode step (vLLM's default
    /// behaviour; long prompts stall ongoing decodes).
    PrefillPriority,
    /// Sarathi/vLLM-CP-style chunked prefill: prompt processing is split
    /// into chunks of at most this many tokens, and a decode step runs
    /// between chunks, bounding the decode stall per prompt.
    Chunked {
        /// Maximum prompt tokens processed per chunk.
        chunk_tokens: u64,
    },
}

/// What a colocated replica is currently executing.
#[derive(Debug, Clone)]
pub enum Work {
    /// Processing a chunk of prompt tokens; jobs in `finishing` complete
    /// their prefill when this work item ends.
    Prefill {
        /// Jobs whose prefill completes with this work item.
        finishing: Vec<PrefillJob>,
    },
    /// One step of the continuous decode batch.
    DecodeStep,
}

/// A decode sequence whose KV cache died with its replica; the driver
/// re-prefills its full context on a survivor (or drops it without
/// recovery).
#[derive(Debug, Clone, Copy)]
pub struct LostSeq {
    /// The request id.
    pub id: RequestId,
    /// Context tokens that must be re-prefilled (prompt + generated).
    pub tokens: u64,
    /// Decode steps still to run.
    pub remaining: u32,
    /// Gap-tracking state to resume from.
    pub resume: Option<ResumeState>,
}

/// Work recovered from a failed (or revived) replica by
/// [`ReplicaExecutor::drain_lost`].
#[derive(Debug, Default)]
pub struct DrainedWork {
    /// Prefill jobs that were queued or in flight: re-routable as-is (the
    /// driver counts them as requeued).
    pub prefill_jobs: Vec<PrefillJob>,
    /// Decode sequences whose KV cache was lost: must be re-prefilled over
    /// their full context (the driver counts the re-prefilled tokens).
    pub lost_seqs: Vec<LostSeq>,
}

impl DrainedWork {
    /// Whether nothing was recovered.
    pub fn is_empty(&self) -> bool {
        self.prefill_jobs.is_empty() && self.lost_seqs.is_empty()
    }
}

/// The liveness/epoch/drain contract every replica executor implements;
/// the driver's fault layer is written once against this trait.
///
/// # Contract
///
/// * Completion events are stamped with [`ReplicaExecutor::epoch`] at
///   scheduling time; [`ReplicaExecutor::event_is_current`] rejects events
///   scheduled before the most recent death or revival, so stale
///   completions of a crashed replica never fire.
/// * [`ReplicaExecutor::kill`] loses capacity immediately but freezes work
///   in place — the coordinator only learns of the death one heartbeat
///   detection delay later, and until then keeps routing to the corpse.
/// * [`ReplicaExecutor::drain_lost`] removes the frozen work exactly once
///   (at detection, or at revival for work frozen through an outage) and
///   hands it to the driver as re-routable prefill jobs plus lost decode
///   sequences.
pub trait ReplicaExecutor {
    /// Ground-truth liveness (the coordinator's belief may lag).
    fn is_alive(&self) -> bool;

    /// Current liveness epoch; bumped on every death and revival.
    fn epoch(&self) -> u64;

    /// Whether a completion event stamped with `epoch` is still current.
    fn event_is_current(&self, epoch: u64) -> bool {
        self.is_alive() && self.epoch() == epoch
    }

    /// Fails the replica: capacity is lost now, queued and in-flight work
    /// freezes in place until [`ReplicaExecutor::drain_lost`] collects it.
    fn kill(&mut self);

    /// Restores the replica at time `now` with empty work state (frozen
    /// work must still be collected via [`ReplicaExecutor::drain_lost`]).
    fn revive(&mut self, now: SimTime);

    /// Removes and returns all work held by this replica (queued, in
    /// flight, and resident decode sequences), resetting its accounting.
    fn drain_lost(&mut self) -> DrainedWork;
}

/// A prefill-only replica: a work queue feeding a pipelined batch engine.
#[derive(Debug)]
pub struct PrefillExecutor {
    /// Cost model of the replica's GPU group.
    pub cost: ReplicaCostModel,
    /// Queued prefill jobs (with chunked-prefill progress).
    pub queue: PrefillQueue,
    /// Batches currently flowing through the pipeline (FIFO: completion
    /// events fire in launch order because stage times are batch-agnostic
    /// in ordering).
    pub in_flight: VecDeque<Vec<PrefillJob>>,
    /// Earliest time the first pipeline stage can accept a new batch.
    pub next_free: SimTime,
    /// Whether a slot-free wakeup is already scheduled.
    pub wakeup_scheduled: bool,
    /// Gray-failure straggler factor: batch iteration times multiply by
    /// this (exactly 1.0 = healthy; the driver skips the multiply then so
    /// the healthy path stays bit-identical).
    pub slow_factor: f64,
    alive: bool,
    epoch: u64,
}

impl PrefillExecutor {
    /// A fresh, live executor over `cost`.
    pub fn new(cost: ReplicaCostModel) -> Self {
        PrefillExecutor {
            cost,
            queue: PrefillQueue::default(),
            in_flight: VecDeque::new(),
            next_free: SimTime::ZERO,
            wakeup_scheduled: false,
            slow_factor: 1.0,
            alive: true,
            epoch: 0,
        }
    }
}

impl ReplicaExecutor for PrefillExecutor {
    fn is_alive(&self) -> bool {
        self.alive
    }

    fn epoch(&self) -> u64 {
        self.epoch
    }

    fn kill(&mut self) {
        self.alive = false;
        self.epoch += 1; // invalidates every scheduled completion
        self.wakeup_scheduled = false;
        // Queued and in-flight work freezes in place until the heartbeat
        // monitor notices (FaultDetected).
    }

    fn revive(&mut self, now: SimTime) {
        self.alive = true;
        self.epoch += 1;
        self.next_free = now;
        self.wakeup_scheduled = false;
    }

    fn drain_lost(&mut self) -> DrainedWork {
        let mut prefill_jobs: Vec<PrefillJob> = self.in_flight.drain(..).flatten().collect();
        prefill_jobs.extend(self.queue.drain_all());
        DrainedWork {
            prefill_jobs,
            lost_seqs: Vec::new(),
        }
    }
}

/// A decode-only replica: a continuous batch over a [`BatchCore`].
#[derive(Debug)]
pub struct DecodeExecutor {
    /// Cost model of the replica's GPU group.
    pub cost: ReplicaCostModel,
    /// KV memory accounting, active batch and admission queue.
    pub batch: BatchCore,
    /// Whether a decode step is currently running.
    pub stepping: bool,
    /// Gray-failure straggler factor: decode step times multiply by this
    /// (exactly 1.0 = healthy; the driver skips the multiply then so the
    /// healthy path stays bit-identical).
    pub slow_factor: f64,
    alive: bool,
    epoch: u64,
}

impl DecodeExecutor {
    /// A fresh, live executor over `cost` with its KV capacity.
    pub fn new(cost: ReplicaCostModel) -> Self {
        let kv_capacity = cost.kv_capacity_tokens();
        DecodeExecutor {
            cost,
            batch: BatchCore::new(kv_capacity),
            stepping: false,
            slow_factor: 1.0,
            alive: true,
            epoch: 0,
        }
    }
}

impl ReplicaExecutor for DecodeExecutor {
    fn is_alive(&self) -> bool {
        self.alive
    }

    fn epoch(&self) -> u64 {
        self.epoch
    }

    fn kill(&mut self) {
        self.alive = false;
        self.epoch += 1;
        self.stepping = false;
        // KV cache and batches are lost, but the coordinator keeps routing
        // here until detection.
    }

    fn revive(&mut self, _now: SimTime) {
        self.alive = true;
        self.epoch += 1;
        self.stepping = false;
    }

    fn drain_lost(&mut self) -> DrainedWork {
        self.batch.kv_used = 0;
        let active = std::mem::take(&mut self.batch.active);
        let waiting = std::mem::take(&mut self.batch.waiting);
        let mut lost_seqs = Vec::new();
        for a in active {
            lost_seqs.push(LostSeq {
                id: a.id,
                tokens: a.context,
                remaining: a.remaining,
                resume: Some(ResumeState {
                    last_token_at: a.last_token_at,
                    max_gap: a.max_gap,
                }),
            });
        }
        for w in waiting {
            lost_seqs.push(LostSeq {
                id: w.id,
                tokens: w.tokens,
                remaining: w.remaining,
                resume: w.resume,
            });
        }
        DrainedWork {
            prefill_jobs: Vec::new(),
            lost_seqs,
        }
    }
}

/// A colocated replica serving both phases on one set of GPUs: a prefill
/// queue and a continuous decode batch contending for the same engine, so
/// long prompts stall ongoing decodes — the interference phase splitting
/// removes.
#[derive(Debug)]
pub struct ColocatedExecutor {
    /// Cost model of the replica's GPU group.
    pub cost: ReplicaCostModel,
    /// Queued prefill work (with chunked-prefill progress).
    pub prefill: PrefillQueue,
    /// KV memory accounting, active decode batch and admission queue.
    pub batch: BatchCore,
    /// The work item currently occupying the engine, if any.
    pub current: Option<Work>,
    /// Under chunked scheduling, alternate prefill chunks and decode steps.
    pub decode_turn: bool,
    /// Prefill-priority or chunked scheduling.
    pub policy: ColocatedPolicy,
    /// Gray-failure straggler factor applied to both phases' iteration
    /// times (a colocated replica slows down as a whole; exactly 1.0 =
    /// healthy, skipped by the driver).
    pub slow_factor: f64,
    alive: bool,
    epoch: u64,
}

impl ColocatedExecutor {
    /// A fresh, live executor over `cost` with the given policy.
    pub fn new(cost: ReplicaCostModel, policy: ColocatedPolicy) -> Self {
        let kv_capacity = cost.kv_capacity_tokens();
        ColocatedExecutor {
            cost,
            prefill: PrefillQueue::default(),
            batch: BatchCore::new(kv_capacity),
            current: None,
            decode_turn: false,
            policy,
            slow_factor: 1.0,
            alive: true,
            epoch: 0,
        }
    }
}

impl ReplicaExecutor for ColocatedExecutor {
    fn is_alive(&self) -> bool {
        self.alive
    }

    fn epoch(&self) -> u64 {
        self.epoch
    }

    fn kill(&mut self) {
        self.alive = false;
        self.epoch += 1;
        // The in-progress work item and all queues freeze in place (the
        // stale WorkDone completion is rejected by the epoch check).
    }

    fn revive(&mut self, _now: SimTime) {
        self.alive = true;
        self.epoch += 1;
    }

    fn drain_lost(&mut self) -> DrainedWork {
        let mut prefill_jobs = Vec::new();
        if let Some(Work::Prefill { finishing }) = self.current.take() {
            prefill_jobs.extend(finishing);
        }
        self.current = None;
        self.decode_turn = false;
        prefill_jobs.extend(self.prefill.drain_all());
        self.batch.kv_used = 0;
        let active = std::mem::take(&mut self.batch.active);
        let waiting = std::mem::take(&mut self.batch.waiting);
        let mut lost_seqs = Vec::new();
        for a in active {
            lost_seqs.push(LostSeq {
                id: a.id,
                tokens: a.context,
                remaining: a.remaining,
                resume: Some(ResumeState {
                    last_token_at: a.last_token_at,
                    max_gap: a.max_gap,
                }),
            });
        }
        for w in waiting {
            lost_seqs.push(LostSeq {
                id: w.id,
                tokens: w.tokens,
                remaining: w.remaining,
                resume: w.resume,
            });
        }
        DrainedWork {
            prefill_jobs,
            lost_seqs,
        }
    }
}
