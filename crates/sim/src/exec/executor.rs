//! Replica executors: the phase-specific halves of the execution core.
//!
//! A [`ReplicaExecutor`] owns one replica's work state and implements the
//! liveness/epoch/drain contract the shared driver's fault layer is written
//! against. Three concrete executors exist:
//!
//! * [`PrefillExecutor`] — prefill-only replica of the phase-split engine
//!   (pipelined batches, whole-batch or chunked);
//! * [`DecodeExecutor`] — decode-only replica of the phase-split engine
//!   (continuous batching over a [`BatchCore`]);
//! * [`ColocatedExecutor`] — a vLLM/HexGen-style replica serving both
//!   phases on one set of GPUs, with prefill-priority or chunked
//!   scheduling ([`ColocatedPolicy`]).

use super::seq::{BatchCore, PrefillJob, PrefillQueue, ResumeState};
use crate::event::EventToken;
use std::collections::VecDeque;
use ts_common::{SimDuration, SimTime, SlabKey};
use ts_costmodel::{DecodeStageSeries, ReplicaCostModel};

/// Scheduling policy of a colocated replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColocatedPolicy {
    /// Whole prefill batches run before any decode step (vLLM's default
    /// behaviour; long prompts stall ongoing decodes).
    PrefillPriority,
    /// Sarathi/vLLM-CP-style chunked prefill: prompt processing is split
    /// into chunks of at most this many tokens, and a decode step runs
    /// between chunks, bounding the decode stall per prompt.
    Chunked {
        /// Maximum prompt tokens processed per chunk.
        chunk_tokens: u64,
    },
}

/// What a colocated replica is currently executing.
#[derive(Debug, Clone)]
pub enum Work {
    /// Processing a chunk of prompt tokens; jobs in `finishing` complete
    /// their prefill when this work item ends.
    Prefill {
        /// Jobs whose prefill completes with this work item.
        finishing: Vec<PrefillJob>,
    },
    /// One step of the continuous decode batch.
    DecodeStep,
}

/// A decode sequence whose KV cache died with its replica; the driver
/// re-prefills its full context on a survivor (or drops it without
/// recovery).
#[derive(Debug, Clone, Copy)]
pub struct LostSeq {
    /// Slab handle of the request.
    pub key: SlabKey,
    /// Context tokens that must be re-prefilled (prompt + generated).
    pub tokens: u64,
    /// Decode steps still to run.
    pub remaining: u32,
    /// Gap-tracking state to resume from.
    pub resume: Option<ResumeState>,
}

/// Work recovered from a failed (or revived) replica by
/// [`ReplicaExecutor::drain_lost`].
#[derive(Debug, Default)]
pub struct DrainedWork {
    /// Prefill jobs that were queued or in flight: re-routable as-is (the
    /// driver counts them as requeued).
    pub prefill_jobs: Vec<PrefillJob>,
    /// Decode sequences whose KV cache was lost: must be re-prefilled over
    /// their full context (the driver counts the re-prefilled tokens).
    pub lost_seqs: Vec<LostSeq>,
}

impl DrainedWork {
    /// Whether nothing was recovered.
    pub fn is_empty(&self) -> bool {
        self.prefill_jobs.is_empty() && self.lost_seqs.is_empty()
    }
}

/// A planned decode run on a decode-capable replica: the step boundaries
/// the continuous batch will cross if nothing interrupts it, ending at the
/// first boundary where at least one sequence finishes.
///
/// Under decode-step coalescing the driver schedules **one** event (at the
/// final boundary) per run instead of one per step; the intermediate
/// boundaries are materialized lazily — retroactively, in batches — when an
/// interrupt or the finish boundary needs the batch state. Under the
/// per-step compatibility path a plan holds exactly one step.
#[derive(Debug)]
pub struct DecodePlan {
    /// Step-end boundaries, ascending. Already-materialized boundaries are
    /// popped from the front; the last entry is the scheduled event's fire
    /// time and the first boundary at which a sequence can finish.
    pub steps: VecDeque<SimTime>,
    /// The virtual push time of the in-progress (front) step: the sim time
    /// at which the per-step scheduler would have pushed that step's event
    /// (the previous boundary, or the plan's creation time). Used to order
    /// coalesced events against genuinely simultaneous rivals exactly as
    /// the per-step schedule would have.
    pub prev_boundary: SimTime,
    /// Cancellation token of the scheduled run-end event.
    pub token: EventToken,
}

/// The liveness/epoch/drain contract every replica executor implements;
/// the driver's fault layer is written once against this trait.
///
/// # Contract
///
/// * Completion events are stamped with [`ReplicaExecutor::epoch`] at
///   scheduling time; [`ReplicaExecutor::event_is_current`] rejects events
///   scheduled before the most recent death or revival, so stale
///   completions of a crashed replica never fire.
/// * [`ReplicaExecutor::kill`] loses capacity immediately but freezes work
///   in place — the coordinator only learns of the death one heartbeat
///   detection delay later, and until then keeps routing to the corpse.
/// * [`ReplicaExecutor::drain_lost`] removes the frozen work exactly once
///   (at detection, or at revival for work frozen through an outage) and
///   hands it to the driver as re-routable prefill jobs plus lost decode
///   sequences.
pub trait ReplicaExecutor {
    /// Ground-truth liveness (the coordinator's belief may lag).
    fn is_alive(&self) -> bool;

    /// Current liveness epoch; bumped on every death and revival.
    fn epoch(&self) -> u64;

    /// Whether a completion event stamped with `epoch` is still current.
    fn event_is_current(&self, epoch: u64) -> bool {
        self.is_alive() && self.epoch() == epoch
    }

    /// Fails the replica: capacity is lost now, queued and in-flight work
    /// freezes in place until [`ReplicaExecutor::drain_lost`] collects it.
    fn kill(&mut self);

    /// Restores the replica at time `now` with empty work state (frozen
    /// work must still be collected via [`ReplicaExecutor::drain_lost`]).
    fn revive(&mut self, now: SimTime);

    /// Removes and returns all work held by this replica (queued, in
    /// flight, and resident decode sequences), resetting its accounting.
    fn drain_lost(&mut self) -> DrainedWork;
}

/// A prefill-only replica: a work queue feeding a pipelined batch engine.
#[derive(Debug)]
pub struct PrefillExecutor {
    /// Cost model of the replica's GPU group.
    pub cost: ReplicaCostModel,
    /// Queued prefill jobs (with chunked-prefill progress).
    pub queue: PrefillQueue,
    /// Batches currently flowing through the pipeline (FIFO: completion
    /// events fire in launch order because stage times are batch-agnostic
    /// in ordering).
    pub in_flight: VecDeque<Vec<PrefillJob>>,
    /// Earliest time the first pipeline stage can accept a new batch.
    pub next_free: SimTime,
    /// Whether a slot-free wakeup is already scheduled.
    pub wakeup_scheduled: bool,
    /// Gray-failure straggler factor: batch iteration times multiply by
    /// this (exactly 1.0 = healthy; the driver skips the multiply then so
    /// the healthy path stays bit-identical).
    pub slow_factor: f64,
    /// One-entry memo of `(total_tokens, avg_context) -> (latency,
    /// bottleneck)` for batch pricing. Day traces with fixed-length
    /// prompts price the same batch shape hundreds of thousands of
    /// times, and both pricing functions are pure in these arguments
    /// over an immutable cost model, so replaying the cached pair is
    /// exact.
    pub price_memo: Option<(u64, u64, SimDuration, SimDuration)>,
    /// Retired batch buffers, recycled by batch formation so steady-state
    /// prefill launches do not allocate per batch.
    pub spare_batches: Vec<Vec<PrefillJob>>,
    alive: bool,
    epoch: u64,
}

impl PrefillExecutor {
    /// A fresh, live executor over `cost`; `sjf` keeps its queue
    /// insertion-sorted for shortest-first scheduling.
    pub fn new(cost: ReplicaCostModel, sjf: bool) -> Self {
        PrefillExecutor {
            cost,
            queue: PrefillQueue::new(sjf),
            in_flight: VecDeque::new(),
            next_free: SimTime::ZERO,
            wakeup_scheduled: false,
            slow_factor: 1.0,
            price_memo: None,
            spare_batches: Vec::new(),
            alive: true,
            epoch: 0,
        }
    }
}

impl ReplicaExecutor for PrefillExecutor {
    fn is_alive(&self) -> bool {
        self.alive
    }

    fn epoch(&self) -> u64 {
        self.epoch
    }

    fn kill(&mut self) {
        self.alive = false;
        self.epoch += 1; // invalidates every scheduled completion
        self.wakeup_scheduled = false;
        // Queued and in-flight work freezes in place until the heartbeat
        // monitor notices (FaultDetected).
    }

    fn revive(&mut self, now: SimTime) {
        self.alive = true;
        self.epoch += 1;
        self.next_free = now;
        self.wakeup_scheduled = false;
    }

    fn drain_lost(&mut self) -> DrainedWork {
        let mut prefill_jobs: Vec<PrefillJob> = self.in_flight.drain(..).flatten().collect();
        prefill_jobs.extend(self.queue.drain_all());
        DrainedWork {
            prefill_jobs,
            lost_seqs: Vec::new(),
        }
    }
}

/// A decode-only replica: a continuous batch over a [`BatchCore`].
#[derive(Debug)]
pub struct DecodeExecutor {
    /// Cost model of the replica's GPU group.
    pub cost: ReplicaCostModel,
    /// KV memory accounting, active batch and admission queue.
    pub batch: BatchCore,
    /// The planned decode run currently in progress, if any. The driver
    /// cancels the plan's scheduled event before any path that clears this
    /// through [`ReplicaExecutor::kill`] / [`ReplicaExecutor::revive`].
    pub plan: Option<DecodePlan>,
    /// Gray-failure straggler factor: decode step times multiply by this
    /// (exactly 1.0 = healthy; the driver skips the multiply then so the
    /// healthy path stays bit-identical).
    pub slow_factor: f64,
    /// Retired plan step buffer, recycled by the planner so the hot loop
    /// (roughly one plan per served request) does not allocate per plan.
    pub spare_steps: VecDeque<SimTime>,
    /// One-entry memo of `batch size -> ` the hoisted single-stage step
    /// series at that size. Replicas see a handful of distinct batch
    /// sizes over a whole day trace, and the series is a pure function
    /// of the immutable cost model and the batch size, so replaying the
    /// cached copy is exact. `None` until the first single-stage plan
    /// (multi-stage pipelines never populate it).
    pub step_series_memo: Option<(u64, DecodeStageSeries)>,
    alive: bool,
    epoch: u64,
}

impl DecodeExecutor {
    /// A fresh, live executor over `cost` with its KV capacity.
    pub fn new(cost: ReplicaCostModel) -> Self {
        let kv_capacity = cost.kv_capacity_tokens();
        DecodeExecutor {
            cost,
            batch: BatchCore::new(kv_capacity),
            plan: None,
            slow_factor: 1.0,
            spare_steps: VecDeque::new(),
            step_series_memo: None,
            alive: true,
            epoch: 0,
        }
    }
}

impl ReplicaExecutor for DecodeExecutor {
    fn is_alive(&self) -> bool {
        self.alive
    }

    fn epoch(&self) -> u64 {
        self.epoch
    }

    fn kill(&mut self) {
        self.alive = false;
        self.epoch += 1;
        self.plan = None;
        // KV cache and batches are lost, but the coordinator keeps routing
        // here until detection.
    }

    fn revive(&mut self, _now: SimTime) {
        self.alive = true;
        self.epoch += 1;
        self.plan = None;
    }

    fn drain_lost(&mut self) -> DrainedWork {
        self.batch.kv_used = 0;
        let active = std::mem::take(&mut self.batch.active);
        let waiting = std::mem::take(&mut self.batch.waiting);
        let mut lost_seqs = Vec::new();
        for a in active {
            lost_seqs.push(LostSeq {
                key: a.key,
                tokens: a.context,
                remaining: a.remaining,
                resume: Some(ResumeState {
                    last_token_at: a.last_token_at,
                    max_gap: a.max_gap,
                }),
            });
        }
        for w in waiting {
            lost_seqs.push(LostSeq {
                key: w.key,
                tokens: w.tokens,
                remaining: w.remaining,
                resume: w.resume,
            });
        }
        DrainedWork {
            prefill_jobs: Vec::new(),
            lost_seqs,
        }
    }
}

/// A colocated replica serving both phases on one set of GPUs: a prefill
/// queue and a continuous decode batch contending for the same engine, so
/// long prompts stall ongoing decodes — the interference phase splitting
/// removes.
#[derive(Debug)]
pub struct ColocatedExecutor {
    /// Cost model of the replica's GPU group.
    pub cost: ReplicaCostModel,
    /// Queued prefill work (with chunked-prefill progress).
    pub prefill: PrefillQueue,
    /// KV memory accounting, active decode batch and admission queue.
    pub batch: BatchCore,
    /// The work item currently occupying the engine, if any.
    pub current: Option<Work>,
    /// Under chunked scheduling, alternate prefill chunks and decode steps.
    pub decode_turn: bool,
    /// Prefill-priority or chunked scheduling.
    pub policy: ColocatedPolicy,
    /// Gray-failure straggler factor applied to both phases' iteration
    /// times (a colocated replica slows down as a whole; exactly 1.0 =
    /// healthy, skipped by the driver).
    pub slow_factor: f64,
    alive: bool,
    epoch: u64,
}

impl ColocatedExecutor {
    /// A fresh, live executor over `cost` with the given policy; `sjf`
    /// keeps the prefill queue insertion-sorted for shortest-first
    /// scheduling.
    pub fn new(cost: ReplicaCostModel, policy: ColocatedPolicy, sjf: bool) -> Self {
        let kv_capacity = cost.kv_capacity_tokens();
        ColocatedExecutor {
            cost,
            prefill: PrefillQueue::new(sjf),
            batch: BatchCore::new(kv_capacity),
            current: None,
            decode_turn: false,
            policy,
            slow_factor: 1.0,
            alive: true,
            epoch: 0,
        }
    }
}

impl ReplicaExecutor for ColocatedExecutor {
    fn is_alive(&self) -> bool {
        self.alive
    }

    fn epoch(&self) -> u64 {
        self.epoch
    }

    fn kill(&mut self) {
        self.alive = false;
        self.epoch += 1;
        // The in-progress work item and all queues freeze in place (the
        // stale WorkDone completion is rejected by the epoch check).
    }

    fn revive(&mut self, _now: SimTime) {
        self.alive = true;
        self.epoch += 1;
    }

    fn drain_lost(&mut self) -> DrainedWork {
        let mut prefill_jobs = Vec::new();
        if let Some(Work::Prefill { finishing }) = self.current.take() {
            prefill_jobs.extend(finishing);
        }
        self.current = None;
        self.decode_turn = false;
        prefill_jobs.extend(self.prefill.drain_all());
        self.batch.kv_used = 0;
        let active = std::mem::take(&mut self.batch.active);
        let waiting = std::mem::take(&mut self.batch.waiting);
        let mut lost_seqs = Vec::new();
        for a in active {
            lost_seqs.push(LostSeq {
                key: a.key,
                tokens: a.context,
                remaining: a.remaining,
                resume: Some(ResumeState {
                    last_token_at: a.last_token_at,
                    max_gap: a.max_gap,
                }),
            });
        }
        for w in waiting {
            lost_seqs.push(LostSeq {
                key: w.key,
                tokens: w.tokens,
                remaining: w.remaining,
                resume: w.resume,
            });
        }
        DrainedWork {
            prefill_jobs,
            lost_seqs,
        }
    }
}
