//! The shared event-loop driver.
//!
//! One discrete-event loop serves both serving topologies:
//!
//! * [`Topology::Split`] — phase-split replica pairs with KV transfer over
//!   the inter-replica fabric (the ThunderServe engine);
//! * [`Topology::Colocated`] — identical-role replicas serving both phases
//!   (the vLLM/HexGen-style baselines).
//!
//! The driver owns everything topology-agnostic: the event queue, the
//! [`StrideRouter`] routing policy, per-request bookkeeping, the
//! admission/shed policy, and the whole fault layer (trigger → heartbeat
//! detection → drain/requeue/re-prefill → recovery accounting). Topology
//! state lives behind the enum and is only consulted where behaviour
//! genuinely differs (KV transfer exists only under `Split`; a work item
//! serializes both phases only under `Colocated`). Fault handling is
//! written once against the [`ReplicaExecutor`] trait, which is how the
//! colocated baselines get fault injection and [`RecoveryCounters`] for
//! free.
//!
//! # Performance architecture
//!
//! Three structural decisions keep the loop fast on day-scale traces
//! without changing a single output bit:
//!
//! * **Slab-allocated request state.** All per-request bookkeeping (the
//!   payload, routing/timing state, and any in-flight KV transfer) lives
//!   in one [`Slab`] entry; events and jobs carry the dense generational
//!   [`SlabKey`] instead of hashing a [`RequestId`] per touch.
//! * **Lazy arrival merge.** Arrivals are never heap entries: the sorted
//!   arrival vector is merged against the event queue head ([`NextEvent`]),
//!   so a 1M-request trace starts with an empty heap instead of a 1M-entry
//!   one. Arrivals won setup-time seqs under the old scheme (pushed first,
//!   before fault events), so the merge breaks `at` ties in favour of
//!   arrivals — bit-identical event order.
//! * **Decode-step coalescing.** One [`EventKind::DecodeStepDone`] is
//!   scheduled per planned decode *run* (a [`DecodePlan`]) instead of one
//!   per step; intermediate step boundaries are materialized retroactively
//!   (in bulk when telemetry is off) when an interrupt or the finish
//!   boundary needs the batch state. The plan's *virtual push time*
//!   (`prev_boundary`, and [`plan_vpush`] for the in-progress step)
//!   reproduces the per-step schedule's `(at, seq, pushed_at)` ordering
//!   against genuinely simultaneous rival events, so the coalesced loop
//!   replays the exact same event interleaving the per-step loop would
//!   have. The per-step path survives as a compatibility mode
//!   ([`crate::config::SimConfig::decode_coalescing`] off, or a straggler
//!   threshold active — the straggler detector needs per-step samples).

use super::executor::{
    ColocatedExecutor, ColocatedPolicy, DecodeExecutor, DecodePlan, DrainedWork, PrefillExecutor,
    ReplicaExecutor, Work,
};
use super::seq::{AdmitOutcome, Pending, PrefillJob, WaitingSeq};
use crate::config::{PrefillPolicy, SimConfig};
use crate::event::{Event, EventKind, EventQueue};
use crate::fault::{FaultKind, FaultScript, TimedFault};
use crate::metrics::{Metrics, ModelConservation, RecoveryCounters, RequestRecord};
use crate::router::StrideRouter;
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use ts_cluster::Cluster;
use ts_common::{
    derive_seed, seeded_rng, DeploymentPlan, Error, GpuId, GroupSpec, ModelId, Request, RequestId,
    Result, SimDuration, SimTime, Slab, SlabKey,
};
use ts_costmodel::replica::{kv_route_legs, kv_transfer_time, KvRouteLeg, KvRouteSegment};
use ts_costmodel::{DecodeStageSeries, DecodeStepSeries, ReplicaCostModel};
use ts_kvcache::codec::KvCodec;
use ts_net::{FlowEstimate, FlowFabric, FlowPoll};
use ts_telemetry::{
    HealthState, Recorder, Role, StreamingPlane, TraceEvent, TraceKind, TraceLog, TraceSink,
};

/// An in-flight KV transfer (completion events carry an attempt number so
/// superseded attempts are ignored).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Transfer {
    from: usize,
    to: usize,
    job: PrefillJob,
    attempt: u32,
}

/// All driver-side state of one in-flight request, slab-resident: the
/// payload, routing/timing bookkeeping, and the KV transfer registry slot
/// (split topology only). One slab entry exists per live request; events
/// and jobs address it by [`SlabKey`].
pub(crate) struct ReqState {
    req: Request,
    pend: Pending,
    /// The request's in-flight KV transfer, if any.
    transfer: Option<Transfer>,
}

impl ReqState {
    fn new(req: Request) -> Self {
        ReqState {
            req,
            pend: Pending::new(0, 0),
            transfer: None,
        }
    }
}

/// The next simulation occurrence: a trace arrival (merged lazily from the
/// sorted arrival vector) or a queued event.
enum NextEvent {
    Arrival(Request),
    Queued(Event),
}

/// Topology-agnostic driver state: event queue, routing, per-request
/// bookkeeping, shed policy and fault/recovery accounting.
pub(crate) struct Core {
    cfg: SimConfig,
    router: StrideRouter,
    queue: EventQueue,
    /// Per-request state, slab-allocated; an entry lives from arrival to
    /// completion/drop/rejection.
    reqs: Slab<ReqState>,
    records: Vec<RequestRecord>,
    dropped: usize,
    rejected: usize,
    now: SimTime,
    faults: Vec<TimedFault>,
    recovery_enabled: bool,
    /// Arrivals (and requeues) stalled because no live route exists or the
    /// service is paused; shed beyond `cfg.shed_threshold`.
    stalled: VecDeque<PrefillJob>,
    paused_until: Option<SimTime>,
    recovery: RecoveryCounters,
    /// Requests affected by each fault (fault time, outstanding ids); a
    /// fault's time-to-recover is recorded when its set empties.
    affected: Vec<(SimTime, BTreeSet<RequestId>)>,
    /// Request-lifecycle trace recorder; `Some` iff
    /// [`SimConfig::telemetry`] is on. Instrumentation only observes —
    /// it never schedules events, draws randomness or mutates simulation
    /// state, so the `None` path stays bit-identical.
    trace: Option<Recorder>,
    /// Streaming observability plane; `Some` iff [`SimConfig::streaming`]
    /// is set. Fed the same event stream as the recorder but folds it
    /// online (sketches, windows, burn monitors) instead of buffering.
    /// Boxed: the plane is a few hundred bytes of aggregation state that
    /// would otherwise bloat every `Core` on the stack.
    stream: Option<Box<StreamingPlane>>,
    /// Gray-failure state, indexed by *host*: prefill replicas first, then
    /// decode replicas (colocated: the replica index). The RNG is drawn
    /// from only when a gray fault or a jitter knob is active, so the
    /// default path stays bit-identical.
    gray: GrayState,
    /// Whether per-model conservation is tracked — true iff the catalog
    /// ([`SimConfig::models`]) is non-empty, so single-model runs carry
    /// zero extra bookkeeping and their [`RecoveryCounters`] stay
    /// byte-identical.
    track_models: bool,
    /// Per-model (dropped, rejected) counts, folded into
    /// [`RecoveryCounters::per_model`] at the end of the run. Untouched
    /// when `track_models` is off.
    model_losses: HashMap<ModelId, (usize, usize)>,
    /// The run's arrival trace, sorted by `(arrival, original order)`;
    /// merged lazily against the event queue instead of being heap
    /// entries.
    arrivals: Vec<Request>,
    /// Cursor into `arrivals`.
    next_arrival: usize,
    /// Count of occurrences dispatched (arrivals + queued events) — the
    /// denominator of the events/sec benchmark.
    events_processed: u64,
    /// `pushed_at` stamp of the occurrence being dispatched (zero for
    /// arrivals); consulted by the coalesced-decode tie rule.
    event_pushed_at: SimTime,
    /// Latest fire time folded in from cancelled decode-plan events. The
    /// per-step loop popped those events and advanced `now` even when they
    /// were stale; the coalesced loop cancels them instead, so the final
    /// horizon folds this in to stay identical.
    phantom_horizon: SimTime,
    /// Coalesced decode finish events deferred behind a same-instant rival
    /// (replica, original seq, original pushed_at), newest last. A stack,
    /// not an `Option`: a rival dispatched inline may itself defer.
    held_decode: Vec<(usize, u64, SimTime)>,
}

/// Per-host gray-failure bookkeeping: flaky-heartbeat masking, straggler
/// detection EWMAs and quarantine state, plus the seeded RNG every
/// stochastic mitigation decision (beat loss, retry jitter) draws from.
struct GrayState {
    /// Seeded RNG for beat-loss draws and retry jitter; deterministic per
    /// [`SimConfig::fault_seed`].
    rng: StdRng,
    /// Number of prefill hosts — decode replica `j` is host
    /// `prefill_hosts + j` (colocated: every replica is its own host and
    /// this equals the replica count).
    prefill_hosts: usize,
    /// Per-host heartbeat loss probability (0 = healthy).
    flaky: Vec<f64>,
    /// Hosts currently masked out of routing by a missed beat.
    flaky_dead: Vec<bool>,
    /// Hosts with a pending [`EventKind::FlakyBeat`] event (beats stop
    /// rescheduling when no requests are outstanding, and restart on the
    /// next arrival, so the event queue always drains).
    flaky_scheduled: Vec<bool>,
    /// Whether any host has a nonzero loss probability (cheap arrival-path
    /// guard).
    flaky_any: bool,
    /// Hosts quarantined by the straggler detector.
    quarantined: Vec<bool>,
    /// Earliest readmission time per quarantined host; probes scheduled
    /// before a later re-quarantine see a larger value and go stale.
    quarantine_until: Vec<Option<SimTime>>,
    /// EWMA of the observed/expected iteration-time ratio per host.
    slow_ewma: Vec<f64>,
    /// Completed-iteration samples feeding the EWMA per host.
    slow_samples: Vec<u32>,
    /// Heartbeat window, copied from the fault script at run start (one
    /// [`EventKind::FlakyBeat`] fires per window).
    beat_period: SimDuration,
}

impl GrayState {
    fn new(seed: u64, prefill_hosts: usize, total_hosts: usize) -> Self {
        GrayState {
            rng: seeded_rng(derive_seed(seed, 0x6772_6179)),
            prefill_hosts,
            flaky: vec![0.0; total_hosts],
            flaky_dead: vec![false; total_hosts],
            flaky_scheduled: vec![false; total_hosts],
            flaky_any: false,
            quarantined: vec![false; total_hosts],
            quarantine_until: vec![None; total_hosts],
            slow_ewma: vec![1.0; total_hosts],
            slow_samples: vec![0; total_hosts],
            beat_period: SimDuration::ZERO,
        }
    }

    /// Whether routing must avoid `host` (missed beat or quarantine).
    fn masked(&self, host: usize) -> bool {
        self.flaky_dead[host] || self.quarantined[host]
    }
}

/// One tenant's routing state under [`Topology::Split`]: the model draws
/// its (prefill, decode) pair from its own stride router over its own
/// replicas, so tenants on a shared pool never leak requests into each
/// other's executors.
pub(crate) struct ModelRoute {
    model: ModelId,
    router: StrideRouter,
    /// (prefill, decode) replica coordinates per router index, in the
    /// *global* replica numbering of the plan.
    pairs: Vec<(usize, usize)>,
}

/// Phase-split topology state: prefill/decode executor pools plus the KV
/// transfer fabric between them.
pub(crate) struct SplitState {
    prefills: Vec<PrefillExecutor>,
    decodes: Vec<DecodeExecutor>,
    pair_coords: Vec<(usize, usize)>,
    /// KV route per (prefill, decode) pair.
    routes: Vec<Vec<Vec<KvRouteSegment>>>,
    /// One-entry memo per (prefill, decode) pair: `tokens ->` modeled
    /// wire time. The route, the sender's model spec and the wire
    /// precision are all fixed after construction, so
    /// [`kv_transfer_time`] is pure in the token count — fixed-length
    /// day traces hit the cache on nearly every transfer.
    kv_memo: Vec<Vec<Option<(u64, SimDuration)>>>,
    /// Per-sender (prefill replica) uplink availability for KV transfer
    /// queuing: one replica's outbound transfers serialize on its NIC,
    /// whichever decode replica they target.
    sender_free_at: Vec<SimTime>,
    /// Link availability per (prefill, decode) pair.
    link_down: Vec<Vec<bool>>,
    /// Bandwidth-degradation factor per (prefill, decode) pair (1 =
    /// healthy). Legacy modeled transfers multiply their wire time by it;
    /// under the flow fabric the degradation is applied to the pair's
    /// physical links instead and this matrix only records the script
    /// state.
    link_factor: Vec<Vec<f64>>,
    /// The coordinator's belief about replica liveness: updated at fault
    /// *detection* (downs) and immediately on healing (ups). Routing masks
    /// follow beliefs, not ground truth — that is the detection window.
    believed_dead_prefill: Vec<bool>,
    believed_dead_decode: Vec<bool>,
    /// Transfers whose target died with no live alternative; re-dispatched
    /// when a decode replica comes back.
    parked: Vec<Transfer>,
    /// Flow-level network fabric. `Some` iff both
    /// [`SimConfig::network_contention`] and [`SimConfig::model_kv_transfer`]
    /// are on; `None` keeps the legacy per-sender serialization (and the
    /// paper figures) bit-identical.
    fabric: Option<FlowFabric>,
    /// Per (prefill, decode) pair: representative endpoints and total layer
    /// count for the fabric's one-flow-per-transfer approximation. The
    /// endpoints come from the route leg carrying the most layers; the byte
    /// count covers the whole route.
    flow_routes: Vec<Vec<(GpuId, GpuId, usize)>>,
    /// Wire codec sizing fabric flows (model × configured KV precision).
    codec: KvCodec,
    /// Per-model routing for a multi-model plan, in [`DeploymentPlan::models`]
    /// order. Empty for single-model plans, which keeps every legacy
    /// dispatch, mask and hedging path untouched.
    model_routes: Vec<ModelRoute>,
    /// Model served by each prefill replica (plan group order).
    prefill_model: Vec<ModelId>,
    /// Model served by each decode replica.
    decode_model: Vec<ModelId>,
    /// Wire codecs per catalog model; searched only on multi-model plans
    /// (the default-model fallback is [`SplitState::codec`]).
    codecs: Vec<(ModelId, KvCodec)>,
}

impl SplitState {
    /// The wire codec for `model`, falling back to the default-model codec.
    fn codec_for(&self, model: ModelId) -> &KvCodec {
        self.codecs
            .iter()
            .find(|(m, _)| *m == model)
            .map_or(&self.codec, |(_, c)| c)
    }
}

/// Colocated topology state: one executor pool serving both phases, with
/// the same believed-liveness routing mask as the split topology. The
/// fault script's `PrefillDown(i)`/`DecodeDown(i)` both mean "replica `i`
/// dies" here (and symmetrically for `*Up`); link faults are rejected
/// because there is no inter-replica fabric.
pub(crate) struct ColoState {
    replicas: Vec<ColocatedExecutor>,
    believed_dead: Vec<bool>,
}

/// Which serving topology the driver runs.
// One Topology exists per simulation (never stored per-event or in bulk),
// so the size gap between variants costs nothing worth an indirection.
#[allow(clippy::large_enum_variant)]
pub(crate) enum Topology {
    /// Phase-split replica pairs with KV transfer.
    Split(SplitState),
    /// Identical-role colocated replicas.
    Colocated(ColoState),
}

/// The shared discrete-event driver behind [`crate::engine::Simulation`]
/// and [`crate::colocated::ColocatedSimulation`].
pub(crate) struct Driver {
    core: Core,
    topo: Topology,
}

/// Whether coalesced decode plans are active: the config knob is on and no
/// straggler threshold demands per-step iteration samples.
fn coalescing_active(core: &Core) -> bool {
    core.cfg.decode_coalescing && core.cfg.straggler_threshold.is_none()
}

impl Driver {
    /// Builds a phase-split driver for `plan` on `cluster`.
    pub fn new_split(cluster: &Cluster, plan: &DeploymentPlan, cfg: SimConfig) -> Result<Self> {
        let prefill_idx = plan.prefill_indices();
        let decode_idx = plan.decode_indices();
        // Insertion-sorted prefill queues replace the per-batch re-sort
        // under pure shortest-first scheduling; chunked prefill keeps FCFS
        // queues (take_chunk needs arrival order).
        let sjf = cfg.prefill_policy == PrefillPolicy::ShortestFirst
            && cfg.prefill_chunk_tokens.is_none();
        // Each group is priced with its own model's spec; on single-model
        // plans every group carries ModelId(0) and the catalog is empty, so
        // `spec_for` resolves to `cfg.model` exactly as before.
        let mut prefills = Vec::with_capacity(prefill_idx.len());
        for &gi in &prefill_idx {
            prefills.push(PrefillExecutor::new(
                ReplicaCostModel::new(
                    cluster,
                    cfg.spec_for(plan.groups[gi].model),
                    &plan.groups[gi],
                    &cfg.params,
                )?,
                sjf,
            ));
        }
        let mut decodes = Vec::with_capacity(decode_idx.len());
        for &gi in &decode_idx {
            decodes.push(DecodeExecutor::new(ReplicaCostModel::new(
                cluster,
                cfg.spec_for(plan.groups[gi].model),
                &plan.groups[gi],
                &cfg.params,
            )?));
        }
        let prefill_model: Vec<ModelId> = prefill_idx
            .iter()
            .map(|&gi| plan.groups[gi].model)
            .collect();
        let decode_model: Vec<ModelId> =
            decode_idx.iter().map(|&gi| plan.groups[gi].model).collect();
        let (router, pair_coords) = StrideRouter::from_matrix(plan.routing.rates())?;
        let mut model_routes = Vec::new();
        if plan.is_multi_model() {
            for m in plan.models() {
                let Some(routing) = plan.routing_for(m) else {
                    continue;
                };
                let (mr, local) = StrideRouter::from_matrix(routing.rates())?;
                let pidx = plan.prefill_indices_for(m);
                let didx = plan.decode_indices_for(m);
                let to_global = |own: &[usize], all: &[usize], li: usize| -> Result<usize> {
                    all.iter().position(|&g| g == own[li]).ok_or_else(|| {
                        Error::InvalidConfig(format!(
                            "model {m} routes over a group not in the plan"
                        ))
                    })
                };
                let mut pairs = Vec::with_capacity(local.len());
                for &(li, lj) in &local {
                    pairs.push((
                        to_global(&pidx, &prefill_idx, li)?,
                        to_global(&didx, &decode_idx, lj)?,
                    ));
                }
                model_routes.push(ModelRoute {
                    model: m,
                    router: mr,
                    pairs,
                });
            }
        }
        let mut routes = Vec::with_capacity(prefills.len());
        let mut flow_routes = Vec::with_capacity(prefills.len());
        for p in &prefills {
            let mut row = Vec::with_capacity(decodes.len());
            let mut flow_row = Vec::with_capacity(decodes.len());
            for d in &decodes {
                let legs = kv_route_legs(cluster, &p.cost, &d.cost);
                flow_row.push(flow_endpoints(&legs));
                row.push(legs.iter().map(KvRouteLeg::segment).collect());
            }
            routes.push(row);
            flow_routes.push(flow_row);
        }
        let fabric = if cfg.network_contention && cfg.model_kv_transfer {
            let mut f = FlowFabric::from_cluster(cluster);
            if cfg.telemetry {
                f.enable_telemetry();
            }
            Some(f)
        } else {
            None
        };
        let codec = KvCodec::new(cfg.model.clone(), cfg.kv_precision);
        let codecs: Vec<(ModelId, KvCodec)> = if plan.is_multi_model() {
            cfg.models
                .iter()
                .map(|m| (m.id, KvCodec::new(m.spec.clone(), cfg.kv_precision)))
                .collect()
        } else {
            Vec::new()
        };
        let sender_free_at = vec![SimTime::ZERO; prefills.len()];
        let link_down = vec![vec![false; decodes.len()]; prefills.len()];
        let link_factor = vec![vec![1.0; decodes.len()]; prefills.len()];
        let believed_dead_prefill = vec![false; prefills.len()];
        let believed_dead_decode = vec![false; decodes.len()];
        let (np, nd) = (prefills.len(), decodes.len());
        Ok(Driver {
            core: Core::new(cfg, router, np, np + nd),
            topo: Topology::Split(SplitState {
                prefills,
                decodes,
                pair_coords,
                kv_memo: vec![vec![None; routes.first().map_or(0, Vec::len)]; routes.len()],
                routes,
                sender_free_at,
                link_down,
                link_factor,
                believed_dead_prefill,
                believed_dead_decode,
                parked: Vec::new(),
                fabric,
                flow_routes,
                codec,
                model_routes,
                prefill_model,
                decode_model,
                codecs,
            }),
        })
    }

    /// Builds a colocated driver over `groups`, each serving both phases.
    /// Requests are routed proportional to each replica's decode
    /// throughput capacity.
    pub fn new_colocated(
        cluster: &Cluster,
        groups: &[GroupSpec],
        cfg: SimConfig,
        policy: ColocatedPolicy,
    ) -> Result<Self> {
        if groups.is_empty() {
            return Err(Error::Infeasible("no replicas".into()));
        }
        // Chunked colocated scheduling interleaves take_chunk with decode
        // turns and needs FCFS order; prefill-priority scheduling under
        // shortest-first keeps its queue insertion-sorted instead of
        // re-sorting per batch.
        let sjf = cfg.prefill_policy == PrefillPolicy::ShortestFirst
            && matches!(policy, ColocatedPolicy::PrefillPriority);
        let mut replicas = Vec::with_capacity(groups.len());
        let mut weights = Vec::with_capacity(groups.len());
        for g in groups {
            let cost = ReplicaCostModel::new(cluster, cfg.spec_for(g.model), g, &cfg.params)?;
            let kv_capacity = cost.kv_capacity_tokens();
            // Route proportional to steady decode throughput at batch 32.
            weights.push(cost.decode_throughput(32.min(kv_capacity / 1024).max(1), 1024));
            replicas.push(ColocatedExecutor::new(cost, policy, sjf));
        }
        let believed_dead = vec![false; replicas.len()];
        let n = replicas.len();
        Ok(Driver {
            core: Core::new(cfg, StrideRouter::new(weights)?, n, n),
            topo: Topology::Colocated(ColoState {
                replicas,
                believed_dead,
            }),
        })
    }

    /// Total occurrences (arrivals + queued events) dispatched so far — the
    /// denominator of the events/sec benchmark.
    pub fn events_processed(&self) -> u64 {
        self.core.events_processed
    }

    /// Runs the trace with mid-flight fault injection. With an empty
    /// script this is a plain (fault-free) run.
    pub fn run_with_faults(
        &mut self,
        requests: &[Request],
        script: &FaultScript,
    ) -> Result<Metrics> {
        self.validate_script(script)?;
        self.core.faults = script.faults.clone();
        self.core.recovery_enabled = script.recovery;
        self.core.gray.beat_period = script.detection_delay;

        // Arrivals are merged lazily from this sorted vector instead of
        // being heap entries. The stable sort keeps submission order among
        // simultaneous arrivals — the seq order the eager pushes gave them.
        self.core.arrivals = requests.to_vec();
        self.core.arrivals.sort_by_key(|r| r.arrival);
        self.core.next_arrival = 0;
        for (idx, f) in self.core.faults.iter().enumerate() {
            self.core
                .queue
                .push(f.at, EventKind::FaultTriggered { index: idx });
            // Detection only matters for deaths, and only when the engine
            // actually recovers; healing and pauses act at trigger time.
            let needs_detection =
                matches!(f.kind, FaultKind::PrefillDown(_) | FaultKind::DecodeDown(_));
            if needs_detection && script.recovery {
                self.core.queue.push(
                    f.at + script.detection_delay,
                    EventKind::FaultDetected { index: idx },
                );
            }
        }
        let submitted = requests.len();
        while let Some(next) = self.core.next_event() {
            match next {
                NextEvent::Arrival(req) => self.on_arrival(req),
                NextEvent::Queued(ev) => self.dispatch_event(ev)?,
            }
        }
        // Anything still in the system when events run dry was lost to a
        // fault it never recovered from (stalled, parked, frozen on a dead
        // replica).
        let leftovers = self.core.reqs.drain();
        if self.core.track_models {
            for (_, st) in &leftovers {
                self.core.model_losses.entry(st.req.model).or_default().0 += 1;
            }
        }
        self.core.dropped += leftovers.len();
        drop(leftovers);
        if self.core.records.len() + self.core.dropped + self.core.rejected != submitted {
            return Err(Error::Simulation(format!(
                "conservation violated: {} completed + {} dropped + {} rejected != {} submitted",
                self.core.records.len(),
                self.core.dropped,
                self.core.rejected,
                submitted
            )));
        }
        if self.core.track_models {
            // The aggregate identity must also hold tenant by tenant: no
            // request may complete as one model and be dropped as another.
            let mut per: BTreeMap<ModelId, ModelConservation> = BTreeMap::new();
            let blank = |m: ModelId| ModelConservation {
                model: m,
                ..ModelConservation::default()
            };
            for r in requests {
                per.entry(r.model)
                    .or_insert_with(|| blank(r.model))
                    .submitted += 1;
            }
            for rec in &self.core.records {
                let m = rec.request.model;
                per.entry(m).or_insert_with(|| blank(m)).completed += 1;
            }
            for (&m, &(dropped, rejected)) in &self.core.model_losses {
                let c = per.entry(m).or_insert_with(|| blank(m));
                c.dropped += dropped;
                c.rejected += rejected;
            }
            for c in per.values() {
                if !c.balanced() {
                    return Err(Error::Simulation(format!(
                        "per-model conservation violated for {}: {} completed + {} dropped \
                         + {} rejected != {} submitted",
                        c.model, c.completed, c.dropped, c.rejected, c.submitted
                    )));
                }
            }
            self.core.recovery.per_model = per.into_values().collect();
            self.core.model_losses.clear();
        }
        // The per-step loop popped (and advanced `now` past) decode events
        // made stale by a replica death; the coalesced loop cancels them
        // instead and folds their fire times into the phantom horizon.
        let horizon = self
            .core
            .now
            .max(self.core.phantom_horizon)
            .saturating_since(SimTime::ZERO);
        Ok(Metrics::with_recovery(
            std::mem::take(&mut self.core.records),
            self.core.dropped,
            self.core.rejected,
            horizon,
            std::mem::take(&mut self.core.recovery),
        ))
    }

    /// Dispatches one queued event to its handler.
    fn dispatch_event(&mut self, ev: Event) -> Result<()> {
        match ev.kind {
            EventKind::PrefillDone { replica, epoch } => {
                let s = self.split_mut("PrefillDone")?;
                if s.prefills[replica].event_is_current(epoch) {
                    let Driver { core, topo } = self;
                    let Topology::Split(s) = topo else {
                        unreachable!()
                    };
                    split_on_prefill_done(core, s, replica)?;
                }
            }
            EventKind::PrefillSlotFree { replica, epoch } => {
                let s = self.split_mut("PrefillSlotFree")?;
                if s.prefills[replica].event_is_current(epoch) {
                    s.prefills[replica].wakeup_scheduled = false;
                    let Driver { core, topo } = self;
                    let Topology::Split(s) = topo else {
                        unreachable!()
                    };
                    split_maybe_start_prefill(core, s, replica);
                }
            }
            EventKind::KvTransferDone {
                replica,
                request,
                attempt,
            } => {
                self.split_mut("KvTransferDone")?;
                let Driver { core, topo } = self;
                let Topology::Split(s) = topo else {
                    unreachable!()
                };
                split_on_transfer_done(core, s, replica, request, attempt)?;
            }
            EventKind::KvFlowLaunch { request, attempt } => {
                self.split_mut("KvFlowLaunch")?;
                let Driver { core, topo } = self;
                let Topology::Split(s) = topo else {
                    unreachable!()
                };
                split_on_flow_launch(core, s, request, attempt);
            }
            EventKind::KvFlowDone { request, epoch } => {
                self.split_mut("KvFlowDone")?;
                let Driver { core, topo } = self;
                let Topology::Split(s) = topo else {
                    unreachable!()
                };
                split_on_flow_done(core, s, request, epoch)?;
            }
            EventKind::DecodeStepDone { replica, epoch } => {
                let s = self.split_mut("DecodeStepDone")?;
                if s.decodes[replica].event_is_current(epoch) {
                    self.on_decode_finish(replica, ev)?;
                }
            }
            EventKind::WorkDone { replica, epoch } => {
                let c = self.colocated_mut()?;
                if c.replicas[replica].event_is_current(epoch) {
                    let Driver { core, topo } = self;
                    let Topology::Colocated(c) = topo else {
                        unreachable!()
                    };
                    colo_on_work_done(core, c, replica)?;
                }
            }
            EventKind::FaultTriggered { index } => self.on_fault_triggered(index),
            EventKind::FaultDetected { index } => self.on_fault_detected(index),
            EventKind::ServiceResumed => self.on_service_resumed(),
            EventKind::HedgeCheck { request } => {
                self.split_mut("HedgeCheck")?;
                let Driver { core, topo } = self;
                let Topology::Split(s) = topo else {
                    unreachable!()
                };
                split_on_hedge_check(core, s, request);
            }
            EventKind::FlakyBeat { node } => self.on_flaky_beat(node),
            EventKind::ReadmitProbe { prefill, replica } => self.on_readmit_probe(prefill, replica),
        }
        Ok(())
    }

    /// Takes the recorded trace of the run, finalized into a time-sorted
    /// [`TraceLog`]; `None` when [`SimConfig::telemetry`] is off. Fabric-side
    /// events (per-link utilization, flow rate changes) are merged here.
    pub fn take_trace(&mut self) -> Option<TraceLog> {
        let mut rec = self.core.trace.take()?;
        if let Topology::Split(s) = &mut self.topo {
            if let Some(f) = s.fabric.as_mut() {
                rec.extend(f.take_events());
            }
        }
        Some(rec.finish())
    }

    /// Takes the streaming observability plane (sketches, windows, burn
    /// monitors) accumulated over the run; `None` when
    /// [`SimConfig::streaming`] is off. The plane's window clock stops at
    /// the last observed event — call
    /// [`StreamingPlane::advance_to`] to close windows out to a horizon.
    pub fn take_streaming(&mut self) -> Option<Box<StreamingPlane>> {
        self.core.stream.take()
    }

    /// Read access to the live streaming plane mid-run, `None` when
    /// [`SimConfig::streaming`] is off.
    pub fn streaming(&self) -> Option<&StreamingPlane> {
        self.core.stream.as_deref()
    }

    /// Split topology or an "event kind in wrong engine" error.
    fn split_mut(&mut self, kind: &str) -> Result<&mut SplitState> {
        match &mut self.topo {
            Topology::Split(s) => Ok(s),
            Topology::Colocated(_) => Err(Error::Simulation(format!(
                "unexpected {kind} event in colocated engine"
            ))),
        }
    }

    /// Colocated topology or an "event kind in wrong engine" error.
    fn colocated_mut(&mut self) -> Result<&mut ColoState> {
        match &mut self.topo {
            Topology::Colocated(c) => Ok(c),
            Topology::Split(_) => Err(Error::Simulation(
                "WorkDone event in phase-split engine".into(),
            )),
        }
    }

    fn validate_script(&self, script: &FaultScript) -> Result<()> {
        let factor_ok = |f: f64| f.is_finite() && f >= 1.0;
        let prob_ok = |p: f64| p.is_finite() && (0.0..=1.0).contains(&p);
        // Flaky heartbeats fire one beat event per detection window; a zero
        // window would self-reschedule at the same instant forever.
        let flaky_needs_window = |p: f64| -> Result<()> {
            if p > 0.0 && script.detection_delay == SimDuration::ZERO {
                return Err(Error::InvalidConfig(
                    "HeartbeatFlaky requires a nonzero detection_delay (the beat window)".into(),
                ));
            }
            Ok(())
        };
        match &self.topo {
            Topology::Split(s) => {
                let np = s.prefills.len();
                let nd = s.decodes.len();
                for f in &script.faults {
                    let ok = match f.kind {
                        FaultKind::PrefillDown(i) | FaultKind::PrefillUp(i) => i < np,
                        FaultKind::DecodeDown(j) | FaultKind::DecodeUp(j) => j < nd,
                        FaultKind::LinkDown { prefill, decode }
                        | FaultKind::LinkUp { prefill, decode } => prefill < np && decode < nd,
                        FaultKind::Pause { .. } => true,
                        FaultKind::PrefillSlow(i, factor) => i < np && factor_ok(factor),
                        FaultKind::DecodeSlow(j, factor) => j < nd && factor_ok(factor),
                        FaultKind::LinkDegraded {
                            prefill,
                            decode,
                            factor,
                        } => prefill < np && decode < nd && factor_ok(factor),
                        FaultKind::HeartbeatFlaky(h, p) => {
                            flaky_needs_window(p)?;
                            h < np + nd && prob_ok(p)
                        }
                    };
                    if !ok {
                        return Err(Error::InvalidConfig(format!(
                            "fault references a replica outside the plan \
                             or carries an invalid factor: {:?}",
                            f.kind
                        )));
                    }
                }
            }
            Topology::Colocated(c) => {
                let n = c.replicas.len();
                for f in &script.faults {
                    let ok = match f.kind {
                        FaultKind::PrefillDown(i)
                        | FaultKind::PrefillUp(i)
                        | FaultKind::DecodeDown(i)
                        | FaultKind::DecodeUp(i) => i < n,
                        FaultKind::LinkDown { .. }
                        | FaultKind::LinkUp { .. }
                        | FaultKind::LinkDegraded { .. } => {
                            return Err(Error::InvalidConfig(
                                "colocated replicas have no inter-replica links to fault".into(),
                            ))
                        }
                        FaultKind::Pause { .. } => true,
                        FaultKind::PrefillSlow(i, factor) | FaultKind::DecodeSlow(i, factor) => {
                            i < n && factor_ok(factor)
                        }
                        FaultKind::HeartbeatFlaky(h, p) => {
                            flaky_needs_window(p)?;
                            h < n && prob_ok(p)
                        }
                    };
                    if !ok {
                        return Err(Error::InvalidConfig(format!(
                            "fault references a replica outside the plan \
                             or carries an invalid factor: {:?}",
                            f.kind
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    fn on_arrival(&mut self, req: Request) {
        let (id, model) = (req.id, req.model);
        let key = self.core.reqs.insert(ReqState::new(req));
        trace(&mut self.core, TraceKind::Arrived { request: id });
        if self.core.track_models {
            trace(&mut self.core, TraceKind::ModelTag { request: id, model });
        }
        // Flaky heartbeat beats pause while no requests are outstanding (so
        // the event queue can drain); restart them with the new work.
        if self.core.gray.flaky_any {
            for node in 0..self.core.gray.flaky.len() {
                if self.core.gray.flaky[node] > 0.0 && !self.core.gray.flaky_scheduled[node] {
                    self.core.gray.flaky_scheduled[node] = true;
                    let at = self.core.now + self.core.gray.beat_period;
                    self.core.queue.push(at, EventKind::FlakyBeat { node });
                }
            }
        }
        let job = PrefillJob::fresh(key, &self.core.reqs[key].req);
        self.dispatch_job(job);
    }

    /// Routes a job to a live destination (a (prefill, decode) pair under
    /// `Split`, a replica under `Colocated`), or stalls/sheds it if the
    /// service is paused or no live route exists.
    fn dispatch_job(&mut self, job: PrefillJob) {
        let Some(st) = self.core.reqs.get(job.key) else {
            return;
        };
        let (rid, model, arrival) = (st.req.id, st.req.model, st.req.arrival);
        // SLO-class-aware shedding: a request whose TTFT deadline already
        // passed before its prefill could even be dispatched (it sat
        // stalled through a pause or dead-router window, or is being
        // requeued after a fault) is not worth serving. Fires only for
        // delayed dispatches — at arrival `now == arrival`, so an
        // on-time request is never shed. Re-prefills of sequences that
        // already produced their first token are exempt: their TTFT was
        // met.
        if let Some(slo) = self.core.cfg.deadline_slo {
            let ttft_met = st.pend.first_token_at.is_some();
            let deadline = arrival + slo.ttft.mul_f64(self.core.cfg.deadline_scale);
            if !ttft_met && self.core.now > deadline {
                reject_request(&mut self.core, job.key);
                self.core.recovery.deadline_shed += 1;
                trace(&mut self.core, TraceKind::DeadlineShed { request: rid });
                clear_affected(&mut self.core, rid);
                return;
            }
        }
        if self.core.paused_until.is_some() {
            stall_or_shed(&mut self.core, job);
            return;
        }
        // Multi-model plans route by the request's model through that
        // tenant's own router, so a tenant never lands on another tenant's
        // executors; single-model plans, colocated engines, and requests
        // for a model the plan does not serve use the global router.
        let route = match &self.topo {
            Topology::Split(s) if !s.model_routes.is_empty() => {
                s.model_routes.iter().position(|r| r.model == model)
            }
            _ => None,
        };
        let Driver { core, topo } = self;
        let (i, j) = match (route, &mut *topo) {
            (Some(ri), Topology::Split(s)) => {
                let r = &mut s.model_routes[ri];
                if r.router.num_enabled() == 0 {
                    stall_or_shed(core, job);
                    return;
                }
                r.pairs[r.router.next()]
            }
            _ => {
                if core.router.num_enabled() == 0 {
                    stall_or_shed(core, job);
                    return;
                }
                let k = core.router.next();
                match &*topo {
                    Topology::Split(s) => s.pair_coords[k],
                    Topology::Colocated(_) => (k, k),
                }
            }
        };
        match topo {
            Topology::Split(s) => {
                if let Some(st) = core.reqs.get_mut(job.key) {
                    st.pend.prefill = i;
                    st.pend.decode = j;
                }
                let key = job.key;
                s.prefills[i].queue.enqueue(job);
                trace(
                    core,
                    TraceKind::Enqueued {
                        request: rid,
                        role: Role::Prefill,
                        replica: i,
                    },
                );
                trace(
                    core,
                    TraceKind::QueueDepth {
                        role: Role::Prefill,
                        replica: i,
                        depth: s.prefills[i].queue.queue.len(),
                    },
                );
                split_maybe_start_prefill(core, s, i);
                if let Some(timeout) = core.cfg.hedge_timeout {
                    core.queue
                        .push(core.now + timeout, EventKind::HedgeCheck { request: key });
                }
            }
            Topology::Colocated(c) => {
                if let Some(st) = core.reqs.get_mut(job.key) {
                    st.pend.prefill = i;
                    st.pend.decode = i;
                }
                c.replicas[i].prefill.enqueue(job);
                trace(
                    core,
                    TraceKind::Enqueued {
                        request: rid,
                        role: Role::Colocated,
                        replica: i,
                    },
                );
                trace(
                    core,
                    TraceKind::QueueDepth {
                        role: Role::Colocated,
                        replica: i,
                        depth: c.replicas[i].prefill.queue.len(),
                    },
                );
                colo_maybe_start_work(core, c, i);
            }
        }
    }

    // --- fault layer ------------------------------------------------------

    fn on_fault_triggered(&mut self, index: usize) {
        trace(&mut self.core, TraceKind::FaultTriggered { index });
        let kind = self.core.faults[index].kind;
        // Pauses are topology-agnostic.
        if let FaultKind::Pause { until } = kind {
            if until > self.core.now {
                self.core.paused_until = Some(until);
                self.core.queue.push(until, EventKind::ServiceResumed);
            }
            return;
        }
        // So are flaky heartbeats (the host index already encodes the
        // prefill/decode split).
        if let FaultKind::HeartbeatFlaky(node, p) = kind {
            self.set_flaky(node, p);
            return;
        }
        match &mut self.topo {
            Topology::Split(s) => match kind {
                FaultKind::PrefillDown(i) => s.prefills[i].kill(),
                FaultKind::DecodeDown(j) => {
                    // The batch must freeze at its materially-advanced
                    // state: step boundaries strictly before the fault did
                    // complete under the per-step loop (their events were
                    // pre-death and current). The in-flight step dies with
                    // the replica; its scheduled fire time is folded into
                    // the phantom horizon because the per-step loop would
                    // still have popped (and advanced `now` past) the
                    // stale event.
                    let Driver { core, topo } = self;
                    let Topology::Split(s) = topo else {
                        unreachable!()
                    };
                    split_catch_up_decode(core, s, j);
                    split_cancel_decode_plan(core, s, j);
                    s.decodes[j].kill();
                }
                FaultKind::PrefillUp(i) => {
                    let now = self.core.now;
                    // Work frozen at death never re-runs on its own (its
                    // completion events are stale); restart it or declare
                    // it lost.
                    s.prefills[i].revive(now);
                    let drained = s.prefills[i].drain_lost();
                    s.believed_dead_prefill[i] = false;
                    split_refresh_router(&mut self.core, s);
                    if self.core.recovery_enabled {
                        self.recover_drained(drained, None);
                        self.drain_stalled();
                    } else {
                        self.drop_drained(drained);
                    }
                }
                FaultKind::DecodeUp(j) => {
                    let now = self.core.now;
                    // Sequences frozen at death lost their KV either way.
                    // Healing an *alive* replica (an Up without a Down)
                    // still bumps the epoch and clears the plan, so settle
                    // the plan first exactly as a death would.
                    let Driver { core, topo } = self;
                    let Topology::Split(s) = topo else {
                        unreachable!()
                    };
                    split_catch_up_decode(core, s, j);
                    split_cancel_decode_plan(core, s, j);
                    s.decodes[j].revive(now);
                    let drained = s.decodes[j].drain_lost();
                    s.believed_dead_decode[j] = false;
                    split_refresh_router(core, s);
                    if self.core.recovery_enabled {
                        self.recover_drained(drained, None);
                        let Driver { core, topo } = self;
                        let Topology::Split(s) = topo else {
                            unreachable!()
                        };
                        let parked = std::mem::take(&mut s.parked);
                        for t in parked {
                            split_redispatch_transfer(core, s, t);
                        }
                        self.drain_stalled();
                    } else {
                        self.drop_drained(drained);
                    }
                }
                FaultKind::LinkDown { prefill, decode } => {
                    s.link_down[prefill][decode] = true;
                    // Under the flow-level fabric the fault is visible
                    // immediately: in-flight flows on the link die now and
                    // re-enter through the usual retry/backoff path. (The
                    // legacy model instead notices at completion time.)
                    if s.fabric.is_some() {
                        let Driver { core, topo } = self;
                        let Topology::Split(s) = topo else {
                            unreachable!()
                        };
                        split_kill_link_flows(core, s, prefill, decode);
                    }
                }
                FaultKind::LinkUp { prefill, decode } => {
                    s.link_down[prefill][decode] = false;
                }
                FaultKind::PrefillSlow(i, factor) => s.prefills[i].slow_factor = factor,
                FaultKind::DecodeSlow(j, factor) => {
                    // A coalesced plan priced its remaining boundaries at
                    // the old speed; the per-step loop would have priced
                    // every step after the in-flight one at the new speed.
                    // Catch up, apply the factor, and re-plan carrying the
                    // already-committed in-flight boundary.
                    let Driver { core, topo } = self;
                    let Topology::Split(s) = topo else {
                        unreachable!()
                    };
                    split_catch_up_decode(core, s, j);
                    s.decodes[j].slow_factor = factor;
                    if coalescing_active(core) && s.decodes[j].plan.is_some() {
                        split_replan_decode(core, s, j);
                    }
                }
                FaultKind::LinkDegraded {
                    prefill,
                    decode,
                    factor,
                } => {
                    s.link_factor[prefill][decode] = factor;
                    // Under the fabric the degradation applies to the
                    // pair's physical links, re-fair-sharing every
                    // in-flight flow live (other pairs sharing those links
                    // feel it too, as on a real network).
                    if s.fabric.is_some() {
                        let now = self.core.now;
                        let Driver { core, topo } = self;
                        let Topology::Split(s) = topo else {
                            unreachable!()
                        };
                        let (from, to, _) = s.flow_routes[prefill][decode];
                        let estimates = match s.fabric.as_mut() {
                            Some(f) => f.degrade_path(from, to, factor, now),
                            None => unreachable!(),
                        };
                        schedule_flow_events(core, estimates);
                    }
                }
                FaultKind::Pause { .. } | FaultKind::HeartbeatFlaky(..) => unreachable!(),
            },
            Topology::Colocated(c) => match kind {
                // A colocated replica hosts both phases: either phase's
                // death (or healing) is the whole replica's.
                FaultKind::PrefillDown(i) | FaultKind::DecodeDown(i) => c.replicas[i].kill(),
                FaultKind::PrefillUp(i) | FaultKind::DecodeUp(i) => {
                    let now = self.core.now;
                    c.replicas[i].revive(now);
                    let drained = c.replicas[i].drain_lost();
                    c.believed_dead[i] = false;
                    colo_refresh_router(&mut self.core, c);
                    if self.core.recovery_enabled {
                        self.recover_drained(drained, None);
                        self.drain_stalled();
                    } else {
                        self.drop_drained(drained);
                    }
                }
                // A colocated replica hosts both phases, so either slow
                // kind slows the whole replica.
                FaultKind::PrefillSlow(i, factor) | FaultKind::DecodeSlow(i, factor) => {
                    c.replicas[i].slow_factor = factor
                }
                FaultKind::LinkDown { .. }
                | FaultKind::LinkUp { .. }
                | FaultKind::LinkDegraded { .. } => {
                    unreachable!("rejected by validate_script")
                }
                FaultKind::Pause { .. } | FaultKind::HeartbeatFlaky(..) => unreachable!(),
            },
        }
    }

    fn on_fault_detected(&mut self, index: usize) {
        trace(&mut self.core, TraceKind::FaultDetected { index });
        let at = self.core.faults[index].at;
        let kind = self.core.faults[index].kind;
        let drained = match (&mut self.topo, kind) {
            (Topology::Split(s), FaultKind::PrefillDown(i)) => {
                if s.prefills[i].is_alive() {
                    None // blipped back up before detection; healed already
                } else {
                    s.believed_dead_prefill[i] = true;
                    split_refresh_router(&mut self.core, s);
                    Some(s.prefills[i].drain_lost())
                }
            }
            (Topology::Split(s), FaultKind::DecodeDown(j)) => {
                if s.decodes[j].is_alive() {
                    None
                } else {
                    s.believed_dead_decode[j] = true;
                    split_refresh_router(&mut self.core, s);
                    Some(s.decodes[j].drain_lost())
                }
            }
            (Topology::Colocated(c), FaultKind::PrefillDown(i) | FaultKind::DecodeDown(i)) => {
                if c.replicas[i].is_alive() {
                    None
                } else {
                    c.believed_dead[i] = true;
                    colo_refresh_router(&mut self.core, c);
                    Some(c.replicas[i].drain_lost())
                }
            }
            _ => None,
        };
        if let Some(d) = drained {
            self.recover_drained(d, Some(at));
        }
    }

    /// Recovers drained work onto survivors: queued/in-flight prefill jobs
    /// are requeued as-is, lost decode sequences are re-prefilled over
    /// their full context. `fault_at` registers the affected set for
    /// time-to-recover accounting (detection path only). Jobs whose slab
    /// entry is gone (a hedge ghost of a request that already resolved)
    /// are dropped on the floor.
    fn recover_drained(&mut self, drained: DrainedWork, fault_at: Option<SimTime>) {
        let mut jobs: Vec<PrefillJob> = Vec::new();
        for job in drained.prefill_jobs {
            let Some(st) = self.core.reqs.get(job.key) else {
                continue;
            };
            let rid = st.req.id;
            self.core.recovery.requeued_requests += 1;
            trace(&mut self.core, TraceKind::Requeued { request: rid });
            jobs.push(job);
        }
        for lost in drained.lost_seqs {
            let Some(st) = self.core.reqs.get(lost.key) else {
                continue;
            };
            let rid = st.req.id;
            self.core.recovery.reprefilled_tokens += lost.tokens;
            trace(
                &mut self.core,
                TraceKind::Reprefill {
                    request: rid,
                    tokens: lost.tokens,
                },
            );
            jobs.push(PrefillJob {
                key: lost.key,
                tokens: lost.tokens,
                remaining: lost.remaining,
                resume: lost.resume,
            });
        }
        if let Some(at) = fault_at {
            let ids: BTreeSet<RequestId> = jobs
                .iter()
                .filter_map(|j| self.core.reqs.get(j.key).map(|st| st.req.id))
                .collect();
            if !ids.is_empty() {
                self.core.affected.push((at, ids));
            }
        }
        for job in &jobs {
            // A requeued/re-prefilled job must be able to launch its KV
            // transfer again: clear the hedging duplicate-launch guard, or
            // the recovered prefill's completion would be discarded.
            if let Some(st) = self.core.reqs.get_mut(job.key) {
                st.pend.kv_launched = false;
                st.pend.hedge = None;
            }
        }
        for job in jobs {
            self.dispatch_job(job);
        }
    }

    /// Drops drained work without recovery (the no-recovery arm of a
    /// healing event: the work was lost for good).
    fn drop_drained(&mut self, drained: DrainedWork) {
        for job in drained.prefill_jobs {
            drop_request(&mut self.core, job.key);
        }
        for lost in drained.lost_seqs {
            if self.core.reqs.contains(lost.key) {
                drop_request(&mut self.core, lost.key);
            }
        }
    }

    fn drain_stalled(&mut self) {
        if self.core.paused_until.is_some() || self.core.router.num_enabled() == 0 {
            return;
        }
        let stalled = std::mem::take(&mut self.core.stalled);
        for job in stalled {
            self.dispatch_job(job);
        }
    }

    fn on_service_resumed(&mut self) {
        // Pauses can be extended by a later Pause fault; only resume at the
        // latest deadline.
        if let Some(until) = self.core.paused_until {
            if until > self.core.now {
                return;
            }
        }
        self.core.paused_until = None;
        trace(&mut self.core, TraceKind::ServiceResumed);
        self.drain_stalled();
    }

    // --- gray-failure mitigation layer -----------------------------------

    /// The telemetry (role, replica) of host `node` under this topology.
    fn host_role(&self, node: usize) -> (Role, usize) {
        match &self.topo {
            Topology::Split(_) => self.core.split_host_role(node),
            Topology::Colocated(_) => (Role::Colocated, node),
        }
    }

    /// Re-derives the routing mask (liveness beliefs + gray masking).
    fn refresh_router(&mut self) {
        let Driver { core, topo } = self;
        match topo {
            Topology::Split(s) => split_refresh_router(core, s),
            Topology::Colocated(c) => colo_refresh_router(core, c),
        }
    }

    /// Applies a [`FaultKind::HeartbeatFlaky`] trigger: records the loss
    /// probability, starts the beat clock if needed, and — on healing —
    /// readmits a host stuck masked by a false positive.
    fn set_flaky(&mut self, node: usize, p: f64) {
        self.core.gray.flaky[node] = p;
        if p > 0.0 {
            self.core.gray.flaky_any = true;
            if !self.core.gray.flaky_scheduled[node] {
                self.core.gray.flaky_scheduled[node] = true;
                let at = self.core.now + self.core.gray.beat_period;
                self.core.queue.push(at, EventKind::FlakyBeat { node });
            }
        } else {
            self.core.gray.flaky_any = self.core.gray.flaky.iter().any(|&q| q > 0.0);
            if self.core.gray.flaky_dead[node] {
                self.readmit_flaky(node);
            }
        }
    }

    /// One heartbeat window elapsed for `node`: draw whether the beat was
    /// lost and mask/readmit accordingly, then reschedule while requests
    /// remain (beats pause on an idle system so the event queue drains;
    /// [`Driver::on_arrival`] restarts them).
    fn on_flaky_beat(&mut self, node: usize) {
        let p = self.core.gray.flaky[node];
        if p <= 0.0 {
            self.core.gray.flaky_scheduled[node] = false;
            return;
        }
        let lost = self.core.gray.rng.gen_range(0.0..1.0) < p;
        if lost && !self.core.gray.flaky_dead[node] {
            self.core.gray.flaky_dead[node] = true;
            self.core.recovery.quarantines += 1;
            let (role, replica) = self.host_role(node);
            trace(&mut self.core, TraceKind::Quarantined { role, replica });
            self.refresh_router();
        } else if !lost && self.core.gray.flaky_dead[node] {
            self.readmit_flaky(node);
        }
        if self.core.reqs.is_empty() {
            self.core.gray.flaky_scheduled[node] = false;
            return;
        }
        let at = self.core.now + self.core.gray.beat_period;
        self.core.queue.push(at, EventKind::FlakyBeat { node });
    }

    /// A delivered beat (or a healing fault) readmits a host masked by a
    /// flaky-heartbeat false positive.
    fn readmit_flaky(&mut self, node: usize) {
        self.core.gray.flaky_dead[node] = false;
        self.core.recovery.readmissions += 1;
        let (role, replica) = self.host_role(node);
        trace(&mut self.core, TraceKind::Readmitted { role, replica });
        self.refresh_router();
        if self.core.recovery_enabled {
            self.drain_stalled();
        }
    }

    /// A quarantine probation ended: readmit the replica unless a later
    /// re-quarantine pushed its expiry out (stale probe). The straggler
    /// detector restarts from scratch — if the replica is still slow it
    /// re-quarantines after `straggler_min_samples` fresh iterations.
    fn on_readmit_probe(&mut self, prefill: bool, replica: usize) {
        let host = match &self.topo {
            Topology::Split(_) => self.core.host_of(prefill, replica),
            Topology::Colocated(_) => replica,
        };
        let Some(until) = self.core.gray.quarantine_until[host] else {
            return;
        };
        if self.core.now < until {
            return; // superseded by a re-quarantine
        }
        self.core.gray.quarantined[host] = false;
        self.core.gray.quarantine_until[host] = None;
        self.core.gray.slow_ewma[host] = 1.0;
        self.core.gray.slow_samples[host] = 0;
        self.core.recovery.readmissions += 1;
        let (role, replica) = self.host_role(host);
        trace(&mut self.core, TraceKind::Readmitted { role, replica });
        self.refresh_router();
        if self.core.recovery_enabled {
            self.drain_stalled();
        }
    }
}

impl Core {
    fn new(cfg: SimConfig, router: StrideRouter, prefill_hosts: usize, total_hosts: usize) -> Self {
        let trace = cfg.telemetry.then(Recorder::new);
        let stream = cfg.streaming.clone().map(|sc| {
            let mut plane = StreamingPlane::new(sc);
            for m in &cfg.models {
                plane.register_tenant(m.id, m.slo);
            }
            Box::new(plane)
        });
        let gray = GrayState::new(cfg.fault_seed, prefill_hosts, total_hosts);
        let track_models = !cfg.models.is_empty();
        Core {
            cfg,
            router,
            queue: EventQueue::new(),
            reqs: Slab::new(),
            records: Vec::new(),
            dropped: 0,
            rejected: 0,
            now: SimTime::ZERO,
            faults: Vec::new(),
            recovery_enabled: true,
            stalled: VecDeque::new(),
            paused_until: None,
            recovery: RecoveryCounters::default(),
            affected: Vec::new(),
            trace,
            stream,
            gray,
            track_models,
            model_losses: HashMap::new(),
            arrivals: Vec::new(),
            next_arrival: 0,
            events_processed: 0,
            event_pushed_at: SimTime::ZERO,
            phantom_horizon: SimTime::ZERO,
            held_decode: Vec::new(),
        }
    }

    /// Pops the next occurrence — the cursor arrival or the queue head,
    /// whichever is earlier — advancing the clock and stamping
    /// [`Core::event_pushed_at`]. Ties go to the arrival: under the eager
    /// scheme arrivals were pushed at setup, before any simulation event,
    /// so they carried the smaller sequence numbers.
    fn next_event(&mut self) -> Option<NextEvent> {
        let arrival = self.arrivals.get(self.next_arrival).map(|r| r.arrival);
        let queued = self.queue.peek().map(|e| e.at);
        let take_arrival = match (arrival, queued) {
            (Some(a), Some(q)) => a <= q,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => return None,
        };
        if take_arrival {
            let req = self.arrivals[self.next_arrival];
            self.next_arrival += 1;
            debug_assert!(req.arrival >= self.now, "arrival in the past");
            self.now = req.arrival;
            self.queue.set_now(self.now);
            self.event_pushed_at = SimTime::ZERO;
            self.events_processed += 1;
            Some(NextEvent::Arrival(req))
        } else {
            let ev = self.queue.pop()?;
            debug_assert!(ev.at >= self.now, "event in the past");
            self.now = ev.at;
            self.queue.set_now(self.now);
            self.event_pushed_at = ev.pushed_at;
            self.events_processed += 1;
            Some(NextEvent::Queued(ev))
        }
    }

    /// Removes and returns the deferred decode-finish stamp for replica
    /// `j`, if one is held.
    fn take_held_decode(&mut self, j: usize) -> Option<(u64, SimTime)> {
        let pos = self.held_decode.iter().position(|h| h.0 == j)?;
        let (_, seq, pushed_at) = self.held_decode.swap_remove(pos);
        Some((seq, pushed_at))
    }

    /// The host index of a replica (prefills first, then decodes; the
    /// `prefill` flag is meaningless for colocated drivers, whose hosts and
    /// replicas coincide).
    fn host_of(&self, prefill: bool, replica: usize) -> usize {
        if prefill {
            replica
        } else {
            self.gray.prefill_hosts + replica
        }
    }

    /// The telemetry (role, replica) of host `node` for a split driver.
    fn split_host_role(&self, node: usize) -> (Role, usize) {
        if node < self.gray.prefill_hosts {
            (Role::Prefill, node)
        } else {
            (Role::Decode, node - self.gray.prefill_hosts)
        }
    }
}

/// Records a trace event at the current simulation time; a single-branch
/// no-op when telemetry is off.
#[inline]
fn trace(core: &mut Core, kind: TraceKind) {
    let at = core.now;
    trace_at(core, at, kind);
}

/// Records a trace event stamped at `at`, which may lie in the future (a
/// KV wire start scheduled behind a busy uplink); the recorder re-sorts by
/// timestamp at finalization, while the streaming plane folds in event
/// order (its window clock advances on a high-water mark, so a future
/// stamp just opens the window early — deterministically).
#[inline]
fn trace_at(core: &mut Core, at: SimTime, kind: TraceKind) {
    if let Some(plane) = core.stream.as_mut() {
        plane.observe(at, &kind);
    }
    if let Some(rec) = core.trace.as_mut() {
        rec.record(TraceEvent { at, kind });
    }
}

/// Whether any event consumer (trace recorder or streaming plane) is
/// attached — the gate instrumented hot paths check before doing
/// observation-only work (retroactive decode materialization, queue-depth
/// samples, per-batch byte accounting).
fn observing(core: &Core) -> bool {
    core.trace.is_some() || core.stream.is_some()
}

/// Whether the full trace recorder is attached. Emission sites whose
/// events the streaming plane ignores (prefill-start markers, KV wire
/// byte accounting, stall markers) gate on this instead of [`observing`],
/// so a streaming-only run skips constructing them entirely — part of
/// keeping the plane's overhead within the committed `BENCH_obs.json`
/// budget.
fn tracing(core: &Core) -> bool {
    core.trace.is_some()
}

/// Whether burn-gated hedging currently *suppresses* a hedge launch: the
/// knob is on and the streaming plane (if any) reports fully healthy SLO
/// burn. With the knob off (the default) hedging behaviour is untouched
/// and bit-identical.
fn hedge_suppressed(core: &Core) -> bool {
    if !core.cfg.burn_gated_hedging {
        return false;
    }
    match core.stream.as_deref() {
        Some(plane) => plane.global_signal().state == HealthState::Healthy,
        None => false,
    }
}

// --- topology-agnostic helpers (free functions over Core) ----------------

/// Removes `key` from the slab and books the loss as a rejection (counted
/// per-model when the catalog is non-empty). The trace event and any
/// policy-specific accounting stay with the caller, which knows *why* the
/// request was rejected. A dead key is a no-op: the loss was already
/// booked when the entry went away.
fn reject_request(core: &mut Core, key: SlabKey) {
    let Some(st) = core.reqs.remove(key) else {
        return;
    };
    if core.track_models {
        core.model_losses.entry(st.req.model).or_default().1 += 1;
    }
    core.rejected += 1;
}

fn stall_or_shed(core: &mut Core, job: PrefillJob) {
    if core.stalled.len() < core.cfg.shed_threshold {
        if tracing(core) {
            let rid = core.reqs[job.key].req.id;
            trace(core, TraceKind::Stalled { request: rid });
        }
        core.stalled.push_back(job);
    } else {
        let rid = core.reqs.get(job.key).map(|st| st.req.id);
        reject_request(core, job.key);
        if let Some(rid) = rid {
            trace(core, TraceKind::Rejected { request: rid });
            clear_affected(core, rid);
        }
    }
}

/// Removes `key` from the slab and books the loss as a drop. A dead key
/// (a hedge ghost of a request that already resolved) is a no-op.
fn drop_request(core: &mut Core, key: SlabKey) {
    let Some(st) = core.reqs.remove(key) else {
        return;
    };
    let id = st.req.id;
    if core.track_models {
        core.model_losses.entry(st.req.model).or_default().0 += 1;
    }
    core.dropped += 1;
    trace(core, TraceKind::Dropped { request: id });
    clear_affected(core, id);
}

/// Marks `id` no longer waiting on fault recovery; records a fault's
/// time-to-recover when its last affected request resolves. The empty
/// check keeps the fault-free fast path allocation-free.
fn clear_affected(core: &mut Core, id: RequestId) {
    if core.affected.is_empty() {
        return;
    }
    let now = core.now;
    let mut recovered_at = Vec::new();
    for (at, set) in &mut core.affected {
        if set.remove(&id) && set.is_empty() {
            recovered_at.push(now.saturating_since(*at));
        }
    }
    core.recovery.recovery_times.extend(recovered_at);
}

/// Applies one admission pass's decisions, in order: evictions become
/// drops, admissions resolve fault-recovery tracking (and, under
/// telemetry, mark the sequence's decode-batch join on `replica`).
/// Returns whether anything was admitted.
fn apply_admit_outcomes(
    core: &mut Core,
    outcomes: Vec<AdmitOutcome>,
    role: Role,
    replica: usize,
) -> bool {
    let mut admitted = false;
    for o in outcomes {
        match o {
            AdmitOutcome::Dropped(key) => drop_request(core, key),
            AdmitOutcome::Admitted(key) => {
                admitted = true;
                if let Some(st) = core.reqs.get(key) {
                    let rid = st.req.id;
                    trace(
                        core,
                        TraceKind::DecodeJoin {
                            request: rid,
                            role,
                            replica,
                        },
                    );
                    clear_affected(core, rid);
                }
            }
        }
    }
    admitted
}

fn finish(core: &mut Core, key: SlabKey, at: SimTime, max_token_gap: SimDuration) -> Result<()> {
    let st = core
        .reqs
        .remove(key)
        .ok_or_else(|| Error::Simulation(format!("finish without request state: {key}")))?;
    let (req, pend) = (st.req, st.pend);
    let first = pend
        .first_token_at
        .ok_or_else(|| Error::Simulation(format!("finish before prefill: {}", req.id)))?;
    // KV-transfer decomposition: queue wait on the sender, then wire time.
    // Requests that never transferred (colocated, single-token) record zero.
    let kv_queue_wait = match (pend.kv_enqueued_at, pend.kv_wire_started_at) {
        (Some(enq), Some(wire)) => wire.saturating_since(enq),
        _ => SimDuration::ZERO,
    };
    let kv_wire_time = match (pend.kv_wire_started_at, pend.kv_done_at) {
        (Some(wire), Some(done)) => done.saturating_since(wire),
        _ => SimDuration::ZERO,
    };
    core.records.push(RequestRecord {
        request: req,
        prefill_replica: pend.prefill,
        decode_replica: pend.decode,
        first_token_at: first,
        finished_at: at,
        max_token_gap,
        kv_queue_wait,
        kv_wire_time,
        kv_done_at: pend.kv_done_at,
    });
    trace_at(core, at, TraceKind::Finished { request: req.id });
    clear_affected(core, req.id);
    Ok(())
}

/// Exponential backoff for transfer attempt `attempt` (2 = first retry):
/// `base * 2^(attempt-2)`, capped — then stretched by a seeded jitter draw
/// in `[1, 1 + kv_retry_jitter]` when the jitter knob is on (the RNG is
/// untouched at the default of 0, preserving bit-identity).
fn retry_backoff(core: &mut Core, attempt: u32) -> SimDuration {
    let base = core.cfg.kv_retry_backoff_base;
    let cap = core.cfg.kv_retry_backoff_cap;
    let mut delay = base;
    for _ in 2..attempt {
        delay = delay + delay;
        if delay >= cap {
            delay = cap;
            break;
        }
    }
    delay = delay.min(cap);
    let jitter = core.cfg.kv_retry_jitter;
    if jitter > 0.0 {
        let stretch = 1.0 + core.gray.rng.gen_range(0.0..1.0) * jitter;
        delay = delay.mul_f64(stretch);
    }
    delay
}

/// Checks the per-request retry budget for a transfer about to run
/// `attempt` (already incremented). Returns `true` — after dropping the
/// request and counting the exhaustion — when the budget is spent.
/// Attempt 1 is the initial send, so a budget of `b` allows attempts up to
/// `b + 1`.
fn retry_budget_spent(core: &mut Core, key: SlabKey, attempt: u32) -> bool {
    let Some(budget) = core.cfg.kv_retry_budget else {
        return false;
    };
    if attempt <= budget + 1 {
        return false;
    }
    core.recovery.retry_budget_exhausted += 1;
    drop_request(core, key);
    true
}

// --- split-topology handlers ---------------------------------------------

fn split_maybe_start_prefill(core: &mut Core, s: &mut SplitState, i: usize) {
    let p = &mut s.prefills[i];
    if !p.is_alive() || p.queue.is_empty() {
        return;
    }
    if p.next_free > core.now {
        // First stage still occupied: wake up when it frees.
        if !p.wakeup_scheduled {
            p.wakeup_scheduled = true;
            core.queue.push(
                p.next_free,
                EventKind::PrefillSlotFree {
                    replica: i,
                    epoch: p.epoch(),
                },
            );
        }
        return;
    }
    let (batch, total, avg_ctx) = if let Some(chunk) = core.cfg.prefill_chunk_tokens {
        // Chunked prefill on a disaggregated prefill replica: bounded
        // per-launch token count, Sarathi-style.
        let (batch, tokens) = p.queue.take_chunk(chunk);
        let avg = batch
            .first()
            .map(|j| j.tokens)
            .unwrap_or_else(|| tokens.max(1));
        (batch, tokens.max(1), avg)
    } else {
        // Recycle a retired batch buffer so steady-state launches do not
        // allocate.
        let mut batch = p.spare_batches.pop().unwrap_or_default();
        let total = p.queue.take_batch_into(
            core.cfg.max_prefill_batch_tokens,
            core.cfg.prefill_policy,
            &mut batch,
        );
        let avg = total / batch.len() as u64;
        (batch, total, avg)
    };
    if tracing(core) {
        for job in &batch {
            // A hedge ghost (its request already resolved) prefills without
            // a slab entry; it has no id to trace.
            if let Some(st) = core.reqs.get(job.key) {
                let rid = st.req.id;
                trace(
                    core,
                    TraceKind::PrefillStart {
                        request: rid,
                        role: Role::Prefill,
                        replica: i,
                        tokens: job.tokens,
                    },
                );
            }
        }
    }
    if observing(core) {
        let depth = p.queue.queue.len();
        trace(
            core,
            TraceKind::QueueDepth {
                role: Role::Prefill,
                replica: i,
                depth,
            },
        );
    }
    // Batch pricing goes through the executor's one-entry memo: traces
    // with repeated prompt lengths form the same batch shape over and
    // over, and both pricing functions are pure in `(total, avg_ctx)`.
    let (mut latency, mut bottleneck) = match p.price_memo {
        Some((t, c, lat, bot)) if t == total && c == avg_ctx => (lat, bot),
        _ => {
            let lat = p.cost.prefill_latency(total, avg_ctx);
            // Pipeline parallelism: the next batch may enter once the
            // slowest stage has processed this one; the batch itself
            // completes after the full pipeline latency.
            let bot = p.cost.prefill_bottleneck(total, avg_ctx);
            p.price_memo = Some((total, avg_ctx, lat, bot));
            (lat, bot)
        }
    };
    // Straggler fault: iteration times stretch. Skipped entirely at the
    // healthy factor of exactly 1 so the default path never rounds
    // through the multiply.
    if p.slow_factor != 1.0 {
        latency = latency.mul_f64(p.slow_factor);
        bottleneck = bottleneck.mul_f64(p.slow_factor);
    }
    p.next_free = core.now + bottleneck;
    p.in_flight.push_back(batch);
    core.queue.push(
        core.now + latency,
        EventKind::PrefillDone {
            replica: i,
            epoch: p.epoch(),
        },
    );
}

fn split_on_prefill_done(core: &mut Core, s: &mut SplitState, i: usize) -> Result<()> {
    let batch = s.prefills[i]
        .in_flight
        .pop_front()
        .ok_or_else(|| Error::Simulation("prefill done with nothing in flight".into()))?;
    if core.cfg.straggler_threshold.is_some() {
        split_observe_straggler(core, s, true, i);
    }
    let now = core.now;
    let mut batch = batch;
    for job in batch.drain(..) {
        // Hedged duplicates race, first completion wins: the loser finds
        // the request finished (single-token outputs) or its KV transfer
        // already launched, and is discarded here.
        let (rid, newly_first, jdec, loser) = {
            let Some(st) = core.reqs.get_mut(job.key) else {
                continue;
            };
            let rid = st.req.id;
            let pend = &mut st.pend;
            if pend.kv_launched {
                continue;
            }
            // Re-prefills keep their original first-token time: TTFT was
            // already paid, recovery shows up in inter-token gaps instead.
            let newly_first = pend.first_token_at.is_none();
            if newly_first {
                pend.first_token_at = Some(now);
            }
            // The winner of a hedge race fixes the (prefill, decode) pair;
            // the loser's still-queued copy is cancelled below (an
            // in-flight copy is discarded at its own completion instead).
            let mut loser = None;
            if let Some((hp, hd)) = pend.hedge.take() {
                if hp == i {
                    core.recovery.hedges_won += 1;
                    loser = Some(pend.prefill);
                    pend.prefill = hp;
                    pend.decode = hd;
                } else {
                    loser = Some(hp);
                }
            }
            if job.remaining != 0 {
                pend.kv_launched = true;
            }
            (rid, newly_first, pend.decode, loser)
        };
        trace(
            core,
            TraceKind::PrefillEnd {
                request: rid,
                role: Role::Prefill,
                replica: i,
            },
        );
        if newly_first {
            trace(core, TraceKind::FirstToken { request: rid });
        }
        if let Some(li) = loser {
            if li != i {
                s.prefills[li].queue.remove(job.key);
            }
        }
        if job.remaining == 0 {
            // Single-token output: the prefill already produced it.
            finish(core, job.key, now, SimDuration::ZERO)?;
            continue;
        }
        split_launch_transfer(
            core,
            s,
            Transfer {
                from: i,
                to: jdec,
                job,
                attempt: 1,
            },
            SimDuration::ZERO,
        );
    }
    // Return the emptied batch buffer to the pool for the next launch.
    s.prefills[i].spare_batches.push(batch);
    split_maybe_start_prefill(core, s, i);
    Ok(())
}

/// Representative endpoints and total layer count for a KV route, used by
/// the fabric's one-flow-per-transfer approximation: the flow runs between
/// the endpoints of the leg carrying the most layers (first wins on ties,
/// for determinism) and carries the whole route's bytes.
fn flow_endpoints(legs: &[KvRouteLeg]) -> (GpuId, GpuId, usize) {
    let mut best: Option<&KvRouteLeg> = None;
    let mut total = 0usize;
    for leg in legs {
        total += leg.layers;
        if best.map(|b| leg.layers > b.layers).unwrap_or(true) {
            best = Some(leg);
        }
    }
    match best {
        Some(leg) => (leg.from, leg.to, total),
        None => (GpuId(0), GpuId(0), 0),
    }
}

/// Schedules (or re-schedules) a KV transfer after an optional backoff
/// delay and registers it in the request's slab entry. Three paths:
///
/// * fabric on — the transfer becomes a flow in the `ts-net` fabric
///   (immediately, or via a [`EventKind::KvFlowLaunch`] event after the
///   backoff);
/// * legacy, modeled — the transfer serializes on the sender's uplink;
/// * zero duration (transfer modeling off, or a degenerate route) — the
///   transfer completes after the delay alone, without queuing on (or
///   advancing) the sender's uplink.
fn split_launch_transfer(
    core: &mut Core,
    s: &mut SplitState,
    transfer: Transfer,
    delay: SimDuration,
) {
    let key = transfer.job.key;
    let now = core.now;
    let Some(st) = core.reqs.get_mut(key) else {
        return; // resolved while a retry or parked re-dispatch was pending
    };
    let rid = st.req.id;
    // First attempt stamps the enqueue time; retries keep the original.
    let mut first_attempt = false;
    if st.pend.kv_enqueued_at.is_none() {
        st.pend.kv_enqueued_at = Some(now);
        first_attempt = true;
    }
    st.transfer = Some(transfer);
    if first_attempt && tracing(core) {
        // The byte count is sized like the fabric's flow (whole route,
        // configured wire precision); computed only under telemetry.
        let (_, _, layers) = s.flow_routes[transfer.from][transfer.to];
        let bytes = s
            .codec_for(s.prefill_model[transfer.from])
            .wire_bytes_layers(transfer.job.tokens, layers);
        trace(
            core,
            TraceKind::KvEnqueued {
                request: rid,
                from: transfer.from,
                to: transfer.to,
                bytes,
            },
        );
    }
    if s.fabric.is_some() {
        if delay == SimDuration::ZERO {
            split_start_flow(core, s, key);
        } else {
            core.queue.push(
                now + delay,
                EventKind::KvFlowLaunch {
                    request: key,
                    attempt: transfer.attempt,
                },
            );
        }
        return;
    }
    let mut dur = if core.cfg.model_kv_transfer {
        // Memoized per pair: everything but the token count is fixed.
        match s.kv_memo[transfer.from][transfer.to] {
            Some((tokens, wire)) if tokens == transfer.job.tokens => wire,
            _ => {
                let ratio = core.cfg.kv_precision.ratio_vs_f16();
                // Priced with the sending replica's model (the
                // default-model spec on single-model plans, where every
                // group carries ModelId(0)).
                let wire = kv_transfer_time(
                    core.cfg.spec_for(s.prefill_model[transfer.from]),
                    &s.routes[transfer.from][transfer.to],
                    transfer.job.tokens,
                    ratio,
                );
                s.kv_memo[transfer.from][transfer.to] = Some((transfer.job.tokens, wire));
                wire
            }
        }
    } else {
        SimDuration::ZERO
    };
    // Gray link fault: the legacy model stretches the wire time by the
    // pair's degradation factor (the fabric path applies it to link
    // capacities instead). Skipped at the healthy factor of exactly 1.
    let link_factor = s.link_factor[transfer.from][transfer.to];
    if link_factor != 1.0 {
        dur = dur.mul_f64(link_factor);
    }
    // A transfer that occupies the wire for zero time must not serialize on
    // the uplink — and, crucially, must not push `sender_free_at` out to
    // `now + delay`, which would make *modeled* transfers behind it queue
    // on a link nothing ever used.
    if dur == SimDuration::ZERO {
        let done = now + delay;
        if let Some(st) = core.reqs.get_mut(key) {
            st.pend.kv_wire_started_at = Some(done);
        }
        trace_at(
            core,
            done,
            TraceKind::KvWireStart {
                request: rid,
                attempt: transfer.attempt,
            },
        );
        core.queue.push(
            done,
            EventKind::KvTransferDone {
                replica: transfer.to,
                request: key,
                attempt: transfer.attempt,
            },
        );
        return;
    }
    // Serialize transfers on the sender's uplink; the sequence only
    // becomes admissible at the decode replica once its own KV transfer
    // completes (see split_on_transfer_done).
    let start = s.sender_free_at[transfer.from].max(now + delay);
    let done = start + dur;
    s.sender_free_at[transfer.from] = done;
    if let Some(st) = core.reqs.get_mut(key) {
        st.pend.kv_wire_started_at = Some(start);
    }
    trace_at(
        core,
        start,
        TraceKind::KvWireStart {
            request: rid,
            attempt: transfer.attempt,
        },
    );
    core.queue.push(
        done,
        EventKind::KvTransferDone {
            replica: transfer.to,
            request: key,
            attempt: transfer.attempt,
        },
    );
}

/// Starts the fabric flow for a registered transfer and schedules the
/// refreshed completion estimates of every active flow.
fn split_start_flow(core: &mut Core, s: &mut SplitState, key: SlabKey) {
    let Some(st) = core.reqs.get_mut(key) else {
        return; // dropped while the launch was in flight
    };
    let Some(t) = st.transfer else {
        return;
    };
    if s.fabric.is_none() {
        return;
    }
    let rid = st.req.id;
    st.pend.kv_wire_started_at = Some(core.now);
    let (from, to, layers) = s.flow_routes[t.from][t.to];
    let bytes = s
        .codec_for(s.prefill_model[t.from])
        .wire_bytes_layers(t.job.tokens, layers) as f64;
    trace(
        core,
        TraceKind::KvWireStart {
            request: rid,
            attempt: t.attempt,
        },
    );
    let now = core.now;
    let Some(fabric) = s.fabric.as_mut() else {
        unreachable!()
    };
    let estimates = fabric.start(key.as_u64(), from, to, bytes, now);
    schedule_flow_events(core, estimates);
}

/// Schedules a [`EventKind::KvFlowDone`] for each fabric estimate.
fn schedule_flow_events(core: &mut Core, estimates: Vec<FlowEstimate>) {
    for e in estimates {
        core.queue.push(
            e.done_at,
            EventKind::KvFlowDone {
                request: SlabKey::from_u64(e.key),
                epoch: e.epoch,
            },
        );
    }
}

/// A delayed (backed-off) flow launch fired; start the flow unless a newer
/// attempt superseded it.
fn split_on_flow_launch(core: &mut Core, s: &mut SplitState, request: SlabKey, attempt: u32) {
    let Some(t) = core.reqs.get(request).and_then(|st| st.transfer) else {
        return;
    };
    if t.attempt != attempt {
        return;
    }
    split_start_flow(core, s, request);
}

/// A fabric completion estimate matured: ask the fabric whether the flow
/// really drained (most estimates are stale — every fabric change
/// re-estimates all flows).
fn split_on_flow_done(
    core: &mut Core,
    s: &mut SplitState,
    request: SlabKey,
    epoch: u64,
) -> Result<()> {
    let Some(fabric) = s.fabric.as_mut() else {
        return Ok(());
    };
    match fabric.poll(request.as_u64(), epoch, core.now) {
        FlowPoll::Stale => Ok(()),
        FlowPoll::InFlight(e) => {
            schedule_flow_events(core, vec![e]);
            Ok(())
        }
        FlowPoll::Done(rest) => {
            schedule_flow_events(core, rest);
            split_deliver_transfer(core, s, request)
        }
    }
}

/// Kills every in-flight fabric flow crossing the (prefill, decode) link
/// that just faulted. Victims re-enter through the standard retry/backoff
/// path (or are dropped when recovery is off), matching the accounting of
/// the legacy completion-time check.
fn split_kill_link_flows(core: &mut Core, s: &mut SplitState, prefill: usize, decode: usize) {
    let Some(fabric) = s.fabric.as_ref() else {
        return;
    };
    let mut victims: Vec<(RequestId, SlabKey)> = core
        .reqs
        .iter()
        .filter_map(|(key, st)| {
            let t = st.transfer?;
            (t.from == prefill && t.to == decode && fabric.contains(key.as_u64()))
                .then_some((st.req.id, key))
        })
        .collect();
    victims.sort_unstable();
    for (rid, key) in victims {
        let now = core.now;
        let estimates = match s.fabric.as_mut() {
            Some(f) => f.cancel(key.as_u64(), now),
            None => unreachable!(),
        };
        schedule_flow_events(core, estimates);
        let Some(t) = core.reqs.get(key).and_then(|st| st.transfer) else {
            continue;
        };
        if !core.recovery_enabled {
            drop_request(core, key);
            continue;
        }
        let mut t = t;
        t.attempt += 1;
        if retry_budget_spent(core, key, t.attempt) {
            continue;
        }
        core.recovery.kv_transfer_retries += 1;
        trace(
            core,
            TraceKind::KvRetry {
                request: rid,
                attempt: t.attempt,
            },
        );
        let delay = retry_backoff(core, t.attempt);
        split_launch_transfer(core, s, t, delay);
    }
}

fn split_on_transfer_done(
    core: &mut Core,
    s: &mut SplitState,
    replica: usize,
    request: SlabKey,
    attempt: u32,
) -> Result<()> {
    let Some(t) = core.reqs.get(request).and_then(|st| st.transfer) else {
        return Ok(()); // superseded or dropped
    };
    if t.attempt != attempt || t.to != replica {
        return Ok(()); // stale attempt
    }
    split_deliver_transfer(core, s, request)
}

/// The bytes of `request`'s KV transfer arrived (legacy or fabric path):
/// retry if the link died underneath it, re-target if the decode replica
/// died, otherwise hand the sequence to the decode replica.
fn split_deliver_transfer(core: &mut Core, s: &mut SplitState, key: SlabKey) -> Result<()> {
    let Some(t) = core.reqs.get(key).and_then(|st| st.transfer) else {
        return Ok(());
    };
    if s.link_down[t.from][t.to] {
        // The link faulted mid-transfer. With recovery the sender retries
        // after a capped exponential backoff; without, the request is
        // lost.
        if !core.recovery_enabled {
            drop_request(core, key);
            return Ok(());
        }
        let mut t = t;
        t.attempt += 1;
        if retry_budget_spent(core, key, t.attempt) {
            return Ok(());
        }
        core.recovery.kv_transfer_retries += 1;
        let rid = core.reqs[key].req.id;
        trace(
            core,
            TraceKind::KvRetry {
                request: rid,
                attempt: t.attempt,
            },
        );
        let delay = retry_backoff(core, t.attempt);
        split_launch_transfer(core, s, t, delay);
        return Ok(());
    }
    if !s.decodes[t.to].is_alive() {
        // Target died while the bytes were in flight.
        if let Some(st) = core.reqs.get_mut(key) {
            st.transfer = None;
        }
        if !core.recovery_enabled {
            drop_request(core, key);
            return Ok(());
        }
        split_redispatch_transfer(core, s, t);
        return Ok(());
    }
    // Delivered.
    let now = core.now;
    let st = core
        .reqs
        .get_mut(key)
        .expect("delivered transfer without request state");
    st.transfer = None;
    st.pend.kv_done_at = Some(now);
    let rid = st.req.id;
    trace(core, TraceKind::KvDone { request: rid });
    // Step boundaries owed before this instant must land before the
    // admission pass reads KV occupancy and batch size.
    split_catch_up_decode(core, s, t.to);
    s.decodes[t.to].batch.waiting.push_back(WaitingSeq {
        key,
        tokens: t.job.tokens,
        remaining: t.job.remaining,
        resume: t.job.resume,
    });
    let admitted = split_admit_waiting(core, s, t.to);
    split_kick_decode(core, s, t.to, admitted);
    Ok(())
}

/// Re-targets a transfer whose decode replica died: picks the live replica
/// with the most free KV memory (lowest index breaks ties), or parks the
/// transfer until one comes back. Multi-model plans only consider decode
/// replicas serving the sender's model — KV caches are model-specific.
fn split_redispatch_transfer(core: &mut Core, s: &mut SplitState, mut t: Transfer) {
    // The free-KV scan reads every decode batch; their owed boundaries
    // must land first.
    split_catch_up_all_decodes(core, s);
    let model = (!s.model_routes.is_empty()).then(|| s.prefill_model[t.from]);
    let target = s
        .decodes
        .iter()
        .enumerate()
        .filter(|(j, d)| d.is_alive() && (model.is_none() || model == Some(s.decode_model[*j])))
        .max_by_key(|(j, d)| {
            (
                d.batch.kv_capacity.saturating_sub(d.batch.kv_used),
                std::cmp::Reverse(*j),
            )
        })
        .map(|(j, _)| j);
    let Some(j2) = target else {
        s.parked.push(t);
        return;
    };
    let Some(st) = core.reqs.get_mut(t.job.key) else {
        return; // resolved while parked
    };
    st.pend.decode = j2;
    let rid = st.req.id;
    t.to = j2;
    t.attempt += 1;
    core.recovery.kv_transfer_retries += 1;
    trace(
        core,
        TraceKind::KvRetry {
            request: rid,
            attempt: t.attempt,
        },
    );
    split_launch_transfer(core, s, t, SimDuration::ZERO);
}

// --- decode planning / coalescing ----------------------------------------

/// Admits waiting sequences on decode replica `j` and applies the
/// outcomes. Returns whether anything was admitted (a grown batch obliges
/// a re-plan under coalescing).
fn split_admit_waiting(core: &mut Core, s: &mut SplitState, j: usize) -> bool {
    let d = &mut s.decodes[j];
    if !d.is_alive() {
        return false;
    }
    let outcomes = {
        let reqs = &core.reqs;
        d.batch.admit(&d.cost, &core.cfg, core.now, |key| {
            reqs.get(key).and_then(|st| st.pend.first_token_at)
        })
    };
    let admitted = apply_admit_outcomes(core, outcomes, Role::Decode, j);
    trace(
        core,
        TraceKind::BatchOccupancy {
            role: Role::Decode,
            replica: j,
            active: s.decodes[j].batch.active.len(),
        },
    );
    admitted
}

/// Starts or extends decode work on replica `j` after its batch state
/// changed. With a plan already in flight, a grown batch forces a re-plan
/// under coalescing (the per-step compatibility path just waits for the
/// in-flight step, exactly like the old `stepping` guard); with no plan
/// and a non-empty batch, a fresh run is planned.
fn split_kick_decode(core: &mut Core, s: &mut SplitState, j: usize, admitted: bool) {
    let d = &s.decodes[j];
    if !d.is_alive() || d.batch.active.is_empty() {
        return;
    }
    if d.plan.is_some() {
        if admitted && coalescing_active(core) {
            split_replan_decode(core, s, j);
        }
        return;
    }
    split_plan_decode(core, s, j);
}

/// Picks the pricing source for a decode run on `d` at `batch` size: the
/// memoized single-stage series when it matches (replicas revisit the
/// same few batch sizes all trace long), a freshly built — and memoized —
/// series when `hoist` says more than one boundary needs pricing, or
/// neither, in which case the caller prices boundaries directly through
/// `decode_step_latency`. All three sources produce bit-identical
/// boundary times (`decode_step_series_is_bit_identical` pins this).
fn decode_pricing(
    d: &mut DecodeExecutor,
    batch: u64,
    hoist: bool,
) -> (Option<DecodeStageSeries>, Option<DecodeStepSeries>) {
    if let Some((b, stage)) = d.step_series_memo {
        if b == batch {
            return (Some(stage), None);
        }
    }
    if !hoist {
        return (None, None);
    }
    let built = d.cost.decode_step_series(batch);
    match built.single_stage() {
        Some(stage) => {
            d.step_series_memo = Some((batch, stage));
            (Some(stage), None)
        }
        None => (None, Some(built)),
    }
}

/// Prices `count` consecutive decode boundaries starting from `at` with
/// integer average context `ctx`, appending each boundary time to
/// `steps`, and returns the final boundary. The pricing source and the
/// straggler check are hoisted out of the loop so the common case — a
/// single-stage replica at full speed — runs a tight monomorphic loop
/// with no per-boundary branching. Every specialization performs the
/// exact same float operations per boundary, so the times stay
/// bit-identical across paths.
#[allow(clippy::too_many_arguments)]
fn price_boundaries(
    steps: &mut VecDeque<SimTime>,
    mut at: SimTime,
    mut ctx: u64,
    count: u64,
    single: Option<DecodeStageSeries>,
    series: Option<&DecodeStepSeries>,
    cost: &ReplicaCostModel,
    batch: u64,
    slow: f64,
) -> SimTime {
    if let Some(stage) = single {
        if slow == 1.0 {
            // Unrolled 4-wide: the four step times are independent (only
            // the running boundary `at` is serial, and that chain is
            // integer adds), so the per-step float divisions pipeline
            // instead of serializing. Each boundary's value is computed
            // by exactly the same operations as the 1-wide loop.
            //
            // When the memory roofline provably dominates over the whole
            // context range (the usual thin-batch decode regime —
            // `mem_bound_over` is a monotonicity argument, see its doc),
            // each boundary needs only the memory-side division; the
            // compute side is certified once for the plan.
            if count > 0 && stage.mem_bound_over(ctx, ctx + (count - 1)) {
                let mut rem = count;
                while rem >= 4 {
                    let l0 = stage.step_time_mem(ctx);
                    let l1 = stage.step_time_mem(ctx + 1);
                    let l2 = stage.step_time_mem(ctx + 2);
                    let l3 = stage.step_time_mem(ctx + 3);
                    at += l0;
                    steps.push_back(at);
                    at += l1;
                    steps.push_back(at);
                    at += l2;
                    steps.push_back(at);
                    at += l3;
                    steps.push_back(at);
                    ctx += 4;
                    rem -= 4;
                }
                for _ in 0..rem {
                    at += stage.step_time_mem(ctx);
                    steps.push_back(at);
                    ctx += 1;
                }
                return at;
            }
            let mut rem = count;
            while rem >= 4 {
                let l0 = stage.step_time(ctx);
                let l1 = stage.step_time(ctx + 1);
                let l2 = stage.step_time(ctx + 2);
                let l3 = stage.step_time(ctx + 3);
                at += l0;
                steps.push_back(at);
                at += l1;
                steps.push_back(at);
                at += l2;
                steps.push_back(at);
                at += l3;
                steps.push_back(at);
                ctx += 4;
                rem -= 4;
            }
            for _ in 0..rem {
                at += stage.step_time(ctx);
                steps.push_back(at);
                ctx += 1;
            }
        } else {
            for _ in 0..count {
                at += stage.step_time(ctx).mul_f64(slow);
                steps.push_back(at);
                ctx += 1;
            }
        }
        return at;
    }
    for _ in 0..count {
        let mut latency = if let Some(series) = series {
            series.latency(ctx)
        } else {
            cost.decode_step_latency(batch, ctx)
        };
        if slow != 1.0 {
            latency = latency.mul_f64(slow);
        }
        at += latency;
        steps.push_back(at);
        ctx += 1;
    }
    at
}

/// Plans a decode run for replica `j` starting now and schedules its
/// run-end event. Under coalescing the run extends to the earliest finish
/// boundary (the batch is constant until then, so every boundary is
/// priced exactly as the per-step loop would: the integer average context
/// grows by exactly 1 per step); the compatibility path plans one step.
fn split_plan_decode(core: &mut Core, s: &mut SplitState, j: usize) {
    let d = &mut s.decodes[j];
    debug_assert!(d.plan.is_none(), "planning over a live plan");
    let batch = d.batch.active.len() as u64;
    let steps_to_finish = if coalescing_active(core) {
        d.batch
            .active
            .iter()
            .map(|a| a.remaining)
            .min()
            .unwrap_or(1)
            .max(1)
    } else {
        1
    };
    let slow = d.slow_factor;
    let (single, series) = decode_pricing(d, batch, steps_to_finish > 1);
    let mut steps = std::mem::take(&mut d.spare_steps);
    steps.clear();
    steps.reserve(steps_to_finish as usize);
    let at = price_boundaries(
        &mut steps,
        core.now,
        d.batch.avg_context(),
        steps_to_finish as u64,
        single,
        series.as_ref(),
        &d.cost,
        batch,
        slow,
    );
    let token = core.queue.push_cancellable(
        at,
        EventKind::DecodeStepDone {
            replica: j,
            epoch: d.epoch(),
        },
    );
    d.plan = Some(DecodePlan {
        steps,
        prev_boundary: core.now,
        token,
    });
}

/// Re-plans replica `j`'s coalesced run after its batch grew or its speed
/// changed. The in-progress step's end boundary was committed when that
/// step began (the per-step loop fixed its latency then, and newly
/// admitted sequences receive their first token at it, because the
/// per-step advance covers the whole batch at a step's end) and is
/// carried verbatim; boundaries after it are re-priced against the new
/// batch and straggler factor. The scheduled event moves to the new final
/// boundary, keeping its original `(seq, pushed_at)` stamps.
fn split_replan_decode(core: &mut Core, s: &mut SplitState, j: usize) {
    let d = &mut s.decodes[j];
    let Some(mut old) = d.plan.take() else {
        return;
    };
    let first = *old.steps.front().expect("plan with no boundaries");
    debug_assert!(first >= core.now, "carried boundary in the past");
    let batch = d.batch.active.len() as u64;
    let steps_to_finish = d
        .batch
        .active
        .iter()
        .map(|a| a.remaining)
        .min()
        .unwrap_or(1)
        .max(1);
    let slow = d.slow_factor;
    // The carried boundary is free; re-pricing starts at the second.
    let (single, series) = decode_pricing(d, batch, steps_to_finish > 2);
    // Reuse the old plan's buffer: its front IS the carried boundary, so
    // truncating to one entry both keeps it and avoids a fresh allocation.
    let mut steps = std::mem::take(&mut old.steps);
    steps.truncate(1);
    debug_assert_eq!(steps.front(), Some(&first));
    steps.reserve(steps_to_finish as usize);
    // Context as of the carried boundary's end: the whole (new) batch
    // gains one token there.
    let at = price_boundaries(
        &mut steps,
        first,
        d.batch.avg_context() + 1,
        (steps_to_finish - 1) as u64,
        single,
        series.as_ref(),
        &d.cost,
        batch,
        slow,
    );
    let kind = EventKind::DecodeStepDone {
        replica: j,
        epoch: d.epoch(),
    };
    let token = match core.queue.reschedule(old.token, at, kind) {
        Some(tok) => tok,
        None => {
            // The run-end event was already popped and is being held
            // behind a same-instant rival (this re-plan runs inside that
            // rival's inline dispatch): re-queue it with its original
            // stamps so it pops again in the right order.
            match core.take_held_decode(j) {
                Some((seq, pushed_at)) => core.queue.reinsert(at, kind, seq, pushed_at),
                None => core.queue.push_cancellable(at, kind),
            }
        }
    };
    d.plan = Some(DecodePlan {
        steps,
        prev_boundary: old.prev_boundary,
        token,
    });
}

/// Cancels replica `j`'s scheduled run-end event and clears the plan,
/// ahead of a kill/revive (both of which reset the plan without touching
/// the queue). The per-step loop always had exactly one decode event in
/// flight — the in-progress step's end — and popped it (advancing `now`
/// past it) even once stale; its fire time folds into the phantom horizon
/// so the reported makespan stays identical.
fn split_cancel_decode_plan(core: &mut Core, s: &mut SplitState, j: usize) {
    let Some(plan) = s.decodes[j].plan.as_ref() else {
        return;
    };
    let in_progress_end = *plan.steps.front().expect("plan with no boundaries");
    core.phantom_horizon = core.phantom_horizon.max(in_progress_end);
    core.queue.cancel(plan.token);
    s.decodes[j].plan = None;
}

/// Materializes every plan boundary of replica `j` that has elapsed:
/// boundaries strictly before `now`, plus a boundary exactly at `now`
/// when the event being dispatched was pushed after that step began (the
/// per-step loop would have popped the step's own event first — smaller
/// sequence number). The final boundary never catches up here; it is the
/// scheduled event's fire time and is handled by
/// [`Driver::on_decode_finish`].
fn split_catch_up_decode(core: &mut Core, s: &mut SplitState, j: usize) {
    let now = core.now;
    let Some(plan) = s.decodes[j].plan.as_ref() else {
        return;
    };
    let mut m = 0usize;
    while m + 1 < plan.steps.len() && plan.steps[m] < now {
        m += 1;
    }
    if m + 1 < plan.steps.len() && plan.steps[m] == now {
        let prev = if m == 0 {
            plan.prev_boundary
        } else {
            plan.steps[m - 1]
        };
        if core.event_pushed_at > prev {
            m += 1;
        }
    }
    if m > 0 {
        split_materialize(core, s, j, m);
    }
}

/// Catches up every decode replica (paths that scan cross-replica batch
/// state: transfer re-dispatch, hedging probes).
fn split_catch_up_all_decodes(core: &mut Core, s: &mut SplitState) {
    for j in 0..s.decodes.len() {
        split_catch_up_decode(core, s, j);
    }
}

/// Materializes the front `m` boundaries of replica `j`'s plan. With
/// telemetry off this is one arithmetic pass — batch membership is
/// constant across a plan, so per sequence only the first gap differs and
/// the remaining gaps share one maximum; with telemetry on each boundary
/// replays individually to emit its retroactive trace events.
fn split_materialize(core: &mut Core, s: &mut SplitState, j: usize, m: usize) {
    if !observing(core) {
        let d = &mut s.decodes[j];
        let plan = d.plan.as_mut().expect("materialize without plan");
        debug_assert!(m < plan.steps.len(), "materializing the final boundary");
        let first = plan.steps[0];
        let mut shared_max = SimDuration::ZERO;
        for i in 1..m {
            shared_max = shared_max.max(plan.steps[i].saturating_since(plan.steps[i - 1]));
        }
        let last = plan.steps[m - 1];
        let mk = m as u64;
        let batch = d.batch.active.len() as u64;
        for a in &mut d.batch.active {
            debug_assert!(
                u64::from(a.remaining) > mk,
                "an intermediate coalesced boundary must not finish a sequence"
            );
            a.context += mk;
            a.remaining -= m as u32;
            let first_gap = first.saturating_since(a.last_token_at);
            a.max_gap = a.max_gap.max(first_gap).max(shared_max);
            a.last_token_at = last;
        }
        d.batch.kv_used += batch * mk;
        for _ in 0..m {
            let b = plan.steps.pop_front().expect("boundary count");
            plan.prev_boundary = b;
        }
    } else {
        for _ in 0..m {
            let b = {
                let plan = s.decodes[j]
                    .plan
                    .as_mut()
                    .expect("materialize without plan");
                debug_assert!(plan.steps.len() > 1, "materializing the final boundary");
                let b = plan.steps.pop_front().expect("boundary count");
                plan.prev_boundary = b;
                b
            };
            split_materialize_boundary(core, s, j, b);
        }
    }
}

/// Retroactively replays one coalesced intermediate step that ended at
/// `at`, emitting the trace events the per-step loop would have: the step
/// record, the batch update, then the (unchanged) occupancy the no-op
/// admission pass reported.
fn split_materialize_boundary(core: &mut Core, s: &mut SplitState, j: usize, at: SimTime) {
    let d = &mut s.decodes[j];
    trace_at(
        core,
        at,
        TraceKind::DecodeStep {
            role: Role::Decode,
            replica: j,
            batch: d.batch.active.len(),
        },
    );
    d.batch.materialize_step(at);
    trace_at(
        core,
        at,
        TraceKind::BatchOccupancy {
            role: Role::Decode,
            replica: j,
            active: d.batch.active.len(),
        },
    );
}

/// The virtual push time of a plan's scheduled run-end event: the per-step
/// loop would have pushed the final step's event when the previous step
/// ended — the penultimate boundary, or the in-progress step's start for
/// a single-step plan.
fn plan_vpush(plan: &DecodePlan) -> SimTime {
    let n = plan.steps.len();
    if n >= 2 {
        plan.steps[n - 2]
    } else {
        plan.prev_boundary
    }
}

/// Discards a held (deferred) decode-finish stamp for replica `j`.
fn drop_held_decode(core: &mut Core, j: usize, seq: u64) {
    core.held_decode.retain(|h| !(h.0 == j && h.1 == seq));
}

impl Driver {
    /// Handles a decode run-end event for `replica`. The coalesced event's
    /// heap stamps date from plan creation, but the per-step loop would
    /// have pushed the final step's event at the penultimate boundary (the
    /// plan's *virtual* push time) — so any same-instant rival the
    /// per-step loop would have popped first is dispatched first, with
    /// this finish held. A held finish can be re-queued (a rival re-plans
    /// this replica) or invalidated (a rival kills/revives it); otherwise
    /// the finish boundary runs: materialize intermediates, advance the
    /// batch, record finishes, admit, and plan the next run.
    fn on_decode_finish(&mut self, replica: usize, ev: Event) -> Result<()> {
        let seq = ev.seq;
        loop {
            let vpush = {
                let Topology::Split(s) = &self.topo else {
                    return Err(Error::Simulation(
                        "DecodeStepDone event in colocated engine".into(),
                    ));
                };
                let Some(plan) = s.decodes[replica].plan.as_ref() else {
                    // A rival dispatched below killed or revived the
                    // replica, cancelling the plan: this pop is stale.
                    drop_held_decode(&mut self.core, replica, seq);
                    return Ok(());
                };
                if ev.token() != Some(plan.token) {
                    // A rival's re-plan consumed the held stamp and
                    // re-queued the run-end event: this pop is obsolete.
                    drop_held_decode(&mut self.core, replica, seq);
                    return Ok(());
                }
                plan_vpush(plan)
            };
            if ev.pushed_at == vpush {
                // The stamps are real (a per-step-schedule push): the heap
                // already ordered this event correctly.
                break;
            }
            let Some(rival) = self.qualifying_rival(replica, vpush) else {
                break;
            };
            if !self
                .core
                .held_decode
                .iter()
                .any(|h| h.0 == replica && h.1 == seq)
            {
                self.core.held_decode.push((replica, seq, ev.pushed_at));
            }
            self.dispatch_event(rival)?;
            if !self
                .core
                .held_decode
                .iter()
                .any(|h| h.0 == replica && h.1 == seq)
            {
                return Ok(()); // consumed: re-queued by a rival's re-plan
            }
        }
        drop_held_decode(&mut self.core, replica, seq);
        let Driver { core, topo } = self;
        let Topology::Split(s) = topo else {
            unreachable!()
        };
        let pending = s.decodes[replica]
            .plan
            .as_ref()
            .map_or(0, |p| p.steps.len());
        if pending > 1 {
            split_materialize(core, s, replica, pending - 1);
        }
        let plan = s.decodes[replica].plan.take().expect("checked above");
        debug_assert_eq!(plan.steps.len(), 1, "intermediates drained");
        debug_assert_eq!(
            plan.steps.front(),
            Some(&core.now),
            "finish boundary mismatch"
        );
        // Recycle the retired plan's buffer for the next planning pass.
        s.decodes[replica].spare_steps = plan.steps;
        if core.cfg.straggler_threshold.is_some() {
            split_observe_straggler(core, s, false, replica);
        }
        trace(
            core,
            TraceKind::DecodeStep {
                role: Role::Decode,
                replica,
                batch: s.decodes[replica].batch.active.len(),
            },
        );
        let finished = s.decodes[replica].batch.advance(core.now);
        for (key, gap) in finished {
            finish(core, key, core.now, gap)?;
        }
        split_admit_waiting(core, s, replica);
        split_kick_decode(core, s, replica, false);
        Ok(())
    }

    /// The next queued event, popped, when it shares this instant with the
    /// decode finish being dispatched and the per-step loop would have
    /// fired it first: its effective push time (its own stamp, or the
    /// virtual push time of another replica's live plan) is no later than
    /// `vpush`. Deferring to an epoch-stale rival is harmless — its
    /// dispatch is a no-op.
    fn qualifying_rival(&mut self, replica: usize, vpush: SimTime) -> Option<Event> {
        let now = self.core.now;
        debug_assert!(
            self.core
                .arrivals
                .get(self.core.next_arrival)
                .is_none_or(|r| r.arrival > now),
            "same-instant arrivals drain before queued events"
        );
        let _ = replica;
        let head = *self.core.queue.peek()?;
        if head.at != now {
            return None;
        }
        let eff = match head.kind {
            EventKind::DecodeStepDone { replica: r2, .. } => {
                let Topology::Split(s) = &self.topo else {
                    return None;
                };
                match s.decodes[r2].plan.as_ref() {
                    Some(p) if head.token() == Some(p.token) => plan_vpush(p),
                    _ => head.pushed_at,
                }
            }
            _ => head.pushed_at,
        };
        if eff <= vpush {
            self.core.queue.pop()
        } else {
            None
        }
    }
}

// --- routing masks ---------------------------------------------------------

/// Whether the (prefill `i`, decode `j`) pair is routable under current
/// liveness beliefs and gray-failure masking (flaky-heartbeat false
/// positives and straggler quarantine). `extra` additionally masks one
/// host — used to test whether a prospective quarantine would leave a
/// router empty, without committing it.
fn split_pair_live(core: &Core, s: &SplitState, i: usize, j: usize, extra: Option<usize>) -> bool {
    let p = core.gray.prefill_hosts;
    let masked = |h: usize| core.gray.masked(h) || extra == Some(h);
    !s.believed_dead_prefill[i] && !s.believed_dead_decode[j] && !masked(i) && !masked(p + j)
}

/// The split routing mask over the global pair space.
fn split_router_mask(core: &Core, s: &SplitState, extra: Option<usize>) -> Vec<bool> {
    s.pair_coords
        .iter()
        .map(|&(i, j)| split_pair_live(core, s, i, j, extra))
        .collect()
}

/// Re-derives the routing masks from believed replica liveness: the global
/// router always, plus every tenant's own router on multi-model plans.
fn split_refresh_router(core: &mut Core, s: &mut SplitState) {
    let mask = split_router_mask(core, s, None);
    core.router.apply_mask(&mask);
    for ri in 0..s.model_routes.len() {
        let mask: Vec<bool> = s.model_routes[ri]
            .pairs
            .iter()
            .map(|&(i, j)| split_pair_live(core, s, i, j, None))
            .collect();
        s.model_routes[ri].router.apply_mask(&mask);
    }
}

// --- straggler detection & hedging ----------------------------------------

/// Feeds one completed iteration's observed/expected time ratio into the
/// per-host EWMA. Returns `true` when the detector trips (enough samples
/// and the EWMA at or above the threshold); the caller still applies the
/// never-empty-router guard before quarantining.
fn straggler_observe(core: &mut Core, host: usize, ratio: f64) -> bool {
    let Some(threshold) = core.cfg.straggler_threshold else {
        return false;
    };
    if core.gray.quarantined[host] {
        return false;
    }
    const ALPHA: f64 = 0.5;
    let g = &mut core.gray;
    g.slow_ewma[host] = if g.slow_samples[host] == 0 {
        ratio
    } else {
        ALPHA * ratio + (1.0 - ALPHA) * g.slow_ewma[host]
    };
    g.slow_samples[host] = g.slow_samples[host].saturating_add(1);
    g.slow_samples[host] >= core.cfg.straggler_min_samples && g.slow_ewma[host] >= threshold
}

/// Quarantines `host`: masks it out of routing, counts it, and schedules
/// the readmission probe at `now + straggler_readmit_after`. The caller
/// refreshes the router.
fn quarantine_host(core: &mut Core, host: usize, role: Role, replica: usize, prefill: bool) {
    core.gray.quarantined[host] = true;
    let until = core.now + core.cfg.straggler_readmit_after;
    core.gray.quarantine_until[host] = Some(until);
    core.recovery.quarantines += 1;
    trace(core, TraceKind::Quarantined { role, replica });
    core.queue
        .push(until, EventKind::ReadmitProbe { prefill, replica });
}

/// Samples the straggler detector at a split-replica batch completion and
/// quarantines the replica when it trips — unless doing so would leave the
/// router with no live pair, or empty any tenant's (model, role) replica
/// set on a multi-model plan (a degraded replica still beats no replica).
fn split_observe_straggler(core: &mut Core, s: &mut SplitState, prefill: bool, idx: usize) {
    let (host, ratio) = if prefill {
        (idx, s.prefills[idx].slow_factor)
    } else {
        (core.gray.prefill_hosts + idx, s.decodes[idx].slow_factor)
    };
    if !straggler_observe(core, host, ratio) {
        return;
    }
    let mask = split_router_mask(core, s, Some(host));
    if !mask.iter().any(|&m| m) {
        return;
    }
    if s.model_routes.iter().any(|r| {
        !r.pairs
            .iter()
            .any(|&(i, j)| split_pair_live(core, s, i, j, Some(host)))
    }) {
        return;
    }
    let role = if prefill { Role::Prefill } else { Role::Decode };
    quarantine_host(core, host, role, idx, prefill);
    split_refresh_router(core, s);
}

/// The colocated arm of [`split_observe_straggler`].
fn colo_observe_straggler(core: &mut Core, c: &ColoState, ri: usize) {
    let ratio = c.replicas[ri].slow_factor;
    if !straggler_observe(core, ri, ratio) {
        return;
    }
    let mask = colo_router_mask(core, c, Some(ri));
    if !mask.iter().any(|&m| m) {
        return;
    }
    quarantine_host(core, ri, Role::Colocated, ri, true);
    colo_refresh_router(core, c);
}

/// The hedge timer for `request` matured. If the request is still waiting
/// on prefill, launch a duplicate prefill on an alternate pair
/// (first completion wins); if its KV transfer is stuck in flight, cancel
/// and re-send it. No-op when the request already delivered its KV,
/// finished, or was hedged once before.
fn split_on_hedge_check(core: &mut Core, s: &mut SplitState, request: SlabKey) {
    let Some(st) = core.reqs.get(request) else {
        return; // finished, shed or dropped
    };
    let p = &st.pend;
    if p.kv_done_at.is_some() || p.hedge.is_some() {
        return;
    }
    if hedge_suppressed(core) {
        return; // SLO budget not burning: keep the duplicate-work budget
    }
    if p.kv_launched {
        split_hedge_transfer(core, s, request);
    } else {
        split_hedge_prefill(core, s, request);
    }
}

/// Launches a duplicate prefill for a stuck request on an alternate
/// (prefill, decode) pair drawn from the router. The duplicate carries the
/// same work unit (a re-prefill covers more than the prompt). Ties are
/// broken deterministically: route draws advance the stride router in its
/// usual order, and the first live pair with a *different* prefill replica
/// wins.
fn split_hedge_prefill(core: &mut Core, s: &mut SplitState, request: SlabKey) {
    let Some(st) = core.reqs.get(request) else {
        return;
    };
    let primary = st.pend.prefill;
    let rid = st.req.id;
    let model = st.req.model;
    let job = s.prefills[primary]
        .queue
        .queue
        .iter()
        .find(|j| j.key == request)
        .copied()
        .or_else(|| {
            s.prefills[primary]
                .in_flight
                .iter()
                .flatten()
                .find(|j| j.key == request)
                .copied()
        });
    let Some(job) = job else {
        return; // a fault moved it; the requeue already acted as a retry
    };
    // Multi-model plans draw the alternate from the request's own tenant
    // router, so a hedge never lands on another model's replicas.
    let route = s.model_routes.iter().position(|r| r.model == model);
    let mut alt = None;
    if let Some(ri) = route {
        for _ in 0..s.model_routes[ri].pairs.len() {
            if s.model_routes[ri].router.num_enabled() == 0 {
                break;
            }
            let k = s.model_routes[ri].router.next();
            let (i, j) = s.model_routes[ri].pairs[k];
            if i != primary && s.prefills[i].is_alive() && !s.believed_dead_prefill[i] {
                alt = Some((i, j));
                break;
            }
        }
    } else {
        for _ in 0..s.pair_coords.len() {
            if core.router.num_enabled() == 0 {
                break;
            }
            let k = core.router.next();
            let (i, j) = s.pair_coords[k];
            if i != primary && s.prefills[i].is_alive() && !s.believed_dead_prefill[i] {
                alt = Some((i, j));
                break;
            }
        }
    }
    let Some((hi, hj)) = alt else {
        return; // no live alternative prefill replica
    };
    if let Some(st) = core.reqs.get_mut(request) {
        st.pend.hedge = Some((hi, hj));
    }
    core.recovery.hedges_launched += 1;
    trace(
        core,
        TraceKind::HedgeLaunched {
            request: rid,
            role: Role::Prefill,
            replica: hi,
        },
    );
    s.prefills[hi].queue.enqueue(job);
    split_maybe_start_prefill(core, s, hi);
}

/// Cancels a stuck KV transfer and re-sends it (attempt + 1) to the live
/// decode replica with the most free KV memory — possibly the same one.
/// The superseded attempt's completion goes stale via its attempt number,
/// so a duplicate delivery is impossible.
fn split_hedge_transfer(core: &mut Core, s: &mut SplitState, request: SlabKey) {
    let Some(t) = core.reqs.get(request).and_then(|st| st.transfer) else {
        return; // completion already delivered
    };
    if let Some(f) = s.fabric.as_mut() {
        if f.contains(request.as_u64()) {
            let estimates = f.cancel(request.as_u64(), core.now);
            schedule_flow_events(core, estimates);
        }
    }
    // Free-KV capacity is read at `now`, so every coalesced batch must be
    // materialized up to `now` first.
    split_catch_up_all_decodes(core, s);
    let mut t = t;
    t.attempt += 1;
    // Mirror the death-re-dispatch target policy: most free KV, ties to
    // the lowest index — restricted to the sender's model on multi-model
    // plans.
    let model = (!s.model_routes.is_empty()).then(|| s.prefill_model[t.from]);
    if let Some(j2) = s
        .decodes
        .iter()
        .enumerate()
        .filter(|(j, d)| d.is_alive() && (model.is_none() || model == Some(s.decode_model[*j])))
        .max_by_key(|(j, d)| {
            (
                d.batch.kv_capacity.saturating_sub(d.batch.kv_used),
                std::cmp::Reverse(*j),
            )
        })
        .map(|(j, _)| j)
    {
        t.to = j2;
    }
    let rid = if let Some(st) = core.reqs.get_mut(request) {
        st.pend.decode = t.to;
        st.pend.hedge = Some((t.from, t.to));
        st.req.id
    } else {
        return;
    };
    core.recovery.hedges_launched += 1;
    trace(
        core,
        TraceKind::HedgeLaunched {
            request: rid,
            role: Role::Decode,
            replica: t.to,
        },
    );
    split_launch_transfer(core, s, t, SimDuration::ZERO);
}

// --- colocated-topology handlers -----------------------------------------

fn colo_maybe_start_work(core: &mut Core, c: &mut ColoState, ri: usize) {
    // Admission runs even while the engine is busy: decode slots free up
    // as sequences finish regardless of what work item is in flight.
    {
        let r = &mut c.replicas[ri];
        if !r.is_alive() {
            return;
        }
        let outcomes = {
            let reqs = &core.reqs;
            r.batch.admit(&r.cost, &core.cfg, core.now, |key| {
                reqs.get(key).and_then(|st| st.pend.first_token_at)
            })
        };
        apply_admit_outcomes(core, outcomes, Role::Colocated, ri);
    }
    trace(
        core,
        TraceKind::BatchOccupancy {
            role: Role::Colocated,
            replica: ri,
            active: c.replicas[ri].batch.active.len(),
        },
    );
    let budget = core.cfg.max_prefill_batch_tokens;
    let r = &mut c.replicas[ri];
    if r.current.is_some() {
        return;
    }
    let has_prefill = !r.prefill.is_empty();
    let has_decode = !r.batch.active.is_empty();
    let run_decode = match r.policy {
        ColocatedPolicy::PrefillPriority => !has_prefill && has_decode,
        // Chunked: strictly alternate when both kinds of work exist.
        ColocatedPolicy::Chunked { .. } => has_decode && (!has_prefill || r.decode_turn),
    };
    if run_decode {
        let batch = r.batch.active.len() as u64;
        trace(
            core,
            TraceKind::DecodeStep {
                role: Role::Colocated,
                replica: ri,
                batch: batch as usize,
            },
        );
        let mut latency = r.cost.decode_step_latency(batch, r.batch.avg_context());
        if r.slow_factor != 1.0 {
            latency = latency.mul_f64(r.slow_factor);
        }
        r.current = Some(Work::DecodeStep);
        r.decode_turn = false;
        core.queue.push(
            core.now + latency,
            EventKind::WorkDone {
                replica: ri,
                epoch: r.epoch(),
            },
        );
        return;
    }
    if !has_prefill {
        return;
    }
    match r.policy {
        ColocatedPolicy::PrefillPriority => {
            // Whole-request batch up to the token budget, under the
            // configured queue discipline (FCFS by default).
            let (batch, total) = r.prefill.take_batch(budget, core.cfg.prefill_policy);
            if tracing(core) {
                for job in &batch {
                    let Some(st) = core.reqs.get(job.key) else {
                        continue;
                    };
                    let request = st.req.id;
                    trace(
                        core,
                        TraceKind::PrefillStart {
                            request,
                            role: Role::Colocated,
                            replica: ri,
                            tokens: job.tokens,
                        },
                    );
                }
            }
            if observing(core) {
                let depth = r.prefill.queue.len();
                trace(
                    core,
                    TraceKind::QueueDepth {
                        role: Role::Colocated,
                        replica: ri,
                        depth,
                    },
                );
            }
            let avg = total / batch.len() as u64;
            let mut latency = r.cost.prefill_latency(total, avg);
            if r.slow_factor != 1.0 {
                latency = latency.mul_f64(r.slow_factor);
            }
            r.current = Some(Work::Prefill { finishing: batch });
            core.queue.push(
                core.now + latency,
                EventKind::WorkDone {
                    replica: ri,
                    epoch: r.epoch(),
                },
            );
        }
        ColocatedPolicy::Chunked { chunk_tokens } => {
            // Process up to chunk_tokens of the queue head(s); requests
            // whose prompts finish within this chunk complete prefill.
            let (finishing, tokens) = r.prefill.take_chunk(chunk_tokens);
            if tracing(core) {
                for job in &finishing {
                    let Some(st) = core.reqs.get(job.key) else {
                        continue;
                    };
                    let request = st.req.id;
                    trace(
                        core,
                        TraceKind::PrefillStart {
                            request,
                            role: Role::Colocated,
                            replica: ri,
                            tokens: job.tokens,
                        },
                    );
                }
            }
            if observing(core) {
                let depth = r.prefill.queue.len();
                trace(
                    core,
                    TraceKind::QueueDepth {
                        role: Role::Colocated,
                        replica: ri,
                        depth,
                    },
                );
            }
            let avg = finishing
                .first()
                .map(|f| f.tokens)
                .unwrap_or_else(|| tokens.max(1));
            let mut latency = r.cost.prefill_latency(tokens.max(1), avg);
            if r.slow_factor != 1.0 {
                latency = latency.mul_f64(r.slow_factor);
            }
            r.current = Some(Work::Prefill { finishing });
            r.decode_turn = true;
            core.queue.push(
                core.now + latency,
                EventKind::WorkDone {
                    replica: ri,
                    epoch: r.epoch(),
                },
            );
        }
    }
}

fn colo_on_work_done(core: &mut Core, c: &mut ColoState, ri: usize) -> Result<()> {
    if core.cfg.straggler_threshold.is_some() {
        colo_observe_straggler(core, c, ri);
    }
    let work = c.replicas[ri]
        .current
        .take()
        .ok_or_else(|| Error::Simulation("WorkDone with no work".into()))?;
    match work {
        Work::Prefill { finishing } => {
            for job in finishing {
                let now = core.now;
                let (rid, newly_first) = {
                    let st = core
                        .reqs
                        .get_mut(job.key)
                        .ok_or_else(|| Error::Simulation(format!("unknown request {}", job.key)))?;
                    // Re-prefills keep their original first-token time
                    // (fault recovery); fresh prefills set it now.
                    let newly_first = st.pend.first_token_at.is_none();
                    if newly_first {
                        st.pend.first_token_at = Some(now);
                    }
                    (st.req.id, newly_first)
                };
                trace(
                    core,
                    TraceKind::PrefillEnd {
                        request: rid,
                        role: Role::Colocated,
                        replica: ri,
                    },
                );
                if newly_first {
                    trace(core, TraceKind::FirstToken { request: rid });
                }
                if job.remaining == 0 {
                    finish(core, job.key, now, SimDuration::ZERO)?;
                } else {
                    // KV is already local: straight to the waiting queue.
                    c.replicas[ri].batch.waiting.push_back(WaitingSeq {
                        key: job.key,
                        tokens: job.tokens,
                        remaining: job.remaining,
                        resume: job.resume,
                    });
                }
            }
        }
        Work::DecodeStep => {
            let finished = c.replicas[ri].batch.advance(core.now);
            for (key, gap) in finished {
                finish(core, key, core.now, gap)?;
            }
        }
    }
    colo_maybe_start_work(core, c, ri);
    Ok(())
}

/// The colocated routing mask (see [`split_router_mask`]).
fn colo_router_mask(core: &Core, c: &ColoState, extra: Option<usize>) -> Vec<bool> {
    c.believed_dead
        .iter()
        .enumerate()
        .map(|(i, &dead)| !dead && !core.gray.masked(i) && extra != Some(i))
        .collect()
}

/// Re-derives the routing mask from believed replica liveness.
fn colo_refresh_router(core: &mut Core, c: &ColoState) {
    let mask = colo_router_mask(core, c, None);
    core.router.apply_mask(&mask);
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_cluster::presets;
    use ts_common::{
        GpuId, ModelRouting, ModelSpec, ParallelConfig, Phase, RoutingMatrix, ServedModel,
        StageSpec,
    };

    fn testbed(cfg_edit: impl FnOnce(&mut SimConfig)) -> Driver {
        let cluster = presets::network_case_cluster(presets::ETH_5GBPS);
        let model = ModelSpec::llama_13b();
        let group = |phase, ids: [u32; 4]| {
            GroupSpec::new(
                phase,
                ParallelConfig::new(4, 1).unwrap(),
                vec![StageSpec {
                    gpus: ids.iter().map(|&i| GpuId(i)).collect(),
                    layers: model.num_layers,
                }],
            )
            .unwrap()
        };
        let plan = DeploymentPlan::new(
            vec![
                group(Phase::Prefill, [0, 1, 2, 3]),
                group(Phase::Decode, [4, 5, 6, 7]),
            ],
            RoutingMatrix::uniform(1, 1),
        )
        .unwrap();
        let mut cfg = SimConfig::new(model);
        cfg_edit(&mut cfg);
        Driver::new_split(&cluster, &plan, cfg).unwrap()
    }

    fn seed_request(core: &mut Core, id: u64) -> (Request, SlabKey) {
        let req = Request::new(RequestId(id), SimTime::ZERO, 512, 16);
        let key = core.reqs.insert(ReqState::new(req));
        (req, key)
    }

    #[test]
    fn zero_duration_launch_bypasses_uplink_serialization() {
        // Regression: a zero-duration transfer (KV modeling off) used to
        // wait behind `sender_free_at` and then push it out to
        // `now + delay`, queueing later transfers on a link it never used.
        let mut d = testbed(|cfg| cfg.model_kv_transfer = false);
        let Driver { core, topo } = &mut d;
        let Topology::Split(s) = topo else {
            unreachable!()
        };
        let (req, key) = seed_request(core, 7);
        core.now = SimTime::from_secs_f64(5.0);
        let busy_until = SimTime::from_secs_f64(30.0);
        s.sender_free_at[0] = busy_until;
        split_launch_transfer(
            core,
            s,
            Transfer {
                from: 0,
                to: 0,
                job: PrefillJob::fresh(key, &req),
                attempt: 2,
            },
            SimDuration::from_millis(50),
        );
        assert_eq!(
            s.sender_free_at[0], busy_until,
            "zero-duration transfer must not touch the uplink"
        );
        let ev = core.queue.pop().expect("completion scheduled");
        assert_eq!(
            ev.at,
            SimTime::from_secs_f64(5.0) + SimDuration::from_millis(50),
            "completes after the backoff alone, not behind the uplink queue"
        );
        let p = &core.reqs[key].pend;
        assert_eq!(p.kv_enqueued_at, Some(SimTime::from_secs_f64(5.0)));
        assert_eq!(p.kv_wire_started_at, Some(ev.at));
    }

    #[test]
    fn modeled_transfer_still_serializes_on_the_uplink() {
        let mut d = testbed(|_| {});
        let Driver { core, topo } = &mut d;
        let Topology::Split(s) = topo else {
            unreachable!()
        };
        let (req, key) = seed_request(core, 8);
        core.now = SimTime::from_secs_f64(5.0);
        let busy_until = SimTime::from_secs_f64(10.0);
        s.sender_free_at[0] = busy_until;
        split_launch_transfer(
            core,
            s,
            Transfer {
                from: 0,
                to: 0,
                job: PrefillJob::fresh(key, &req),
                attempt: 1,
            },
            SimDuration::ZERO,
        );
        assert!(
            s.sender_free_at[0] > busy_until,
            "a modeled transfer occupies the uplink past the queue head"
        );
        assert_eq!(
            core.reqs[key].pend.kv_wire_started_at,
            Some(busy_until),
            "wire time starts when the uplink frees, not at enqueue"
        );
        let ev = core.queue.pop().expect("completion scheduled");
        assert_eq!(ev.at, s.sender_free_at[0]);
    }

    #[test]
    fn fabric_is_built_only_when_both_flags_are_on() {
        let flags = |contention: bool, modeled: bool| {
            let d = testbed(|cfg| {
                cfg.network_contention = contention;
                cfg.model_kv_transfer = modeled;
            });
            let Topology::Split(s) = &d.topo else {
                unreachable!()
            };
            s.fabric.is_some()
        };
        assert!(!flags(false, true), "legacy default has no fabric");
        assert!(!flags(true, false), "unmodeled transfers need no fabric");
        assert!(flags(true, true));
    }

    /// Two tenants (both llama-7b, so memory trivially fits) partitioning
    /// the 8-GPU network-case cluster: model 1 on groups 0/2, model 2 on
    /// groups 1/3.
    fn multi_testbed_with(tweak: impl FnOnce(&mut SimConfig)) -> Driver {
        let cluster = presets::network_case_cluster(presets::ETH_5GBPS);
        let model = ModelSpec::llama_7b();
        let group = |phase, m: ModelId, ids: [u32; 2]| {
            GroupSpec::new(
                phase,
                ParallelConfig::new(2, 1).unwrap(),
                vec![StageSpec {
                    gpus: ids.iter().map(|&i| GpuId(i)).collect(),
                    layers: model.num_layers,
                }],
            )
            .unwrap()
            .with_model(m)
        };
        let plan = DeploymentPlan::new_multi(
            vec![
                group(Phase::Prefill, ModelId(1), [0, 1]),
                group(Phase::Prefill, ModelId(2), [2, 3]),
                group(Phase::Decode, ModelId(1), [4, 5]),
                group(Phase::Decode, ModelId(2), [6, 7]),
            ],
            vec![
                ModelRouting {
                    model: ModelId(1),
                    routing: RoutingMatrix::uniform(1, 1),
                    share: 0.5,
                },
                ModelRouting {
                    model: ModelId(2),
                    routing: RoutingMatrix::uniform(1, 1),
                    share: 0.5,
                },
            ],
        )
        .unwrap();
        let mut cfg = SimConfig::new(model).with_catalog(vec![
            ServedModel::llama_7b_chat(ModelId(1), 0.5).unwrap(),
            ServedModel::llama_7b_chat(ModelId(2), 0.5).unwrap(),
        ]);
        tweak(&mut cfg);
        Driver::new_split(&cluster, &plan, cfg).unwrap()
    }

    fn multi_testbed() -> Driver {
        multi_testbed_with(|_| {})
    }

    #[test]
    fn single_model_plan_builds_no_model_routes() {
        let d = testbed(|_| {});
        let Topology::Split(s) = &d.topo else {
            unreachable!()
        };
        assert!(s.model_routes.is_empty(), "legacy plans stay single-router");
        assert!(s.codecs.is_empty());
        assert_eq!(s.prefill_model, vec![ModelId(0)]);
        assert_eq!(s.decode_model, vec![ModelId(0)]);
        assert!(!d.core.track_models);
    }

    #[test]
    fn multi_model_plan_routes_each_tenant_to_its_own_replicas() {
        let mut d = multi_testbed();
        {
            let Topology::Split(s) = &d.topo else {
                unreachable!()
            };
            assert_eq!(s.model_routes.len(), 2);
            assert_eq!(s.model_routes[0].pairs, vec![(0, 0)]);
            assert_eq!(s.model_routes[1].pairs, vec![(1, 1)]);
            assert_eq!(s.prefill_model, vec![ModelId(1), ModelId(2)]);
            assert_eq!(s.decode_model, vec![ModelId(1), ModelId(2)]);
        }
        let reqs: Vec<Request> = (0..8)
            .map(|i| {
                Request::new(
                    RequestId(i),
                    SimTime::from_secs_f64(i as f64 * 0.05),
                    256,
                    8,
                )
                .with_model(ModelId(1 + (i % 2) as u32))
            })
            .collect();
        let m = d.run_with_faults(&reqs, &FaultScript::none()).unwrap();
        assert_eq!(m.num_completed(), 8);
        for r in m.records() {
            let expect = match r.request.model {
                ModelId(1) => 0,
                ModelId(2) => 1,
                other => panic!("unexpected model {other}"),
            };
            assert_eq!(r.prefill_replica, expect, "prefill crossed tenants");
            assert_eq!(r.decode_replica, expect, "decode crossed tenants");
        }
        let per = &m.recovery().per_model;
        assert_eq!(per.len(), 2);
        for c in per {
            assert!(c.balanced());
            assert_eq!(c.submitted, 4);
            assert_eq!(c.completed, 4);
        }
        // the per-model views add back up to the aggregate
        let m1 = m.for_model(ModelId(1));
        let m2 = m.for_model(ModelId(2));
        assert_eq!(m1.num_completed() + m2.num_completed(), m.num_completed());
    }

    #[test]
    fn traces_tag_requests_with_their_model_only_when_tracking() {
        let mut d = multi_testbed_with(|cfg| cfg.telemetry = true);
        let reqs: Vec<Request> = (0..4)
            .map(|i| {
                Request::new(
                    RequestId(i),
                    SimTime::from_secs_f64(i as f64 * 0.05),
                    256,
                    8,
                )
                .with_model(ModelId(1 + (i % 2) as u32))
            })
            .collect();
        d.run_with_faults(&reqs, &FaultScript::none()).unwrap();
        let log = d.take_trace().expect("telemetry was on");
        let tags = log.model_tags();
        assert_eq!(tags.len(), 4, "every arrival carries exactly one tag");
        for r in &reqs {
            assert_eq!(tags.get(&r.id), Some(&r.model));
        }
        assert_eq!(log.requests_for_model(ModelId(1)).len(), 2);
        assert_eq!(log.requests_for_model(ModelId(2)).len(), 2);

        // Single-model runs emit no tags at all, keeping traces identical to
        // pre-catalog builds.
        let mut legacy = testbed(|cfg| cfg.telemetry = true);
        let req = Request::new(RequestId(0), SimTime::ZERO, 256, 8);
        legacy
            .run_with_faults(&[req], &FaultScript::none())
            .unwrap();
        let log = legacy.take_trace().expect("telemetry was on");
        assert!(log.model_tags().is_empty());
    }

    #[test]
    fn flow_endpoints_pick_the_heaviest_leg_and_total_layers() {
        let d = testbed(|_| {});
        let Topology::Split(s) = &d.topo else {
            unreachable!()
        };
        // tp=4/pp=1 on both sides: a single leg carrying every layer.
        let (_, _, layers) = s.flow_routes[0][0];
        assert_eq!(layers, d.core.cfg.model.num_layers);
        assert_eq!(flow_endpoints(&[]), (GpuId(0), GpuId(0), 0));
    }
}
