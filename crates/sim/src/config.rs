//! Simulation configuration.

use ts_common::{ModelId, ModelSpec, ServedModel, SloSpec};
use ts_costmodel::ModelParams;
use ts_kvcache::codec::KvWirePrecision;

/// Knobs controlling a simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The served model. For multi-model runs this remains the *default*
    /// model — the spec used for any group or request whose [`ModelId`] is
    /// absent from [`SimConfig::models`] — so every single-model code path
    /// is untouched by the catalog.
    pub model: ModelSpec,
    /// The served-model catalog of a multi-tenant run. Empty (the default)
    /// means single-model serving: every request and group resolves to
    /// [`SimConfig::model`] exactly as before the catalog existed.
    pub models: Vec<ServedModel>,
    /// Cost-model efficiency parameters.
    pub params: ModelParams,
    /// Wire precision of prefill→decode KV transfers.
    pub kv_precision: KvWirePrecision,
    /// Token budget per prefill batch: requests are batched FCFS until the
    /// next one would exceed this many prompt tokens (DistServe-style
    /// prefill batching; batching past GPU saturation only hurts TTFT).
    pub max_prefill_batch_tokens: u64,
    /// Upper bound on concurrent decode sequences per replica (in addition
    /// to the KV memory limit).
    pub max_decode_batch: u64,
    /// Whether KV transfer uses the replica-pair link model with queuing
    /// (true) or is assumed free (ablation switch for Figure 12).
    pub model_kv_transfer: bool,
    /// Flow-level network contention: when true (and
    /// [`SimConfig::model_kv_transfer`] is on), KV transfers run over the
    /// `ts-net` fabric — concurrent flows share NIC uplinks/downlinks and
    /// inter-node links max-min fairly instead of serializing per sender.
    /// Off by default; the legacy model keeps the paper figures
    /// bit-identical.
    pub network_contention: bool,
    /// Multiplicative congestion factor (≥ 1) the *analytic* estimator
    /// applies to KV wire bytes when pricing transfers, approximating the
    /// slowdown from sharing links. Exactly 1.0 (the default) reproduces the
    /// uncongested arithmetic bit for bit.
    pub kv_congestion_factor: f64,
    /// SLO-aware decode batching: when set, a decode replica stops admitting
    /// new sequences once the projected step latency would exceed this TPOT
    /// deadline (DistServe-style batch capping; at least one sequence is
    /// always admitted to avoid starvation).
    pub tpot_batch_cap: Option<ts_common::SimDuration>,
    /// Order in which prefill replicas pick queued requests.
    pub prefill_policy: PrefillPolicy,
    /// Chunked prefill on *disaggregated* prefill replicas: when set, each
    /// prefill launch processes at most this many prompt tokens
    /// (Sarathi-style), bounding per-launch occupancy of the prefill
    /// pipeline. `None` (the default) batches whole requests under
    /// [`SimConfig::max_prefill_batch_tokens`]. Colocated replicas get
    /// chunking through their own scheduling policy instead
    /// ([`crate::exec::ColocatedPolicy::Chunked`]).
    pub prefill_chunk_tokens: Option<u64>,
    /// Fault handling: how many arrivals may stall in the coordinator while
    /// no route to a live replica pair exists (whole-phase loss, reload
    /// blackout). Arrivals beyond this are rejected outright — a distinct
    /// outcome from requests dropped mid-service.
    pub shed_threshold: usize,
    /// Fault handling: base delay of the capped exponential backoff applied
    /// when a KV transfer fails on a faulted link (attempt `n` retries after
    /// `base * 2^(n-1)`, capped at [`SimConfig::kv_retry_backoff_cap`]).
    pub kv_retry_backoff_base: ts_common::SimDuration,
    /// Fault handling: upper bound on a single KV-transfer retry delay.
    pub kv_retry_backoff_cap: ts_common::SimDuration,
    /// Request-lifecycle tracing: when true the engine records span events
    /// (arrival, queueing, prefill, KV transfer, decode, faults) into an
    /// in-memory [`ts_telemetry::Recorder`], retrievable after the run via
    /// the engines' `take_trace()`. Off by default; the off path does no
    /// telemetry work at all and keeps results bit-identical — tracing
    /// observes the simulation, it never schedules events or draws
    /// randomness.
    pub telemetry: bool,
    /// Gray-failure mitigation: hedged re-dispatch timeout. When set, a
    /// request whose first token has not appeared this long after dispatch
    /// gets a duplicate prefill launched on an alternate replica pair
    /// (first completion wins, the loser is cancelled); a request whose KV
    /// transfer is still on the wire gets the transfer cancelled and
    /// re-dispatched. `None` (the default) disables hedging and keeps
    /// results bit-identical.
    pub hedge_timeout: Option<ts_common::SimDuration>,
    /// Gray-failure mitigation: per-request KV-transfer retry *budget*.
    /// When set, a transfer that has already been retried this many times
    /// is dropped instead of retried again (counted in
    /// `RecoveryCounters::retry_budget_exhausted`). `None` (the default)
    /// retries without bound, as before.
    pub kv_retry_budget: Option<u32>,
    /// Gray-failure mitigation: retry-backoff jitter fraction in `[0, 1]`.
    /// When positive, each retry delay is stretched by a uniformly drawn
    /// factor in `[1, 1 + jitter]` from the seeded fault RNG, decorrelating
    /// retry storms. Zero (the default) draws nothing and keeps results
    /// bit-identical.
    pub kv_retry_jitter: f64,
    /// Gray-failure mitigation: straggler quarantine threshold on the
    /// observed-vs-expected iteration-time ratio (EWMA). A replica whose
    /// ratio stays at or above this for
    /// [`SimConfig::straggler_min_samples`] iterations is removed from
    /// routing and readmitted optimistically after
    /// [`SimConfig::straggler_readmit_after`]. `None` (the default)
    /// disables detection.
    pub straggler_threshold: Option<f64>,
    /// Iterations a replica must look slow before quarantine kicks in.
    pub straggler_min_samples: u32,
    /// How long a quarantined replica sits out before optimistic
    /// readmission (it re-quarantines if still slow).
    pub straggler_readmit_after: ts_common::SimDuration,
    /// Gray-failure mitigation: SLO-class-aware load shedding. When set, a
    /// request is shed (rejected, `DeadlineShed`) instead of dispatched if
    /// its TTFT deadline — `arrival + slo.ttft × deadline_scale` — has
    /// already passed while it waited, which only happens under overload.
    /// `None` (the default) never deadline-sheds.
    pub deadline_slo: Option<ts_common::SloSpec>,
    /// Deadline slack multiplier applied to the SLO targets when deriving
    /// per-request deadlines (1 = shed exactly at the SLO).
    pub deadline_scale: f64,
    /// Seed for the engine's fault/mitigation RNG (flaky-heartbeat draws,
    /// retry jitter). The RNG is only consulted when a gray fault or a
    /// jitter knob actually needs randomness, so the default path stays
    /// bit-identical regardless of this value.
    pub fault_seed: u64,
    /// Decode-step coalescing on disaggregated decode replicas: schedule
    /// one event per planned multi-step decode run instead of one per step,
    /// materializing the intermediate steps retroactively when anything
    /// needs to observe the batch mid-run. Output-bit-identical to the
    /// per-step schedule (the regression suite pins this) and roughly a
    /// mean-batch-size reduction in event volume. `false` forces the
    /// per-step path — the compatibility arm the bit-identity tests compare
    /// against; straggler detection (which samples per-step timings)
    /// disables coalescing on its own.
    pub decode_coalescing: bool,
    /// Streaming observability plane: when set, the engine folds every
    /// trace event into an online [`ts_telemetry::StreamingPlane`]
    /// (quantile sketches, fixed-window counters, SLO burn-rate monitors)
    /// retrievable after the run via the engines' `take_streaming()`.
    /// Independent of [`SimConfig::telemetry`]: either, both or neither
    /// may be on. `None` (the default) does no streaming work; like the
    /// recorder, the plane only observes, so enabling it keeps simulation
    /// results bit-identical (the golden-digest suite pins this).
    pub streaming: Option<ts_telemetry::StreamConfig>,
    /// Burn-rate-gated hedging: when true (and [`SimConfig::hedge_timeout`]
    /// and [`SimConfig::streaming`] are both set), hedged duplicates are
    /// only launched while the streaming plane's health signal is degraded
    /// (`Warning` or worse) — spending the duplicate-work budget only when
    /// the SLO is actually burning. Off by default; off is bit-identical.
    pub burn_gated_hedging: bool,
}

/// Prefill queue discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PrefillPolicy {
    /// First come, first served (the default; what the paper's systems run).
    #[default]
    Fcfs,
    /// Shortest prompt first: improves median TTFT under mixed prompt
    /// lengths at the cost of tail latency for long prompts (classic SJF
    /// trade-off; provided for scheduling studies).
    ShortestFirst,
}

impl SimConfig {
    /// Default configuration for a model: 4-bit KV wire compression, 4096
    /// token prefill batches, decode batch cap 256.
    pub fn new(model: ModelSpec) -> Self {
        SimConfig {
            model,
            models: Vec::new(),
            params: ModelParams::default(),
            kv_precision: KvWirePrecision::DEFAULT_COMPRESSED,
            max_prefill_batch_tokens: 4096,
            max_decode_batch: 256,
            model_kv_transfer: true,
            network_contention: false,
            kv_congestion_factor: 1.0,
            tpot_batch_cap: None,
            prefill_policy: PrefillPolicy::Fcfs,
            prefill_chunk_tokens: None,
            shed_threshold: 256,
            kv_retry_backoff_base: ts_common::SimDuration::from_millis(25),
            kv_retry_backoff_cap: ts_common::SimDuration::from_millis(1600),
            telemetry: false,
            hedge_timeout: None,
            kv_retry_budget: None,
            kv_retry_jitter: 0.0,
            straggler_threshold: None,
            straggler_min_samples: 3,
            straggler_readmit_after: ts_common::SimDuration::from_secs(5),
            deadline_slo: None,
            deadline_scale: 1.0,
            fault_seed: 0x7453_4752_4159,
            decode_coalescing: true,
            streaming: None,
            burn_gated_hedging: false,
        }
    }

    /// Returns a copy serving the given model catalog (multi-tenant mode).
    /// An empty catalog restores single-model behaviour.
    pub fn with_catalog(mut self, models: Vec<ServedModel>) -> Self {
        self.models = models;
        self
    }

    /// The spec serving `model`: its catalog entry, or the default
    /// [`SimConfig::model`] when the catalog is empty or does not list it.
    pub fn spec_for(&self, model: ModelId) -> &ModelSpec {
        self.models
            .iter()
            .find(|m| m.id == model)
            .map_or(&self.model, |m| &m.spec)
    }

    /// The SLO of `model`'s tenant, if the catalog lists one.
    pub fn slo_for(&self, model: ModelId) -> Option<&SloSpec> {
        self.models.iter().find(|m| m.id == model).map(|m| &m.slo)
    }

    /// Returns a copy with uncompressed (fp16) KV transfers.
    pub fn with_f16_kv(mut self) -> Self {
        self.kv_precision = KvWirePrecision::F16;
        self
    }

    /// Returns a copy with the given KV precision.
    pub fn with_kv_precision(mut self, p: KvWirePrecision) -> Self {
        self.kv_precision = p;
        self
    }

    /// Returns a copy with flow-level network contention on KV transfers
    /// enabled (or disabled).
    pub fn with_network_contention(mut self, on: bool) -> Self {
        self.network_contention = on;
        self
    }

    /// Returns a copy with request-lifecycle tracing enabled (or disabled).
    pub fn with_telemetry(mut self, on: bool) -> Self {
        self.telemetry = on;
        self
    }

    /// Returns a copy with the analytic estimator's KV congestion factor.
    ///
    /// # Panics
    /// Panics if `factor` is below 1 or not finite.
    pub fn with_kv_congestion_factor(mut self, factor: f64) -> Self {
        assert!(
            factor >= 1.0 && factor.is_finite(),
            "congestion factor must be finite and >= 1, got {factor}"
        );
        self.kv_congestion_factor = factor;
        self
    }

    /// Returns a copy with SLO-aware decode batch capping at `tpot`.
    pub fn with_tpot_cap(mut self, tpot: ts_common::SimDuration) -> Self {
        self.tpot_batch_cap = Some(tpot);
        self
    }

    /// Returns a copy with the given prefill queue discipline.
    pub fn with_prefill_policy(mut self, policy: PrefillPolicy) -> Self {
        self.prefill_policy = policy;
        self
    }

    /// Returns a copy with chunked prefill on disaggregated prefill
    /// replicas: each prefill launch covers at most `chunk` prompt tokens.
    pub fn with_prefill_chunking(mut self, chunk: u64) -> Self {
        self.prefill_chunk_tokens = Some(chunk);
        self
    }

    /// Returns a copy with the given stall-queue shed threshold.
    pub fn with_shed_threshold(mut self, n: usize) -> Self {
        self.shed_threshold = n;
        self
    }

    /// Returns a copy with the given KV-transfer retry backoff (base delay
    /// and cap).
    pub fn with_kv_retry_backoff(
        mut self,
        base: ts_common::SimDuration,
        cap: ts_common::SimDuration,
    ) -> Self {
        self.kv_retry_backoff_base = base;
        self.kv_retry_backoff_cap = cap;
        self
    }

    /// Returns a copy with hedged re-dispatch of stuck prefills / KV
    /// transfers after `timeout`.
    pub fn with_hedging(mut self, timeout: ts_common::SimDuration) -> Self {
        self.hedge_timeout = Some(timeout);
        self
    }

    /// Returns a copy with a per-request KV-transfer retry budget.
    pub fn with_kv_retry_budget(mut self, retries: u32) -> Self {
        self.kv_retry_budget = Some(retries);
        self
    }

    /// Returns a copy with the given retry-backoff jitter fraction.
    ///
    /// # Panics
    /// Panics if `jitter` is not in `[0, 1]`.
    pub fn with_kv_retry_jitter(mut self, jitter: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&jitter),
            "retry jitter must be in [0, 1], got {jitter}"
        );
        self.kv_retry_jitter = jitter;
        self
    }

    /// Returns a copy with straggler quarantine at the given
    /// observed-vs-expected iteration-time ratio.
    ///
    /// # Panics
    /// Panics if `threshold` is not finite or not above 1 (a healthy
    /// replica's ratio is exactly 1).
    pub fn with_straggler_detection(mut self, threshold: f64) -> Self {
        assert!(
            threshold > 1.0 && threshold.is_finite(),
            "straggler threshold must be finite and > 1, got {threshold}"
        );
        self.straggler_threshold = Some(threshold);
        self
    }

    /// Returns a copy with the given quarantine readmission delay.
    pub fn with_straggler_readmit_after(mut self, after: ts_common::SimDuration) -> Self {
        self.straggler_readmit_after = after;
        self
    }

    /// Returns a copy with SLO-derived per-request deadlines (deadline
    /// shedding) at the given SLO targets and slack scale.
    ///
    /// # Panics
    /// Panics if `scale` is not finite and positive.
    pub fn with_deadlines(mut self, slo: ts_common::SloSpec, scale: f64) -> Self {
        assert!(
            scale > 0.0 && scale.is_finite(),
            "deadline scale must be finite and positive, got {scale}"
        );
        self.deadline_slo = Some(slo);
        self.deadline_scale = scale;
        self
    }

    /// Returns a copy with the given fault/mitigation RNG seed.
    pub fn with_fault_seed(mut self, seed: u64) -> Self {
        self.fault_seed = seed;
        self
    }

    /// Returns a copy with decode-step coalescing enabled or disabled (see
    /// [`SimConfig::decode_coalescing`]; `false` is the per-step
    /// compatibility path).
    pub fn with_decode_coalescing(mut self, on: bool) -> Self {
        self.decode_coalescing = on;
        self
    }

    /// Returns a copy with the streaming observability plane enabled under
    /// the given configuration (see [`SimConfig::streaming`]).
    pub fn with_streaming(mut self, stream: ts_telemetry::StreamConfig) -> Self {
        self.streaming = Some(stream);
        self
    }

    /// Returns a copy with burn-rate-gated hedging enabled or disabled
    /// (see [`SimConfig::burn_gated_hedging`]; requires both
    /// [`SimConfig::with_hedging`] and [`SimConfig::with_streaming`] to
    /// have any effect).
    pub fn with_burn_gated_hedging(mut self, on: bool) -> Self {
        self.burn_gated_hedging = on;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_uses_int4() {
        let c = SimConfig::new(ModelSpec::llama_7b());
        assert_eq!(c.kv_precision, KvWirePrecision::DEFAULT_COMPRESSED);
        assert!(c.model_kv_transfer);
        assert!(!c.network_contention);
        assert_eq!(c.kv_congestion_factor, 1.0);
        assert!(!c.telemetry);
    }

    #[test]
    fn catalog_resolution_defaults_to_the_single_model() {
        let c = SimConfig::new(ModelSpec::llama_13b());
        assert!(c.models.is_empty());
        assert_eq!(c.spec_for(ModelId(0)), &ModelSpec::llama_13b());
        assert!(c.slo_for(ModelId(0)).is_none());
        let c = c.with_catalog(vec![ServedModel::llama_7b_chat(ModelId(1), 1.0).unwrap()]);
        assert_eq!(c.spec_for(ModelId(1)), &ModelSpec::llama_7b());
        assert!(c.slo_for(ModelId(1)).is_some());
        // Unknown ids still resolve to the default model.
        assert_eq!(c.spec_for(ModelId(9)), &ModelSpec::llama_13b());
        assert!(c.slo_for(ModelId(9)).is_none());
    }

    #[test]
    fn telemetry_builder() {
        let c = SimConfig::new(ModelSpec::llama_7b()).with_telemetry(true);
        assert!(c.telemetry);
        assert!(!c.with_telemetry(false).telemetry);
    }

    #[test]
    fn network_contention_builders() {
        let c = SimConfig::new(ModelSpec::llama_7b())
            .with_network_contention(true)
            .with_kv_congestion_factor(1.5);
        assert!(c.network_contention);
        assert_eq!(c.kv_congestion_factor, 1.5);
    }

    #[test]
    #[should_panic]
    fn congestion_factor_below_one_rejected() {
        let _ = SimConfig::new(ModelSpec::llama_7b()).with_kv_congestion_factor(0.5);
    }

    #[test]
    fn with_f16_switches_precision() {
        let c = SimConfig::new(ModelSpec::llama_7b()).with_f16_kv();
        assert_eq!(c.kv_precision, KvWirePrecision::F16);
    }

    #[test]
    fn with_tpot_cap_sets_deadline() {
        let d = ts_common::SimDuration::from_millis(50);
        let c = SimConfig::new(ModelSpec::llama_7b()).with_tpot_cap(d);
        assert_eq!(c.tpot_batch_cap, Some(d));
    }

    #[test]
    fn prefill_chunking_defaults_off() {
        let c = SimConfig::new(ModelSpec::llama_7b());
        assert_eq!(c.prefill_chunk_tokens, None);
        let c = c.with_prefill_chunking(512);
        assert_eq!(c.prefill_chunk_tokens, Some(512));
    }

    #[test]
    fn fault_knobs_have_sane_defaults_and_builders() {
        let c = SimConfig::new(ModelSpec::llama_7b());
        assert!(c.shed_threshold > 0);
        assert!(c.kv_retry_backoff_base < c.kv_retry_backoff_cap);
        let base = ts_common::SimDuration::from_millis(10);
        let cap = ts_common::SimDuration::from_millis(500);
        let c = c.with_shed_threshold(8).with_kv_retry_backoff(base, cap);
        assert_eq!(c.shed_threshold, 8);
        assert_eq!(c.kv_retry_backoff_base, base);
        assert_eq!(c.kv_retry_backoff_cap, cap);
    }

    #[test]
    fn mitigation_knobs_default_off() {
        let c = SimConfig::new(ModelSpec::llama_7b());
        assert_eq!(c.hedge_timeout, None);
        assert_eq!(c.kv_retry_budget, None);
        assert_eq!(c.kv_retry_jitter, 0.0);
        assert_eq!(c.straggler_threshold, None);
        assert_eq!(c.deadline_slo, None);
        let slo = ts_common::SloSpec::new(
            ts_common::SimDuration::from_millis(500),
            ts_common::SimDuration::from_millis(50),
            ts_common::SimDuration::from_secs(20),
        );
        let c = c
            .with_hedging(ts_common::SimDuration::from_millis(900))
            .with_kv_retry_budget(4)
            .with_kv_retry_jitter(0.5)
            .with_straggler_detection(2.0)
            .with_straggler_readmit_after(ts_common::SimDuration::from_secs(3))
            .with_deadlines(slo, 2.0)
            .with_fault_seed(7);
        assert_eq!(
            c.hedge_timeout,
            Some(ts_common::SimDuration::from_millis(900))
        );
        assert_eq!(c.kv_retry_budget, Some(4));
        assert_eq!(c.kv_retry_jitter, 0.5);
        assert_eq!(c.straggler_threshold, Some(2.0));
        assert_eq!(
            c.straggler_readmit_after,
            ts_common::SimDuration::from_secs(3)
        );
        assert_eq!(c.deadline_slo, Some(slo));
        assert_eq!(c.deadline_scale, 2.0);
        assert_eq!(c.fault_seed, 7);
    }

    #[test]
    #[should_panic]
    fn straggler_threshold_at_or_below_one_rejected() {
        let _ = SimConfig::new(ModelSpec::llama_7b()).with_straggler_detection(1.0);
    }

    #[test]
    #[should_panic]
    fn retry_jitter_above_one_rejected() {
        let _ = SimConfig::new(ModelSpec::llama_7b()).with_kv_retry_jitter(1.5);
    }
}
