//! Simulation configuration.

use ts_common::ModelSpec;
use ts_costmodel::ModelParams;
use ts_kvcache::codec::KvWirePrecision;

/// Knobs controlling a simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The served model.
    pub model: ModelSpec,
    /// Cost-model efficiency parameters.
    pub params: ModelParams,
    /// Wire precision of prefill→decode KV transfers.
    pub kv_precision: KvWirePrecision,
    /// Token budget per prefill batch: requests are batched FCFS until the
    /// next one would exceed this many prompt tokens (DistServe-style
    /// prefill batching; batching past GPU saturation only hurts TTFT).
    pub max_prefill_batch_tokens: u64,
    /// Upper bound on concurrent decode sequences per replica (in addition
    /// to the KV memory limit).
    pub max_decode_batch: u64,
    /// Whether KV transfer uses the replica-pair link model with queuing
    /// (true) or is assumed free (ablation switch for Figure 12).
    pub model_kv_transfer: bool,
    /// Flow-level network contention: when true (and
    /// [`SimConfig::model_kv_transfer`] is on), KV transfers run over the
    /// `ts-net` fabric — concurrent flows share NIC uplinks/downlinks and
    /// inter-node links max-min fairly instead of serializing per sender.
    /// Off by default; the legacy model keeps the paper figures
    /// bit-identical.
    pub network_contention: bool,
    /// Multiplicative congestion factor (≥ 1) the *analytic* estimator
    /// applies to KV wire bytes when pricing transfers, approximating the
    /// slowdown from sharing links. Exactly 1.0 (the default) reproduces the
    /// uncongested arithmetic bit for bit.
    pub kv_congestion_factor: f64,
    /// SLO-aware decode batching: when set, a decode replica stops admitting
    /// new sequences once the projected step latency would exceed this TPOT
    /// deadline (DistServe-style batch capping; at least one sequence is
    /// always admitted to avoid starvation).
    pub tpot_batch_cap: Option<ts_common::SimDuration>,
    /// Order in which prefill replicas pick queued requests.
    pub prefill_policy: PrefillPolicy,
    /// Chunked prefill on *disaggregated* prefill replicas: when set, each
    /// prefill launch processes at most this many prompt tokens
    /// (Sarathi-style), bounding per-launch occupancy of the prefill
    /// pipeline. `None` (the default) batches whole requests under
    /// [`SimConfig::max_prefill_batch_tokens`]. Colocated replicas get
    /// chunking through their own scheduling policy instead
    /// ([`crate::exec::ColocatedPolicy::Chunked`]).
    pub prefill_chunk_tokens: Option<u64>,
    /// Fault handling: how many arrivals may stall in the coordinator while
    /// no route to a live replica pair exists (whole-phase loss, reload
    /// blackout). Arrivals beyond this are rejected outright — a distinct
    /// outcome from requests dropped mid-service.
    pub shed_threshold: usize,
    /// Fault handling: base delay of the capped exponential backoff applied
    /// when a KV transfer fails on a faulted link (attempt `n` retries after
    /// `base * 2^(n-1)`, capped at [`SimConfig::kv_retry_backoff_cap`]).
    pub kv_retry_backoff_base: ts_common::SimDuration,
    /// Fault handling: upper bound on a single KV-transfer retry delay.
    pub kv_retry_backoff_cap: ts_common::SimDuration,
    /// Request-lifecycle tracing: when true the engine records span events
    /// (arrival, queueing, prefill, KV transfer, decode, faults) into an
    /// in-memory [`ts_telemetry::Recorder`], retrievable after the run via
    /// the engines' `take_trace()`. Off by default; the off path does no
    /// telemetry work at all and keeps results bit-identical — tracing
    /// observes the simulation, it never schedules events or draws
    /// randomness.
    pub telemetry: bool,
}

/// Prefill queue discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PrefillPolicy {
    /// First come, first served (the default; what the paper's systems run).
    #[default]
    Fcfs,
    /// Shortest prompt first: improves median TTFT under mixed prompt
    /// lengths at the cost of tail latency for long prompts (classic SJF
    /// trade-off; provided for scheduling studies).
    ShortestFirst,
}

impl SimConfig {
    /// Default configuration for a model: 4-bit KV wire compression, 4096
    /// token prefill batches, decode batch cap 256.
    pub fn new(model: ModelSpec) -> Self {
        SimConfig {
            model,
            params: ModelParams::default(),
            kv_precision: KvWirePrecision::DEFAULT_COMPRESSED,
            max_prefill_batch_tokens: 4096,
            max_decode_batch: 256,
            model_kv_transfer: true,
            network_contention: false,
            kv_congestion_factor: 1.0,
            tpot_batch_cap: None,
            prefill_policy: PrefillPolicy::Fcfs,
            prefill_chunk_tokens: None,
            shed_threshold: 256,
            kv_retry_backoff_base: ts_common::SimDuration::from_millis(25),
            kv_retry_backoff_cap: ts_common::SimDuration::from_millis(1600),
            telemetry: false,
        }
    }

    /// Returns a copy with uncompressed (fp16) KV transfers.
    pub fn with_f16_kv(mut self) -> Self {
        self.kv_precision = KvWirePrecision::F16;
        self
    }

    /// Returns a copy with the given KV precision.
    pub fn with_kv_precision(mut self, p: KvWirePrecision) -> Self {
        self.kv_precision = p;
        self
    }

    /// Returns a copy with flow-level network contention on KV transfers
    /// enabled (or disabled).
    pub fn with_network_contention(mut self, on: bool) -> Self {
        self.network_contention = on;
        self
    }

    /// Returns a copy with request-lifecycle tracing enabled (or disabled).
    pub fn with_telemetry(mut self, on: bool) -> Self {
        self.telemetry = on;
        self
    }

    /// Returns a copy with the analytic estimator's KV congestion factor.
    ///
    /// # Panics
    /// Panics if `factor` is below 1 or not finite.
    pub fn with_kv_congestion_factor(mut self, factor: f64) -> Self {
        assert!(
            factor >= 1.0 && factor.is_finite(),
            "congestion factor must be finite and >= 1, got {factor}"
        );
        self.kv_congestion_factor = factor;
        self
    }

    /// Returns a copy with SLO-aware decode batch capping at `tpot`.
    pub fn with_tpot_cap(mut self, tpot: ts_common::SimDuration) -> Self {
        self.tpot_batch_cap = Some(tpot);
        self
    }

    /// Returns a copy with the given prefill queue discipline.
    pub fn with_prefill_policy(mut self, policy: PrefillPolicy) -> Self {
        self.prefill_policy = policy;
        self
    }

    /// Returns a copy with chunked prefill on disaggregated prefill
    /// replicas: each prefill launch covers at most `chunk` prompt tokens.
    pub fn with_prefill_chunking(mut self, chunk: u64) -> Self {
        self.prefill_chunk_tokens = Some(chunk);
        self
    }

    /// Returns a copy with the given stall-queue shed threshold.
    pub fn with_shed_threshold(mut self, n: usize) -> Self {
        self.shed_threshold = n;
        self
    }

    /// Returns a copy with the given KV-transfer retry backoff (base delay
    /// and cap).
    pub fn with_kv_retry_backoff(
        mut self,
        base: ts_common::SimDuration,
        cap: ts_common::SimDuration,
    ) -> Self {
        self.kv_retry_backoff_base = base;
        self.kv_retry_backoff_cap = cap;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_uses_int4() {
        let c = SimConfig::new(ModelSpec::llama_7b());
        assert_eq!(c.kv_precision, KvWirePrecision::DEFAULT_COMPRESSED);
        assert!(c.model_kv_transfer);
        assert!(!c.network_contention);
        assert_eq!(c.kv_congestion_factor, 1.0);
        assert!(!c.telemetry);
    }

    #[test]
    fn telemetry_builder() {
        let c = SimConfig::new(ModelSpec::llama_7b()).with_telemetry(true);
        assert!(c.telemetry);
        assert!(!c.with_telemetry(false).telemetry);
    }

    #[test]
    fn network_contention_builders() {
        let c = SimConfig::new(ModelSpec::llama_7b())
            .with_network_contention(true)
            .with_kv_congestion_factor(1.5);
        assert!(c.network_contention);
        assert_eq!(c.kv_congestion_factor, 1.5);
    }

    #[test]
    #[should_panic]
    fn congestion_factor_below_one_rejected() {
        let _ = SimConfig::new(ModelSpec::llama_7b()).with_kv_congestion_factor(0.5);
    }

    #[test]
    fn with_f16_switches_precision() {
        let c = SimConfig::new(ModelSpec::llama_7b()).with_f16_kv();
        assert_eq!(c.kv_precision, KvWirePrecision::F16);
    }

    #[test]
    fn with_tpot_cap_sets_deadline() {
        let d = ts_common::SimDuration::from_millis(50);
        let c = SimConfig::new(ModelSpec::llama_7b()).with_tpot_cap(d);
        assert_eq!(c.tpot_batch_cap, Some(d));
    }

    #[test]
    fn prefill_chunking_defaults_off() {
        let c = SimConfig::new(ModelSpec::llama_7b());
        assert_eq!(c.prefill_chunk_tokens, None);
        let c = c.with_prefill_chunking(512);
        assert_eq!(c.prefill_chunk_tokens, Some(512));
    }

    #[test]
    fn fault_knobs_have_sane_defaults_and_builders() {
        let c = SimConfig::new(ModelSpec::llama_7b());
        assert!(c.shed_threshold > 0);
        assert!(c.kv_retry_backoff_base < c.kv_retry_backoff_cap);
        let base = ts_common::SimDuration::from_millis(10);
        let cap = ts_common::SimDuration::from_millis(500);
        let c = c.with_shed_threshold(8).with_kv_retry_backoff(base, cap);
        assert_eq!(c.shed_threshold, 8);
        assert_eq!(c.kv_retry_backoff_base, base);
        assert_eq!(c.kv_retry_backoff_cap, cap);
    }
}
