//! Fast analytic SLO-attainment estimation.
//!
//! The tabu search evaluates thousands of candidate plans; running the full
//! event simulator for each would dominate scheduling time. This module
//! estimates per-pair and overall SLO attainment analytically with simple
//! queueing approximations (M/D/1-style prefill waiting, Little's-law decode
//! batch fixed point, alpha-beta KV transfer), in the spirit of the paper's
//! DistServe-derived simulator. Figure 19 compares this estimator against
//! the discrete-event engine.

use crate::config::SimConfig;
use ts_cluster::Cluster;
use ts_common::{DeploymentPlan, Result, SloSpec};
use ts_costmodel::replica::{kv_route, kv_transfer_time_congested};
use ts_costmodel::ReplicaCostModel;
use ts_workload::WorkloadSpec;

/// Per-pair estimates plus capacity bounds, ready for the orchestration LP.
#[derive(Debug, Clone)]
pub struct PairEstimates {
    /// `d[i][j]`: estimated joint SLO attainment for the (prefill `i`,
    /// decode `j`) pair.
    pub d: Vec<Vec<f64>>,
    /// Per-kind components `(ttft, tpot, e2e)` for each pair.
    pub components: Vec<Vec<(f64, f64, f64)>>,
    /// Fraction of the total request rate each prefill replica can absorb.
    pub row_cap: Vec<f64>,
    /// Fraction of the total request rate each decode replica can absorb.
    pub col_cap: Vec<f64>,
    /// KV transfer seconds per routed request for each (prefill, decode)
    /// pair — the sender-uplink cost the orchestration LP budgets against.
    pub kv_seconds: Vec<Vec<f64>>,
}

/// Overall plan-level estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttainmentEstimate {
    /// Estimated joint (all-three-criteria) attainment.
    pub overall: f64,
    /// Estimated TTFT attainment.
    pub ttft: f64,
    /// Estimated TPOT attainment.
    pub tpot: f64,
    /// Estimated E2E attainment.
    pub e2e: f64,
}

/// Utilization headroom: capacities are reported at this fraction of the
/// theoretical maximum so the orchestration keeps queues stable.
const CAP_HEADROOM: f64 = 0.92;

// Estimates cross scheduler worker threads; keep them plain data.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<PairEstimates>();
    assert_send_sync::<AttainmentEstimate>();
};

/// Builds [`PairEstimates`] for given prefill/decode replica cost models
/// under `workload` and `slo`.
///
/// The reference load for each replica assumes the stream is spread across
/// replicas proportionally to capacity (routing-independent, so the tabu
/// search can evaluate group constructions before orchestration is known).
///
/// This function is a pure function of its arguments — no global or
/// interior-mutable state — and the scheduler relies on that to evaluate
/// many candidate plans concurrently with bit-identical results; keep any
/// future caching deterministic and thread-safe.
pub fn pair_estimates(
    cluster: &Cluster,
    cfg: &SimConfig,
    prefill: &[ReplicaCostModel],
    decode: &[ReplicaCostModel],
    workload: &WorkloadSpec,
    slo: &SloSpec,
) -> PairEstimates {
    let p_mean = workload.prompt.mean().max(1.0);
    let o_mean = workload.output.mean().max(1.0);
    let rate = workload.rate;

    // --- Prefill side -----------------------------------------------------
    let svc: Vec<f64> = prefill
        .iter()
        .map(|m| {
            m.prefill_latency(p_mean as u64, p_mean as u64)
                .as_secs_f64()
        })
        .collect();
    let mu: Vec<f64> = svc.iter().map(|s| 1.0 / s.max(1e-9)).collect();
    let total_mu: f64 = mu.iter().sum();
    let row_cap: Vec<f64> = mu
        .iter()
        .map(|&m| (m * CAP_HEADROOM / rate).min(1.0))
        .collect();
    // Reference per-replica arrival rate: proportional to service capacity.
    let lam_p: Vec<f64> = mu.iter().map(|&m| rate * m / total_mu).collect();

    // --- Decode side ------------------------------------------------------
    let ctx = p_mean + o_mean / 2.0;
    let steps = (o_mean - 1.0).max(0.0);
    let mut step_time = Vec::with_capacity(decode.len());
    let mut dec_cap_rate = Vec::with_capacity(decode.len()); // req/s each decode can sustain
    let total_dec_weight: f64 = decode
        .iter()
        .map(|m| m.decode_throughput(32, ctx as u64).max(1e-9))
        .sum();
    for m in decode {
        let lam_share = rate * m.decode_throughput(32, ctx as u64).max(1e-9) / total_dec_weight;
        let bmax = m
            .max_decode_batch((p_mean + o_mean) as u64)
            .min(cfg.max_decode_batch)
            .max(1);
        // Little's-law fixed point: b = λ·steps·step_time(b)
        let mut b = 1.0f64;
        for _ in 0..30 {
            let st = m
                .decode_step_latency(b.ceil() as u64, ctx as u64)
                .as_secs_f64();
            let nb = (lam_share * steps * st).clamp(1.0, bmax as f64);
            if (nb - b).abs() < 0.01 {
                b = nb;
                break;
            }
            b = nb;
        }
        let st = m
            .decode_step_latency(b.ceil() as u64, ctx as u64)
            .as_secs_f64();
        step_time.push(st);
        // Max sustainable request rate: tokens/s at bmax divided by steps/request.
        let st_max = m.decode_step_latency(bmax, ctx as u64).as_secs_f64();
        let max_rate = if steps > 0.0 {
            bmax as f64 / st_max / steps
        } else {
            f64::INFINITY
        };
        dec_cap_rate.push(max_rate);
    }
    let col_cap: Vec<f64> = dec_cap_rate
        .iter()
        .map(|&r| (r * CAP_HEADROOM / rate).min(1.0))
        .collect();

    // --- Pair matrix --------------------------------------------------------
    let m_p = prefill.len();
    let n_d = decode.len();
    let mut d = vec![vec![0.0; n_d]; m_p];
    let mut components = vec![vec![(0.0, 0.0, 0.0); n_d]; m_p];
    let mut kv_seconds = vec![vec![0.0; n_d]; m_p];
    for i in 0..m_p {
        let rho = (lam_p[i] * svc[i]).min(0.999);
        // Mean M/D/1 queueing delay, modeled with an exponential tail.
        let wq_mean = rho * svc[i] / (2.0 * (1.0 - rho).max(1e-6));
        let ttft_deadline = slo.ttft.as_secs_f64();
        let a_ttft = wait_tail(ttft_deadline - svc[i], wq_mean, rho);
        for j in 0..n_d {
            // Congestion factor 1.0 (the default) reproduces the
            // uncongested arithmetic bit for bit.
            let kv = kv_transfer_time_congested(
                prefill[i].model(),
                &kv_route(cluster, &prefill[i], &decode[j]),
                p_mean as u64,
                cfg.kv_precision.ratio_vs_f16(),
                cfg.kv_congestion_factor,
            )
            .as_secs_f64();
            let kv = if cfg.model_kv_transfer { kv } else { 0.0 };
            kv_seconds[i][j] = kv;
            let a_tpot = soft_meet(slo.tpot.as_secs_f64(), step_time[j]);
            let decode_time = steps * step_time[j];
            let e2e_deadline = slo.e2e.as_secs_f64();
            let slack = e2e_deadline - svc[i] - kv - decode_time;
            let a_e2e = wait_tail(slack, wq_mean, rho);
            components[i][j] = (a_ttft, a_tpot, a_e2e);
            d[i][j] = a_ttft * a_tpot * a_e2e;
        }
    }
    PairEstimates {
        d,
        components,
        row_cap,
        col_cap,
        kv_seconds,
    }
}

/// P(wait ≤ slack) with exponential-tail waiting of mean `wq_mean` and
/// utilization `rho` (probability `rho` of waiting at all).
fn wait_tail(slack: f64, wq_mean: f64, rho: f64) -> f64 {
    if slack < 0.0 {
        return 0.0;
    }
    if wq_mean <= 1e-12 {
        return 1.0;
    }
    1.0 - rho * (-slack / wq_mean).exp()
}

/// Smooth deterministic deadline check: 1 when `value` is comfortably below
/// `deadline`, 0 when far above, logistic in between.
fn soft_meet(deadline: f64, value: f64) -> f64 {
    if value <= 1e-12 {
        return 1.0;
    }
    let x = deadline / value - 1.0;
    1.0 / (1.0 + (-8.0 * x).exp())
}

/// Estimates attainment for a complete plan (groups + routing) under a
/// workload: per-pair estimates weighted by the plan's routing matrix.
/// Unrouted mass counts as missed.
///
/// # Errors
/// Propagates cost-model compilation failures for infeasible groups.
pub fn estimate_attainment(
    cluster: &Cluster,
    plan: &DeploymentPlan,
    cfg: &SimConfig,
    workload: &WorkloadSpec,
    slo: &SloSpec,
) -> Result<AttainmentEstimate> {
    let prefill: Vec<ReplicaCostModel> = plan
        .prefill_indices()
        .iter()
        .map(|&gi| ReplicaCostModel::new(cluster, &cfg.model, &plan.groups[gi], &cfg.params))
        .collect::<Result<_>>()?;
    let decode: Vec<ReplicaCostModel> = plan
        .decode_indices()
        .iter()
        .map(|&gi| ReplicaCostModel::new(cluster, &cfg.model, &plan.groups[gi], &cfg.params))
        .collect::<Result<_>>()?;
    let est = pair_estimates(cluster, cfg, &prefill, &decode, workload, slo);
    let mut overall = 0.0;
    let mut ttft = 0.0;
    let mut tpot = 0.0;
    let mut e2e = 0.0;
    let rates = plan.routing.rates();
    for (i, row) in rates.iter().enumerate() {
        for (j, &r) in row.iter().enumerate() {
            overall += r * est.d[i][j];
            let (a, b, c) = est.components[i][j];
            ttft += r * a;
            tpot += r * b;
            e2e += r * c;
        }
    }
    Ok(AttainmentEstimate {
        overall,
        ttft,
        tpot,
        e2e,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_cluster::presets;
    use ts_common::{
        GpuId, GroupSpec, ModelSpec, ParallelConfig, Phase, RoutingMatrix, SimDuration, StageSpec,
    };
    use ts_workload::spec;

    fn group(phase: Phase, gpus: &[u32], tp: usize, pp: usize, layers: usize) -> GroupSpec {
        let per = layers / pp;
        let stages = (0..pp)
            .map(|s| StageSpec {
                gpus: gpus[s * tp..(s + 1) * tp]
                    .iter()
                    .map(|&g| GpuId(g))
                    .collect(),
                layers: if s + 1 == pp {
                    layers - per * (pp - 1)
                } else {
                    per
                },
            })
            .collect();
        GroupSpec::new(phase, ParallelConfig::new(tp, pp).unwrap(), stages).unwrap()
    }

    fn simple_plan() -> (ts_cluster::Cluster, DeploymentPlan, SimConfig) {
        let cluster = presets::network_case_cluster(presets::ETH_40GBPS);
        let model = ModelSpec::llama_13b();
        let plan = DeploymentPlan::new(
            vec![
                group(Phase::Prefill, &[0, 1, 2, 3], 2, 2, model.num_layers),
                group(Phase::Decode, &[4, 5, 6, 7], 2, 2, model.num_layers),
            ],
            RoutingMatrix::uniform(1, 1),
        )
        .unwrap();
        let cfg = SimConfig::new(model);
        (cluster, plan, cfg)
    }

    fn slo() -> SloSpec {
        SloSpec::new(
            SimDuration::from_secs(2),
            SimDuration::from_millis(200),
            SimDuration::from_secs(30),
        )
    }

    #[test]
    fn low_rate_high_attainment() {
        let (cluster, plan, cfg) = simple_plan();
        let w = spec::coding(0.2);
        let e = estimate_attainment(&cluster, &plan, &cfg, &w, &slo()).unwrap();
        assert!(e.overall > 0.8, "overall {e:?}");
        assert!(e.ttft > 0.9);
    }

    #[test]
    fn attainment_degrades_with_rate() {
        let (cluster, plan, cfg) = simple_plan();
        let lo = estimate_attainment(&cluster, &plan, &cfg, &spec::coding(0.2), &slo()).unwrap();
        let hi = estimate_attainment(&cluster, &plan, &cfg, &spec::coding(8.0), &slo()).unwrap();
        assert!(hi.overall < lo.overall, "{hi:?} vs {lo:?}");
    }

    #[test]
    fn attainment_improves_with_looser_slo() {
        let (cluster, plan, cfg) = simple_plan();
        let w = spec::coding(1.5);
        let tight = estimate_attainment(&cluster, &plan, &cfg, &w, &slo().scaled(0.25)).unwrap();
        let loose = estimate_attainment(&cluster, &plan, &cfg, &w, &slo().scaled(4.0)).unwrap();
        assert!(loose.overall >= tight.overall, "{loose:?} vs {tight:?}");
    }

    #[test]
    fn compression_helps_e2e_on_slow_links() {
        let cluster = presets::network_case_cluster(presets::ETH_5GBPS);
        let model = ModelSpec::llama_13b();
        let plan = DeploymentPlan::new(
            vec![
                group(Phase::Prefill, &[0, 1, 2, 3], 2, 2, model.num_layers),
                group(Phase::Decode, &[4, 5, 6, 7], 2, 2, model.num_layers),
            ],
            RoutingMatrix::uniform(1, 1),
        )
        .unwrap();
        let w = spec::conversation(1.0);
        let tight_e2e = SloSpec::new(
            SimDuration::from_secs(3),
            SimDuration::from_millis(300),
            SimDuration::from_secs(20),
        );
        let c4 = SimConfig::new(model.clone());
        let c16 = SimConfig::new(model).with_f16_kv();
        let e4 = estimate_attainment(&cluster, &plan, &c4, &w, &tight_e2e).unwrap();
        let e16 = estimate_attainment(&cluster, &plan, &c16, &w, &tight_e2e).unwrap();
        assert!(e4.e2e >= e16.e2e, "{e4:?} vs {e16:?}");
    }

    #[test]
    fn wait_tail_properties() {
        assert_eq!(wait_tail(-0.1, 1.0, 0.5), 0.0);
        assert_eq!(wait_tail(1.0, 0.0, 0.5), 1.0);
        let a = wait_tail(0.5, 1.0, 0.9);
        let b = wait_tail(2.0, 1.0, 0.9);
        assert!(b > a);
        assert!((0.0..=1.0).contains(&a));
    }

    #[test]
    fn soft_meet_is_half_at_deadline() {
        let v = soft_meet(0.1, 0.1);
        assert!((v - 0.5).abs() < 1e-9);
        assert!(soft_meet(0.2, 0.1) > 0.9);
        assert!(soft_meet(0.05, 0.1) < 0.1);
    }
}
