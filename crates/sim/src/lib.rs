//! # ts-sim
//!
//! Deterministic discrete-event simulator for phase-split LLM serving.
//!
//! This is the execution substrate standing in for real GPUs (see
//! DESIGN.md): request arrival → prefill batching → KV-cache transfer →
//! continuous-batching decode, with every duration produced by the
//! [`ts_costmodel`] roofline/alpha-beta models and every random choice
//! seeded. The paper itself evaluates candidate plans with a simulator of
//! this style (adopted from DistServe and extended with KV-transfer costs);
//! we use one engine both for plan evaluation and for the "measured" side of
//! every experiment.
//!
//! * [`config`] — simulation knobs (KV wire precision, batch budgets);
//! * [`event`] — the time-ordered event queue;
//! * [`metrics`] — per-request records, SLO attainment and throughput;
//! * [`router`] — deterministic stride router implementing a routing matrix;
//! * [`exec`] — the phase-agnostic execution core: the shared event-loop
//!   driver, the [`exec::ReplicaExecutor`] trait and its prefill / decode /
//!   colocated implementations, and the per-sequence batching bookkeeping
//!   both engines are built from;
//! * [`engine`] — the phase-split engine ([`engine::Simulation`]), a facade
//!   over [`exec`];
//! * [`colocated`] — a prefill/decode-colocated engine for vLLM-like and
//!   HexGen-like baselines (captures phase interference), the other facade
//!   over [`exec`] — and therefore with the same fault-injection support;
//! * [`estimate`] — the fast analytic SLO estimator the scheduler calls in
//!   its inner loop (validated against the engine in Figure 19).
//!
//! # Examples
//!
//! ```
//! use ts_cluster::presets;
//! use ts_common::{ModelSpec, GpuId, GroupSpec, ParallelConfig, Phase, StageSpec,
//!                 DeploymentPlan, RoutingMatrix, SimDuration};
//! use ts_sim::{config::SimConfig, engine::Simulation};
//! use ts_workload::{generator::generate, spec};
//!
//! let cluster = presets::network_case_cluster(presets::ETH_40GBPS);
//! let model = ModelSpec::llama_13b();
//! let group = |phase, gpus: [u32; 4]| GroupSpec::new(
//!     phase,
//!     ParallelConfig::new(2, 2).unwrap(),
//!     vec![
//!         StageSpec { gpus: vec![GpuId(gpus[0]), GpuId(gpus[1])], layers: 20 },
//!         StageSpec { gpus: vec![GpuId(gpus[2]), GpuId(gpus[3])], layers: 20 },
//!     ],
//! ).unwrap();
//! let plan = DeploymentPlan::new(
//!     vec![group(Phase::Prefill, [0, 1, 2, 3]), group(Phase::Decode, [4, 5, 6, 7])],
//!     RoutingMatrix::uniform(1, 1),
//! ).unwrap();
//! let cfg = SimConfig::new(model);
//! let mut sim = Simulation::new(&cluster, &plan, cfg).unwrap();
//! let reqs = generate(&spec::coding(1.0), SimDuration::from_secs(30), 7);
//! let metrics = sim.run(&reqs).unwrap();
//! assert_eq!(metrics.num_completed(), reqs.len());
//! ```

pub mod colocated;
pub mod config;
pub mod engine;
pub mod estimate;
pub mod event;
pub mod exec;
pub mod fault;
pub mod metrics;
pub mod router;

pub use colocated::{ColocatedPolicy, ColocatedSimulation};
pub use config::SimConfig;
pub use engine::Simulation;
pub use estimate::{estimate_attainment, AttainmentEstimate};
pub use fault::{FaultKind, FaultScript, TimedFault};
pub use metrics::{Metrics, RecoveryCounters, RequestRecord};
pub use ts_telemetry::{RequestSpan, TraceLog};
