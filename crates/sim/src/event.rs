//! The discrete-event queue.
//!
//! Events are totally ordered by `(time, sequence)`: the sequence number is
//! a monotonically increasing tiebreaker, so simultaneous events fire in
//! insertion order and runs are exactly reproducible.
//!
//! # Determinism guarantee
//!
//! [`EventQueue::push`] stamps each event with the next value of an
//! internal counter, and [`EventQueue::pop`] orders by `(at, seq)`. Two
//! events pushed at the same [`SimTime`] therefore always pop in the order
//! they were pushed — on every run, on every platform. The whole
//! simulator's reproducibility (bit-identical metrics for identical
//! inputs) reduces to this property plus the determinism of
//! [`crate::router::StrideRouter`]; nothing else in the engine breaks
//! ties.
//!
//! # Structure
//!
//! The queue is a 4-ary implicit heap rather than `std`'s binary
//! `BinaryHeap`: the event loop is pop-heavy (every push is eventually
//! popped, plus tombstones), and a 4-ary layout halves the tree depth, so
//! sift-down — the pop cost — touches fewer cache lines per level for the
//! same number of comparisons. Ordering is exactly `(at, seq)`.
//!
//! # Cancellation
//!
//! [`EventQueue::push_cancellable`] returns an [`EventToken`] backed by a
//! generation-checked side table. [`EventQueue::cancel`] is O(1): it bumps
//! the slot's generation, turning the heap entry into a tombstone that
//! [`EventQueue::pop`] discards when it surfaces. This replaces the old
//! pattern of letting stale epoch-stamped events fire and be recognized by
//! their handler — with decode-step coalescing, stale events would
//! otherwise advance simulated time in ways the per-step schedule never
//! did. [`EventQueue::reschedule`] moves a cancellable event to a new time
//! while *preserving its original `(seq, pushed_at)` stamps*, which is what
//! keeps a replanned coalesced decode event ordered exactly like the
//! per-step event it stands for.
//!
//! # Push-time stamps
//!
//! Each event records `pushed_at` — the simulated time the loop was
//! dispatching when the event was scheduled ([`EventQueue::set_now`] is
//! called by the run loop before each dispatch; setup-time pushes stamp
//! zero). Handlers use it to decide whether a simultaneous rival event was
//! scheduled before or after a coalesced event's virtual push time; see
//! `exec::driver`.

use ts_common::{SimTime, SlabKey};

/// What happens when an event fires.
///
/// Request-scoped variants carry the request's dense [`SlabKey`] into the
/// driver's state slab — events never own request payloads, so the whole
/// kind is `Copy`. (Arrivals are not events at all: the run loop merges the
/// time-sorted arrival list with the queue lazily.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Prefill replica `replica` finished its current batch.
    PrefillDone {
        /// Index into the engine's prefill replica list.
        replica: usize,
        /// Liveness epoch of the replica when the batch launched. A replica
        /// death bumps the epoch, so completions scheduled before the fault
        /// are recognized as stale and discarded.
        epoch: u64,
    },
    /// Prefill replica `replica`'s first pipeline stage freed up: with
    /// pipeline parallelism a new batch can enter while earlier batches
    /// drain through later stages.
    PrefillSlotFree {
        /// Index into the engine's prefill replica list.
        replica: usize,
        /// Liveness epoch at scheduling time (see [`EventKind::PrefillDone`]).
        epoch: u64,
    },
    /// The KV cache of `request` finished its transfer to decode replica
    /// `replica`.
    KvTransferDone {
        /// Index into the engine's decode replica list.
        replica: usize,
        /// The request whose cache arrived.
        request: SlabKey,
        /// Transfer attempt number. Link faults cause retries; a retry bumps
        /// the attempt in the engine's transfer registry so completions of
        /// superseded attempts are discarded.
        attempt: u32,
    },
    /// A delayed (backed-off) KV transfer enters the flow-level fabric.
    /// Only scheduled when [`crate::config::SimConfig::network_contention`]
    /// is on; immediate launches start their flow inline.
    KvFlowLaunch {
        /// The request whose KV cache starts moving.
        request: SlabKey,
        /// Transfer attempt number this launch belongs to (see
        /// [`EventKind::KvTransferDone`]); a superseding retry makes the
        /// launch stale.
        attempt: u32,
    },
    /// A completion estimate of the flow-level fabric matured for
    /// `request`'s KV flow. The fabric re-estimates *every* flow whenever
    /// one starts or finishes, so most of these events are stale by the
    /// time they fire; `epoch` lets the fabric recognize the current one.
    KvFlowDone {
        /// The request whose KV flow (maybe) drained.
        request: SlabKey,
        /// Fabric epoch of the estimate; stale epochs are discarded,
        /// mirroring the replica-liveness epochs of
        /// [`EventKind::PrefillDone`].
        epoch: u64,
    },
    /// Decode replica `replica` finished one decode step — or, with decode
    /// coalescing, the final step of its planned multi-step run (the
    /// intermediate steps are materialized retroactively; see
    /// `exec::driver`).
    DecodeStepDone {
        /// Index into the engine's decode replica list.
        replica: usize,
        /// Liveness epoch at scheduling time (see [`EventKind::PrefillDone`]).
        epoch: u64,
    },
    /// Colocated replica `replica` finished its current work item.
    WorkDone {
        /// Index into the colocated engine's replica list.
        replica: usize,
        /// Liveness epoch at scheduling time (see [`EventKind::PrefillDone`]).
        epoch: u64,
    },
    /// Fault `index` of the active fault script takes effect (replica or
    /// link goes down/up, or a service pause begins). The capacity change is
    /// immediate; recovery waits for [`EventKind::FaultDetected`].
    FaultTriggered {
        /// Index into the fault script's fault list.
        index: usize,
    },
    /// The heartbeat monitor notices fault `index` (one detection delay
    /// after the fault): the engine masks routing away from dead replicas
    /// and re-queues their in-flight work if recovery is enabled.
    FaultDetected {
        /// Index into the fault script's fault list.
        index: usize,
    },
    /// A service pause (reload blackout) ended; stalled arrivals re-enter
    /// the coordinator.
    ServiceResumed,
    /// The hedging timer for `request` matured: if its prefill or KV
    /// transfer is still outstanding, the engine launches a duplicate on an
    /// alternate replica pair (first completion wins). Only scheduled when
    /// [`crate::config::SimConfig::hedge_timeout`] is set.
    HedgeCheck {
        /// The request whose progress the timer inspects.
        request: SlabKey,
    },
    /// A heartbeat window elapsed for a node with flaky heartbeats
    /// ([`crate::fault::FaultKind::HeartbeatFlaky`]): the engine draws from
    /// the seeded fault RNG to decide whether this beat was lost, masking or
    /// readmitting the node in routing accordingly. Self-reschedules while
    /// the node's loss probability is above zero.
    FlakyBeat {
        /// Host index (prefill replicas first, then decode replicas; plain
        /// replica index for colocated engines).
        node: usize,
    },
    /// A quarantine probation period ended: the straggler detector
    /// re-admits the replica into routing (optimistically; it re-quarantines
    /// if still slow). Stale probes — scheduled before a later re-quarantine
    /// — are discarded by comparing against the recorded quarantine expiry.
    ReadmitProbe {
        /// Whether the replica is a prefill (`true`) or decode (`false`)
        /// replica; ignored for colocated engines.
        prefill: bool,
        /// Index into the respective replica list.
        replica: usize,
    },
}

/// A scheduled event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Fire time.
    pub at: SimTime,
    /// Insertion-order tiebreaker.
    pub seq: u64,
    /// Simulated time when the event was scheduled (zero for setup-time
    /// pushes). Rescheduling preserves the original stamp.
    pub pushed_at: SimTime,
    /// Payload.
    pub kind: EventKind,
    /// Cancellation slot, or `NO_SLOT`.
    slot: u32,
    /// Generation of `slot` this entry belongs to.
    slot_gen: u32,
}

const NO_SLOT: u32 = u32::MAX;

impl Event {
    /// The cancellation-token identity this event was scheduled under, if
    /// it was pushed cancellable. After the event pops the token is stale
    /// for queue operations, but it still serves as an identity: the driver
    /// compares it against a plan's recorded token to recognize whether a
    /// popped coalesced decode event still speaks for the current plan.
    pub fn token(&self) -> Option<EventToken> {
        (self.slot != NO_SLOT).then_some(EventToken {
            slot: self.slot,
            gen: self.slot_gen,
        })
    }
}

/// Handle to a cancellable scheduled event (see
/// [`EventQueue::push_cancellable`]). Generation-checked: once the event
/// fires, is cancelled, or is superseded by a reschedule, old tokens become
/// inert.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventToken {
    slot: u32,
    gen: u32,
}

#[derive(Debug, Clone, Copy)]
struct SlotMeta {
    /// Current generation; heap entries with an older generation are
    /// tombstones.
    gen: u32,
    /// Whether the current generation has a live heap entry (false once
    /// cancelled or fired; the slot is then reusable).
    live: bool,
    /// Original `seq` of the entry occupying this slot, preserved across
    /// reschedules.
    seq: u64,
    /// Original `pushed_at` of the entry, preserved across reschedules.
    pushed_at: SimTime,
}

/// A deterministic min-time event queue (4-ary indexed heap).
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: Vec<Event>,
    seq: u64,
    /// Count of live (non-tombstoned) entries.
    live: usize,
    now: SimTime,
    slots: Vec<SlotMeta>,
    free_slots: Vec<u32>,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the simulated time stamped onto subsequent pushes. The run loop
    /// calls this before dispatching each event.
    #[inline]
    pub fn set_now(&mut self, now: SimTime) {
        self.now = now;
    }

    /// Schedules `kind` at `at`.
    pub fn push(&mut self, at: SimTime, kind: EventKind) {
        let ev = Event {
            at,
            seq: self.seq,
            pushed_at: self.now,
            kind,
            slot: NO_SLOT,
            slot_gen: 0,
        };
        self.seq += 1;
        self.live += 1;
        self.sift_up(ev);
    }

    /// Schedules `kind` at `at` and returns a token for O(1) cancellation
    /// or rescheduling.
    pub fn push_cancellable(&mut self, at: SimTime, kind: EventKind) -> EventToken {
        let slot = match self.free_slots.pop() {
            Some(s) => s,
            None => {
                let s = u32::try_from(self.slots.len()).expect("too many cancellation slots");
                self.slots.push(SlotMeta {
                    gen: 0,
                    live: false,
                    seq: 0,
                    pushed_at: SimTime::ZERO,
                });
                s
            }
        };
        let meta = &mut self.slots[slot as usize];
        debug_assert!(!meta.live, "free list pointed at a live slot");
        meta.live = true;
        meta.seq = self.seq;
        meta.pushed_at = self.now;
        let token = EventToken {
            slot,
            gen: meta.gen,
        };
        let ev = Event {
            at,
            seq: self.seq,
            pushed_at: self.now,
            kind,
            slot,
            slot_gen: meta.gen,
        };
        self.seq += 1;
        self.live += 1;
        self.sift_up(ev);
        token
    }

    /// Cancels the event behind `token`. Returns whether the token was
    /// still current (the event had not fired, been cancelled, or been
    /// superseded). O(1): the heap entry becomes a tombstone discarded at
    /// pop.
    pub fn cancel(&mut self, token: EventToken) -> bool {
        let Some(meta) = self.slots.get_mut(token.slot as usize) else {
            return false;
        };
        if meta.gen != token.gen || !meta.live {
            return false;
        }
        meta.gen = meta.gen.wrapping_add(1);
        meta.live = false;
        self.free_slots.push(token.slot);
        self.live -= 1;
        true
    }

    /// Moves the event behind `token` to fire at `at` with payload `kind`,
    /// preserving its original `(seq, pushed_at)` ordering stamps — the
    /// rescheduled event keeps exactly the queue position (relative to
    /// simultaneous rivals) that the original would have had at its new
    /// time. Returns the replacement token, or `None` if the token was
    /// stale.
    pub fn reschedule(
        &mut self,
        token: EventToken,
        at: SimTime,
        kind: EventKind,
    ) -> Option<EventToken> {
        let meta = self.slots.get_mut(token.slot as usize)?;
        if meta.gen != token.gen || !meta.live {
            return None;
        }
        meta.gen = meta.gen.wrapping_add(1);
        let token = EventToken {
            slot: token.slot,
            gen: meta.gen,
        };
        let ev = Event {
            at,
            seq: meta.seq,
            pushed_at: meta.pushed_at,
            kind,
            slot: token.slot,
            slot_gen: token.gen,
        };
        self.sift_up(ev);
        Some(token)
    }

    /// Re-inserts a just-popped cancellable event with explicit `(seq,
    /// pushed_at)` ordering stamps, returning a fresh token. Used by the
    /// driver for the one corner where [`EventQueue::reschedule`] cannot
    /// apply: a coalesced decode event has already popped (its slot is
    /// dead) when a simultaneous rival, dispatched inline ahead of it,
    /// replans the same replica. Reinserting with the original stamps keeps
    /// the replanned event ordered against other simultaneous events
    /// exactly as the per-step schedule would have ordered it.
    pub fn reinsert(
        &mut self,
        at: SimTime,
        kind: EventKind,
        seq: u64,
        pushed_at: SimTime,
    ) -> EventToken {
        debug_assert!(seq < self.seq, "reinsert stamps must come from a past push");
        let slot = match self.free_slots.pop() {
            Some(s) => s,
            None => {
                let s = u32::try_from(self.slots.len()).expect("too many cancellation slots");
                self.slots.push(SlotMeta {
                    gen: 0,
                    live: false,
                    seq: 0,
                    pushed_at: SimTime::ZERO,
                });
                s
            }
        };
        let meta = &mut self.slots[slot as usize];
        debug_assert!(!meta.live, "free list pointed at a live slot");
        meta.live = true;
        meta.seq = seq;
        meta.pushed_at = pushed_at;
        let token = EventToken {
            slot,
            gen: meta.gen,
        };
        let ev = Event {
            at,
            seq,
            pushed_at,
            kind,
            slot,
            slot_gen: meta.gen,
        };
        self.live += 1;
        self.sift_up(ev);
        token
    }

    /// Discards tombstones at the heap root.
    fn clean_root(&mut self) {
        while let Some(root) = self.heap.first() {
            if root.slot != NO_SLOT && self.slots[root.slot as usize].gen != root.slot_gen {
                self.remove_root();
            } else {
                break;
            }
        }
    }

    /// The earliest live event, without removing it.
    pub fn peek(&mut self) -> Option<&Event> {
        self.clean_root();
        self.heap.first()
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        self.clean_root();
        let ev = *self.heap.first()?;
        self.remove_root();
        if ev.slot != NO_SLOT {
            let meta = &mut self.slots[ev.slot as usize];
            debug_assert!(meta.live && meta.gen == ev.slot_gen);
            meta.gen = meta.gen.wrapping_add(1);
            meta.live = false;
            self.free_slots.push(ev.slot);
        }
        self.live -= 1;
        Some(ev)
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    #[inline]
    fn before(a: &Event, b: &Event) -> bool {
        (a.at, a.seq) < (b.at, b.seq)
    }

    /// Inserts `ev` as a new leaf and restores the heap property upward.
    ///
    /// Hole-based: ancestors slide down into the vacancy and `ev` lands
    /// once at its final slot, instead of swapping (a 64-byte event) at
    /// every level. The comparison sequence — and therefore the final
    /// layout and every subsequent pop — is identical to the swap form.
    fn sift_up(&mut self, ev: Event) {
        let mut i = self.heap.len();
        self.heap.push(ev);
        while i > 0 {
            let parent = (i - 1) / 4;
            if Self::before(&ev, &self.heap[parent]) {
                self.heap[i] = self.heap[parent];
                i = parent;
            } else {
                break;
            }
        }
        self.heap[i] = ev;
    }

    /// Removes the root and restores the heap property downward
    /// (hole-based, like [`EventQueue::sift_up`]).
    fn remove_root(&mut self) {
        let last = self.heap.pop().expect("remove_root on empty heap");
        if self.heap.is_empty() {
            return;
        }
        let len = self.heap.len();
        let mut i = 0;
        loop {
            let first_child = 4 * i + 1;
            if first_child >= len {
                break;
            }
            let mut best = first_child;
            let end = (first_child + 4).min(len);
            for c in first_child + 1..end {
                if Self::before(&self.heap[c], &self.heap[best]) {
                    best = c;
                }
            }
            if Self::before(&self.heap[best], &last) {
                self.heap[i] = self.heap[best];
                i = best;
            } else {
                break;
            }
        }
        self.heap[i] = last;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(
            SimTime::from_micros(30),
            EventKind::PrefillDone {
                replica: 2,
                epoch: 0,
            },
        );
        q.push(
            SimTime::from_micros(10),
            EventKind::PrefillDone {
                replica: 0,
                epoch: 0,
            },
        );
        q.push(
            SimTime::from_micros(20),
            EventKind::PrefillDone {
                replica: 1,
                epoch: 0,
            },
        );
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| e.at.as_micros())
            .collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn simultaneous_events_fire_fifo() {
        let mut q = EventQueue::new();
        for r in 0..5 {
            q.push(
                SimTime::from_micros(7),
                EventKind::DecodeStepDone {
                    replica: r,
                    epoch: 0,
                },
            );
        }
        let order: Vec<usize> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::DecodeStepDone { replica, .. } => replica,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn same_time_ties_break_by_insertion_order_across_runs() {
        // Two events at the same SimTime must pop in push order, and the
        // whole pop sequence must be identical across independent runs
        // (bit-identical reproduction depends on this).
        let run = || {
            let mut q = EventQueue::new();
            // Interleave ties at t=5 with events at other times.
            q.push(SimTime::from_micros(9), EventKind::ServiceResumed);
            q.push(
                SimTime::from_micros(5),
                EventKind::PrefillDone {
                    replica: 0,
                    epoch: 0,
                },
            );
            q.push(
                SimTime::from_micros(5),
                EventKind::WorkDone {
                    replica: 1,
                    epoch: 0,
                },
            );
            q.push(
                SimTime::from_micros(1),
                EventKind::FaultTriggered { index: 0 },
            );
            q.push(
                SimTime::from_micros(5),
                EventKind::DecodeStepDone {
                    replica: 2,
                    epoch: 0,
                },
            );
            std::iter::from_fn(move || q.pop())
                .map(|e| (e.at.as_micros(), e.kind))
                .collect::<Vec<_>>()
        };
        let first = run();
        let kinds_at_5: Vec<&EventKind> = first
            .iter()
            .filter(|(t, _)| *t == 5)
            .map(|(_, k)| k)
            .collect();
        assert!(matches!(
            kinds_at_5[0],
            EventKind::PrefillDone { replica: 0, .. }
        ));
        assert!(matches!(
            kinds_at_5[1],
            EventKind::WorkDone { replica: 1, .. }
        ));
        assert!(matches!(
            kinds_at_5[2],
            EventKind::DecodeStepDone { replica: 2, .. }
        ));
        for _ in 0..10 {
            assert_eq!(run(), first, "pop order must not vary across runs");
        }
    }

    #[test]
    fn len_tracks_population() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(
            SimTime::ZERO,
            EventKind::PrefillDone {
                replica: 0,
                epoch: 0,
            },
        );
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_removes_without_firing() {
        let mut q = EventQueue::new();
        let t = q.push_cancellable(SimTime::from_micros(5), EventKind::ServiceResumed);
        q.push(
            SimTime::from_micros(7),
            EventKind::PrefillDone {
                replica: 0,
                epoch: 0,
            },
        );
        assert_eq!(q.len(), 2);
        assert!(q.cancel(t));
        assert_eq!(q.len(), 1);
        assert!(!q.cancel(t), "double cancel is inert");
        let ev = q.pop().unwrap();
        assert_eq!(ev.at.as_micros(), 7, "cancelled event never surfaces");
        assert!(q.pop().is_none());
    }

    #[test]
    fn fired_tokens_go_stale() {
        let mut q = EventQueue::new();
        let t = q.push_cancellable(SimTime::from_micros(5), EventKind::ServiceResumed);
        assert!(q.pop().is_some());
        assert!(!q.cancel(t), "token of a fired event is stale");
        // The slot is recycled; the old token must not cancel the new event.
        let t2 = q.push_cancellable(SimTime::from_micros(9), EventKind::ServiceResumed);
        assert!(!q.cancel(t));
        assert_eq!(q.len(), 1);
        assert!(q.cancel(t2));
    }

    #[test]
    fn reschedule_preserves_seq_and_pushed_at() {
        let mut q = EventQueue::new();
        q.set_now(SimTime::from_micros(3));
        let t = q.push_cancellable(SimTime::from_micros(10), EventKind::ServiceResumed);
        q.set_now(SimTime::from_micros(4));
        q.push(
            SimTime::from_micros(20),
            EventKind::PrefillDone {
                replica: 0,
                epoch: 0,
            },
        );
        // Move the cancellable event to the same instant as the plain one:
        // its original (earlier) seq must still win the tie, and its
        // pushed_at must still read 3.
        let t = q
            .reschedule(t, SimTime::from_micros(20), EventKind::ServiceResumed)
            .expect("token current");
        assert!(!q.cancel(EventToken {
            slot: t.slot,
            gen: t.gen.wrapping_sub(1)
        }));
        let first = q.pop().unwrap();
        assert_eq!(first.kind, EventKind::ServiceResumed);
        assert_eq!(first.pushed_at.as_micros(), 3);
        let second = q.pop().unwrap();
        assert!(matches!(second.kind, EventKind::PrefillDone { .. }));
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn reinsert_restores_popped_ordering_stamps() {
        let mut q = EventQueue::new();
        q.set_now(SimTime::from_micros(2));
        let _early = q.push_cancellable(SimTime::from_micros(10), EventKind::ServiceResumed);
        let popped = q.pop().unwrap();
        // A later push gets a later seq...
        q.push(
            SimTime::from_micros(10),
            EventKind::PrefillDone {
                replica: 0,
                epoch: 0,
            },
        );
        // ...but reinserting the popped event with its original stamps puts
        // it back in front at the same instant, with pushed_at preserved.
        let t = q.reinsert(
            SimTime::from_micros(10),
            EventKind::ServiceResumed,
            popped.seq,
            popped.pushed_at,
        );
        let first = q.pop().unwrap();
        assert_eq!(first.kind, EventKind::ServiceResumed);
        assert_eq!(first.seq, popped.seq);
        assert_eq!(first.pushed_at.as_micros(), 2);
        assert!(!q.cancel(t), "token of the re-fired event is stale");
        assert!(matches!(
            q.pop().unwrap().kind,
            EventKind::PrefillDone { .. }
        ));
    }

    #[test]
    fn peek_skips_tombstones() {
        let mut q = EventQueue::new();
        let t = q.push_cancellable(SimTime::from_micros(1), EventKind::ServiceResumed);
        q.push(
            SimTime::from_micros(2),
            EventKind::PrefillDone {
                replica: 7,
                epoch: 0,
            },
        );
        q.cancel(t);
        let ev = q.peek().expect("one live event");
        assert_eq!(ev.at.as_micros(), 2);
        assert!(matches!(ev.kind, EventKind::PrefillDone { replica: 7, .. }));
    }

    /// Model-based property sweep: under random interleaved push /
    /// push_cancellable / cancel / reschedule / pop, the queue pops exactly
    /// the live events of a reference model, in `(at, seq)` order. The
    /// workspace's `proptest` is a placeholder, so this runs as a seeded
    /// deterministic sweep over many xorshift-driven op sequences.
    #[test]
    fn random_ops_match_reference_model() {
        struct Rng(u64);
        impl Rng {
            fn next(&mut self) -> u64 {
                let mut x = self.0;
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                self.0 = x;
                x
            }
        }

        for seed in 1u64..=64 {
            let mut rng = Rng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            let mut q = EventQueue::new();
            // Reference: Vec of (at, seq, live-flag); tokens index into it.
            let mut model: Vec<(u64, u64, bool)> = Vec::new();
            let mut tokens: Vec<(EventToken, usize)> = Vec::new();
            let mut next_seq = 0u64;
            let ops = 40 + (rng.next() % 160) as usize;
            for _ in 0..ops {
                match rng.next() % 5 {
                    0 => {
                        let at = rng.next() % 100;
                        q.push(SimTime::from_micros(at), EventKind::ServiceResumed);
                        model.push((at, next_seq, true));
                        next_seq += 1;
                    }
                    1 => {
                        let at = rng.next() % 100;
                        let t =
                            q.push_cancellable(SimTime::from_micros(at), EventKind::ServiceResumed);
                        model.push((at, next_seq, true));
                        tokens.push((t, model.len() - 1));
                        next_seq += 1;
                    }
                    2 => {
                        if tokens.is_empty() {
                            continue;
                        }
                        let i = (rng.next() as usize) % tokens.len();
                        let (t, mi) = tokens.swap_remove(i);
                        let was_live = model[mi].2;
                        assert_eq!(q.cancel(t), was_live, "seed {seed}");
                        model[mi].2 = false;
                    }
                    3 => {
                        if tokens.is_empty() {
                            continue;
                        }
                        let slot = (rng.next() as usize) % tokens.len();
                        let at = rng.next() % 100;
                        let (t, mi) = tokens[slot];
                        match q.reschedule(t, SimTime::from_micros(at), EventKind::ServiceResumed) {
                            Some(nt) => {
                                assert!(model[mi].2, "seed {seed}");
                                model[mi].0 = at; // seq preserved
                                tokens[slot] = (nt, mi);
                            }
                            None => {
                                assert!(!model[mi].2, "seed {seed}");
                                tokens.swap_remove(slot);
                            }
                        }
                    }
                    _ => {
                        let got = q.pop().map(|e| (e.at.as_micros(), e.seq));
                        let want = model
                            .iter()
                            .enumerate()
                            .filter(|(_, e)| e.2)
                            .min_by_key(|(_, e)| (e.0, e.1))
                            .map(|(i, e)| (i, e.0, e.1));
                        match (got, want) {
                            (Some(g), Some((wi, wat, wseq))) => {
                                assert_eq!(g, (wat, wseq), "seed {seed}");
                                model[wi].2 = false;
                            }
                            (None, None) => {}
                            (g, w) => panic!("seed {seed}: pop mismatch: {g:?} vs {w:?}"),
                        }
                    }
                }
                assert_eq!(q.len(), model.iter().filter(|e| e.2).count(), "seed {seed}");
            }
            // Drain: remaining live events must surface in (at, seq) order.
            let mut rest: Vec<(u64, u64)> =
                model.iter().filter(|e| e.2).map(|e| (e.0, e.1)).collect();
            rest.sort_unstable();
            let drained: Vec<(u64, u64)> = std::iter::from_fn(|| q.pop())
                .map(|e| (e.at.as_micros(), e.seq))
                .collect();
            assert_eq!(drained, rest, "seed {seed}");
        }
    }
}
