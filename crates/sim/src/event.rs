//! The discrete-event queue.
//!
//! Events are totally ordered by `(time, sequence)`: the sequence number is
//! a monotonically increasing tiebreaker, so simultaneous events fire in
//! insertion order and runs are exactly reproducible.
//!
//! # Determinism guarantee
//!
//! [`EventQueue::push`] stamps each event with the next value of an
//! internal counter, and [`EventQueue::pop`] orders by `(at, seq)`. Two
//! events pushed at the same [`SimTime`] therefore always pop in the order
//! they were pushed — on every run, on every platform. The whole
//! simulator's reproducibility (bit-identical metrics for identical
//! inputs) reduces to this property plus the determinism of
//! [`crate::router::StrideRouter`]; nothing else in the engine breaks
//! ties.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use ts_common::{Request, RequestId, SimTime};

/// What happens when an event fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A request arrives at the coordinator.
    Arrival(Request),
    /// Prefill replica `replica` finished its current batch.
    PrefillDone {
        /// Index into the engine's prefill replica list.
        replica: usize,
        /// Liveness epoch of the replica when the batch launched. A replica
        /// death bumps the epoch, so completions scheduled before the fault
        /// are recognized as stale and discarded.
        epoch: u64,
    },
    /// Prefill replica `replica`'s first pipeline stage freed up: with
    /// pipeline parallelism a new batch can enter while earlier batches
    /// drain through later stages.
    PrefillSlotFree {
        /// Index into the engine's prefill replica list.
        replica: usize,
        /// Liveness epoch at scheduling time (see [`EventKind::PrefillDone`]).
        epoch: u64,
    },
    /// The KV cache of `request` finished its transfer to decode replica
    /// `replica`.
    KvTransferDone {
        /// Index into the engine's decode replica list.
        replica: usize,
        /// The request whose cache arrived.
        request: RequestId,
        /// Transfer attempt number. Link faults cause retries; a retry bumps
        /// the attempt in the engine's transfer registry so completions of
        /// superseded attempts are discarded.
        attempt: u32,
    },
    /// A delayed (backed-off) KV transfer enters the flow-level fabric.
    /// Only scheduled when [`crate::config::SimConfig::network_contention`]
    /// is on; immediate launches start their flow inline.
    KvFlowLaunch {
        /// The request whose KV cache starts moving.
        request: RequestId,
        /// Transfer attempt number this launch belongs to (see
        /// [`EventKind::KvTransferDone`]); a superseding retry makes the
        /// launch stale.
        attempt: u32,
    },
    /// A completion estimate of the flow-level fabric matured for
    /// `request`'s KV flow. The fabric re-estimates *every* flow whenever
    /// one starts or finishes, so most of these events are stale by the
    /// time they fire; `epoch` lets the fabric recognize the current one.
    KvFlowDone {
        /// The request whose KV flow (maybe) drained.
        request: RequestId,
        /// Fabric epoch of the estimate; stale epochs are discarded,
        /// mirroring the replica-liveness epochs of
        /// [`EventKind::PrefillDone`].
        epoch: u64,
    },
    /// Decode replica `replica` finished one decode step.
    DecodeStepDone {
        /// Index into the engine's decode replica list.
        replica: usize,
        /// Liveness epoch at scheduling time (see [`EventKind::PrefillDone`]).
        epoch: u64,
    },
    /// Colocated replica `replica` finished its current work item.
    WorkDone {
        /// Index into the colocated engine's replica list.
        replica: usize,
        /// Liveness epoch at scheduling time (see [`EventKind::PrefillDone`]).
        epoch: u64,
    },
    /// Fault `index` of the active fault script takes effect (replica or
    /// link goes down/up, or a service pause begins). The capacity change is
    /// immediate; recovery waits for [`EventKind::FaultDetected`].
    FaultTriggered {
        /// Index into the fault script's fault list.
        index: usize,
    },
    /// The heartbeat monitor notices fault `index` (one detection delay
    /// after the fault): the engine masks routing away from dead replicas
    /// and re-queues their in-flight work if recovery is enabled.
    FaultDetected {
        /// Index into the fault script's fault list.
        index: usize,
    },
    /// A service pause (reload blackout) ended; stalled arrivals re-enter
    /// the coordinator.
    ServiceResumed,
    /// The hedging timer for `request` matured: if its prefill or KV
    /// transfer is still outstanding, the engine launches a duplicate on an
    /// alternate replica pair (first completion wins). Only scheduled when
    /// [`crate::config::SimConfig::hedge_timeout`] is set.
    HedgeCheck {
        /// The request whose progress the timer inspects.
        request: RequestId,
    },
    /// A heartbeat window elapsed for a node with flaky heartbeats
    /// ([`crate::fault::FaultKind::HeartbeatFlaky`]): the engine draws from
    /// the seeded fault RNG to decide whether this beat was lost, masking or
    /// readmitting the node in routing accordingly. Self-reschedules while
    /// the node's loss probability is above zero.
    FlakyBeat {
        /// Host index (prefill replicas first, then decode replicas; plain
        /// replica index for colocated engines).
        node: usize,
    },
    /// A quarantine probation period ended: the straggler detector
    /// re-admits the replica into routing (optimistically; it re-quarantines
    /// if still slow). Stale probes — scheduled before a later re-quarantine
    /// — are discarded by comparing against the recorded quarantine expiry.
    ReadmitProbe {
        /// Whether the replica is a prefill (`true`) or decode (`false`)
        /// replica; ignored for colocated engines.
        prefill: bool,
        /// Index into the respective replica list.
        replica: usize,
    },
}

/// A scheduled event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Fire time.
    pub at: SimTime,
    /// Insertion-order tiebreaker.
    pub seq: u64,
    /// Payload.
    pub kind: EventKind,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // reversed: BinaryHeap is a max-heap, we want earliest first
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic min-time event queue.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Event>,
    seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `kind` at `at`.
    pub fn push(&mut self, at: SimTime, kind: EventKind) {
        self.heap.push(Event {
            at,
            seq: self.seq,
            kind,
        });
        self.seq += 1;
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(
            SimTime::from_micros(30),
            EventKind::PrefillDone {
                replica: 2,
                epoch: 0,
            },
        );
        q.push(
            SimTime::from_micros(10),
            EventKind::PrefillDone {
                replica: 0,
                epoch: 0,
            },
        );
        q.push(
            SimTime::from_micros(20),
            EventKind::PrefillDone {
                replica: 1,
                epoch: 0,
            },
        );
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| e.at.as_micros())
            .collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn simultaneous_events_fire_fifo() {
        let mut q = EventQueue::new();
        for r in 0..5 {
            q.push(
                SimTime::from_micros(7),
                EventKind::DecodeStepDone {
                    replica: r,
                    epoch: 0,
                },
            );
        }
        let order: Vec<usize> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::DecodeStepDone { replica, .. } => replica,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn same_time_ties_break_by_insertion_order_across_runs() {
        // Two events at the same SimTime must pop in push order, and the
        // whole pop sequence must be identical across independent runs
        // (bit-identical reproduction depends on this).
        let run = || {
            let mut q = EventQueue::new();
            // Interleave ties at t=5 with events at other times.
            q.push(SimTime::from_micros(9), EventKind::ServiceResumed);
            q.push(
                SimTime::from_micros(5),
                EventKind::PrefillDone {
                    replica: 0,
                    epoch: 0,
                },
            );
            q.push(
                SimTime::from_micros(5),
                EventKind::WorkDone {
                    replica: 1,
                    epoch: 0,
                },
            );
            q.push(
                SimTime::from_micros(1),
                EventKind::FaultTriggered { index: 0 },
            );
            q.push(
                SimTime::from_micros(5),
                EventKind::DecodeStepDone {
                    replica: 2,
                    epoch: 0,
                },
            );
            std::iter::from_fn(move || q.pop())
                .map(|e| (e.at.as_micros(), e.kind))
                .collect::<Vec<_>>()
        };
        let first = run();
        let kinds_at_5: Vec<&EventKind> = first
            .iter()
            .filter(|(t, _)| *t == 5)
            .map(|(_, k)| k)
            .collect();
        assert!(matches!(
            kinds_at_5[0],
            EventKind::PrefillDone { replica: 0, .. }
        ));
        assert!(matches!(
            kinds_at_5[1],
            EventKind::WorkDone { replica: 1, .. }
        ));
        assert!(matches!(
            kinds_at_5[2],
            EventKind::DecodeStepDone { replica: 2, .. }
        ));
        for _ in 0..10 {
            assert_eq!(run(), first, "pop order must not vary across runs");
        }
    }

    #[test]
    fn len_tracks_population() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(
            SimTime::ZERO,
            EventKind::PrefillDone {
                replica: 0,
                epoch: 0,
            },
        );
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
