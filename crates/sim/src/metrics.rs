//! Per-request records and serving metrics.
//!
//! Mirrors the paper's metric suite (§2): TTFT, TPOT, E2E latency per
//! request; system SLO attainment (fraction of requests meeting a deadline,
//! per criterion or all three jointly); and throughput in requests/s and
//! tokens/s.

use serde::{Deserialize, Serialize};
use ts_common::{ModelId, Request, SimDuration, SimTime, SloKind, SloSpec};

/// Timing record for one completed request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RequestRecord {
    /// The request served.
    pub request: Request,
    /// Index of the prefill replica that served it (colocated engines use
    /// the single replica index for both).
    pub prefill_replica: usize,
    /// Index of the decode replica that served it.
    pub decode_replica: usize,
    /// Time the first token was emitted (end of prefill).
    pub first_token_at: SimTime,
    /// Time the last token was emitted.
    pub finished_at: SimTime,
    /// Longest gap between two consecutive output tokens (zero for
    /// single-token outputs) — the inter-token latency (ITL) tail, which
    /// chunked-prefill scheduling is designed to bound.
    pub max_token_gap: SimDuration,
    /// Time the KV transfer spent queued on the sender before its bytes
    /// started moving (zero for colocated engines, single-token requests,
    /// and fabric runs, where flows start immediately and contention shows
    /// up in [`RequestRecord::kv_wire_time`] instead). `#[serde(default)]`
    /// keeps records serialized before this field existed deserializable.
    #[serde(default)]
    pub kv_queue_wait: SimDuration,
    /// Time the KV bytes of the *delivered* attempt spent on the wire
    /// (startup alpha included).
    #[serde(default)]
    pub kv_wire_time: SimDuration,
    /// When the KV cache arrived at the decode replica; `None` when the
    /// request never crossed the inter-replica fabric (colocated engine,
    /// single-token output).
    #[serde(default)]
    pub kv_done_at: Option<SimTime>,
}

impl RequestRecord {
    /// Time to first token.
    pub fn ttft(&self) -> SimDuration {
        self.first_token_at - self.request.arrival
    }

    /// Total KV-transfer overhead on the request's critical path: sender
    /// queue wait plus wire time. Zero when no transfer happened.
    pub fn kv_overhead(&self) -> SimDuration {
        self.kv_queue_wait + self.kv_wire_time
    }

    /// Average time per output token during decoding (zero for single-token
    /// outputs, which trivially meet any TPOT deadline).
    pub fn tpot(&self) -> SimDuration {
        let steps = self.request.decode_steps();
        if steps == 0 {
            return SimDuration::ZERO;
        }
        (self.finished_at - self.first_token_at) / steps as u64
    }

    /// End-to-end latency.
    pub fn e2e(&self) -> SimDuration {
        self.finished_at - self.request.arrival
    }

    /// Latency under one criterion.
    pub fn latency(&self, kind: SloKind) -> SimDuration {
        match kind {
            SloKind::Ttft => self.ttft(),
            SloKind::Tpot => self.tpot(),
            SloKind::E2e => self.e2e(),
        }
    }

    /// Whether the request meets all three deadlines of `slo`.
    pub fn meets(&self, slo: &SloSpec) -> bool {
        SloKind::ALL
            .iter()
            .all(|&k| self.latency(k) <= slo.deadline(k))
    }
}

/// Per-model request conservation for one tenant of a multi-model run:
/// every submitted request must end up exactly once in `completed`,
/// `dropped`, or `rejected`. The engines assert this identity per
/// [`ModelId`] at the end of every run with a non-empty catalog.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelConservation {
    /// The tenant these counts belong to.
    pub model: ModelId,
    /// Requests of this model handed to the engine.
    pub submitted: usize,
    /// Requests of this model that finished all output tokens.
    pub completed: usize,
    /// Requests of this model that entered service but never finished.
    pub dropped: usize,
    /// Requests of this model refused admission.
    pub rejected: usize,
}

impl ModelConservation {
    /// Whether the conservation identity
    /// `completed + dropped + rejected == submitted` holds.
    pub fn balanced(&self) -> bool {
        self.completed + self.dropped + self.rejected == self.submitted
    }
}

/// Recovery bookkeeping accumulated by a fault-injected simulation run.
///
/// All counters are zero for a run without faults, so `Metrics` equality
/// (used by determinism tests) extends naturally. Both engines produce
/// these with identical semantics — the phase-split
/// [`crate::engine::Simulation`] and the colocated
/// [`crate::colocated::ColocatedSimulation`] share one fault layer in
/// [`crate::exec`] — so failure experiments can compare recovery behaviour
/// across system architectures directly. (`kv_transfer_retries` stays zero
/// for colocated runs: there are no inter-replica transfers to retry.)
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RecoveryCounters {
    /// Queued or in-flight prefill requests re-routed to a surviving
    /// replica after their original replica died.
    pub requeued_requests: usize,
    /// Context tokens re-prefilled because a decode replica lost its KV
    /// cache (prompt plus already-generated tokens — the paper's lost work).
    pub reprefilled_tokens: u64,
    /// KV transfers re-sent after a link fault (each backoff retry counts
    /// once).
    pub kv_transfer_retries: usize,
    /// Per-fault time from the fault taking effect until every affected
    /// request was either re-admitted to decoding, completed, or shed.
    pub recovery_times: Vec<SimDuration>,
    /// Hedged duplicates launched for stuck prefills / KV transfers
    /// (gray-failure mitigation).
    #[serde(default)]
    pub hedges_launched: usize,
    /// Hedges whose duplicate beat the original (first-completion-wins).
    #[serde(default)]
    pub hedges_won: usize,
    /// Replicas removed from routing by straggler detection or a
    /// flaky-heartbeat false positive (each quarantine episode counts once).
    #[serde(default)]
    pub quarantines: usize,
    /// Quarantined (or spuriously dead) replicas returned to routing.
    #[serde(default)]
    pub readmissions: usize,
    /// Requests shed because their SLO-derived deadline had already passed
    /// before service could start (counted in `Metrics::num_rejected`).
    #[serde(default)]
    pub deadline_shed: usize,
    /// KV transfers dropped after exhausting their retry budget (counted in
    /// `Metrics::num_dropped`).
    #[serde(default)]
    pub retry_budget_exhausted: usize,
    /// Per-model request-conservation counts, sorted by [`ModelId`]. Empty
    /// for single-model runs (an empty [`crate::SimConfig::models`]
    /// catalog), which keeps legacy `Metrics` values — and their serialized
    /// form — byte-identical.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub per_model: Vec<ModelConservation>,
}

impl RecoveryCounters {
    /// Whether any recovery action was taken.
    pub fn any(&self) -> bool {
        self.requeued_requests > 0
            || self.reprefilled_tokens > 0
            || self.kv_transfer_retries > 0
            || !self.recovery_times.is_empty()
            || self.hedges_launched > 0
            || self.quarantines > 0
            || self.readmissions > 0
            || self.deadline_shed > 0
            || self.retry_budget_exhausted > 0
    }

    /// Longest time-to-recover across faults, or `None` if no fault
    /// affected any in-flight request.
    pub fn max_time_to_recover(&self) -> Option<SimDuration> {
        self.recovery_times.iter().max().copied()
    }
}

/// Aggregated results of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    records: Vec<RequestRecord>,
    /// Requests submitted but never completed (overload / capacity loss).
    dropped: usize,
    /// Requests refused admission because no live route existed and the
    /// stall queue was full (distinct from `dropped`: these never entered
    /// service).
    rejected: usize,
    horizon: SimDuration,
    recovery: RecoveryCounters,
}

impl Metrics {
    /// Builds metrics from completed-request records over a time horizon.
    pub fn new(records: Vec<RequestRecord>, dropped: usize, horizon: SimDuration) -> Self {
        Metrics {
            records,
            dropped,
            rejected: 0,
            horizon,
            recovery: RecoveryCounters::default(),
        }
    }

    /// Builds metrics from a fault-injected run, including shed requests and
    /// recovery counters.
    pub fn with_recovery(
        records: Vec<RequestRecord>,
        dropped: usize,
        rejected: usize,
        horizon: SimDuration,
        recovery: RecoveryCounters,
    ) -> Self {
        Metrics {
            records,
            dropped,
            rejected,
            horizon,
            recovery,
        }
    }

    /// Completed request count.
    pub fn num_completed(&self) -> usize {
        self.records.len()
    }

    /// Requests that never finished.
    pub fn num_dropped(&self) -> usize {
        self.dropped
    }

    /// Requests shed at admission (no live route and the stall queue was
    /// full).
    pub fn num_rejected(&self) -> usize {
        self.rejected
    }

    /// Recovery bookkeeping (all zero for runs without faults).
    pub fn recovery(&self) -> &RecoveryCounters {
        &self.recovery
    }

    /// All records.
    pub fn records(&self) -> &[RequestRecord] {
        &self.records
    }

    /// The simulated horizon (used for throughput denominators).
    pub fn horizon(&self) -> SimDuration {
        self.horizon
    }

    /// Fraction of *submitted* requests meeting the deadline for `kind`.
    /// Dropped and rejected requests count as misses.
    pub fn slo_attainment(&self, slo: &SloSpec, kind: SloKind) -> f64 {
        let total = self.records.len() + self.dropped + self.rejected;
        if total == 0 {
            return 1.0;
        }
        let ok = self
            .records
            .iter()
            .filter(|r| r.latency(kind) <= slo.deadline(kind))
            .count();
        ok as f64 / total as f64
    }

    /// Fraction of submitted requests meeting **all three** deadlines.
    pub fn joint_attainment(&self, slo: &SloSpec) -> f64 {
        let total = self.records.len() + self.dropped + self.rejected;
        if total == 0 {
            return 1.0;
        }
        let ok = self.records.iter().filter(|r| r.meets(slo)).count();
        ok as f64 / total as f64
    }

    /// The minimum SLO scale at which attainment of `kind` reaches `goal`
    /// (the paper's "latency deadline for 90%/99% attainment"), searched
    /// over the given scale grid. Returns `None` if no scale suffices.
    pub fn min_scale_for(
        &self,
        base: &SloSpec,
        kind: SloKind,
        goal: f64,
        scales: &[f64],
    ) -> Option<f64> {
        scales
            .iter()
            .copied()
            .find(|&s| self.slo_attainment(&base.scaled(s), kind) >= goal)
    }

    /// Completed requests per second.
    pub fn throughput_rps(&self) -> f64 {
        self.records.len() as f64 / self.horizon.as_secs_f64().max(1e-9)
    }

    /// Generated tokens per second (output tokens only).
    pub fn throughput_tokens(&self) -> f64 {
        let tokens: u64 = self
            .records
            .iter()
            .map(|r| r.request.output_len as u64)
            .sum();
        tokens as f64 / self.horizon.as_secs_f64().max(1e-9)
    }

    /// Processed tokens per second (prompt + output), the paper's Figure 6
    /// y-axis flavour.
    pub fn throughput_total_tokens(&self) -> f64 {
        let tokens: u64 = self.records.iter().map(|r| r.request.total_tokens()).sum();
        tokens as f64 / self.horizon.as_secs_f64().max(1e-9)
    }

    /// Attainment as a function of SLO scale for one criterion — the series
    /// behind the paper's Figure 7/8 curves.
    pub fn attainment_curve(
        &self,
        base: &SloSpec,
        kind: SloKind,
        scales: &[f64],
    ) -> Vec<(f64, f64)> {
        scales
            .iter()
            .map(|&s| (s, self.slo_attainment(&base.scaled(s), kind)))
            .collect()
    }

    /// Restricts the records to requests that *arrived* within
    /// `[from, to)` — measurement hygiene for steady-state numbers (drop
    /// warm-up and drain artifacts). Dropped/rejected counts and recovery
    /// counters are cleared because their arrival times are unknown here.
    pub fn windowed(&self, from: SimTime, to: SimTime) -> Metrics {
        let records: Vec<RequestRecord> = self
            .records
            .iter()
            .filter(|r| r.request.arrival >= from && r.request.arrival < to)
            .copied()
            .collect();
        Metrics {
            records,
            dropped: 0,
            rejected: 0,
            horizon: to.saturating_since(from),
            recovery: RecoveryCounters::default(),
        }
    }

    /// Distinct models appearing in the run, sorted by id: every tenant
    /// tracked by the per-model conservation counters plus any model seen
    /// among completed records. A single-model run reports `[ModelId(0)]`
    /// when it completed anything, `[]` otherwise.
    pub fn models(&self) -> Vec<ModelId> {
        let mut ids: Vec<ModelId> = self.recovery.per_model.iter().map(|c| c.model).collect();
        ids.extend(self.records.iter().map(|r| r.request.model));
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Per-model view of the run: records filtered to `model`, with
    /// dropped/rejected counts taken from the per-model conservation
    /// counters (zero when the run did not track this model). All the
    /// aggregate accessors — attainment, throughput, percentiles — then
    /// report that tenant alone, so per-tenant SLOs can be checked against
    /// per-tenant deadlines.
    pub fn for_model(&self, model: ModelId) -> Metrics {
        let records: Vec<RequestRecord> = self
            .records
            .iter()
            .filter(|r| r.request.model == model)
            .copied()
            .collect();
        let conservation = self
            .recovery
            .per_model
            .iter()
            .copied()
            .find(|c| c.model == model);
        let recovery = RecoveryCounters {
            per_model: conservation.into_iter().collect(),
            ..RecoveryCounters::default()
        };
        Metrics {
            records,
            dropped: conservation.map_or(0, |c| c.dropped),
            rejected: conservation.map_or(0, |c| c.rejected),
            horizon: self.horizon,
            recovery,
        }
    }

    /// `p`-quantile of the per-request maximum inter-token gap, or `None`
    /// with no completions.
    pub fn itl_percentile(&self, p: f64) -> Option<SimDuration> {
        let v: Vec<SimDuration> = self.records.iter().map(|r| r.max_token_gap).collect();
        ts_common::percentile(&v, p)
    }

    /// `p`-quantile of latency under `kind` (e.g. 0.99), or `None` with no
    /// completions.
    pub fn latency_percentile(&self, kind: SloKind, p: f64) -> Option<SimDuration> {
        let v: Vec<SimDuration> = self.records.iter().map(|r| r.latency(kind)).collect();
        ts_common::percentile(&v, p)
    }

    /// Builds a mergeable quantile sketch of latency under `kind` at the
    /// given relative accuracy — the approximate route for consumers that
    /// only need tail *estimates* (exporters, dashboards, cross-segment
    /// merges) where [`Metrics::latency_percentile`]'s exact sort is
    /// overkill. Estimates agree with the exact path within `alpha`
    /// relative error (pinned by the sketch-parity tests); exact reporting
    /// paths keep `latency_percentile`.
    pub fn latency_sketch(&self, kind: SloKind, alpha: f64) -> ts_telemetry::QuantileSketch {
        let mut s = ts_telemetry::QuantileSketch::new(alpha);
        for r in &self.records {
            s.insert_duration(r.latency(kind));
        }
        s
    }

    /// Builds a mergeable quantile sketch of the per-request maximum
    /// inter-token gap (the approximate counterpart of
    /// [`Metrics::itl_percentile`]).
    pub fn itl_sketch(&self, alpha: f64) -> ts_telemetry::QuantileSketch {
        let mut s = ts_telemetry::QuantileSketch::new(alpha);
        for r in &self.records {
            s.insert_duration(r.max_token_gap);
        }
        s
    }

    /// Mean latency under `kind`, or `None` with no completions.
    pub fn mean_latency(&self, kind: SloKind) -> Option<SimDuration> {
        if self.records.is_empty() {
            return None;
        }
        let total: SimDuration = self.records.iter().map(|r| r.latency(kind)).sum();
        Some(total / self.records.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_common::RequestId;

    fn record(arrival_s: f64, first_s: f64, done_s: f64, out: u32) -> RequestRecord {
        RequestRecord {
            request: Request::new(RequestId(0), SimTime::from_secs_f64(arrival_s), 512, out),
            prefill_replica: 0,
            decode_replica: 0,
            first_token_at: SimTime::from_secs_f64(first_s),
            finished_at: SimTime::from_secs_f64(done_s),
            max_token_gap: SimDuration::ZERO,
            kv_queue_wait: SimDuration::ZERO,
            kv_wire_time: SimDuration::ZERO,
            kv_done_at: None,
        }
    }

    fn slo() -> SloSpec {
        SloSpec::new(
            SimDuration::from_millis(500),
            SimDuration::from_millis(100),
            SimDuration::from_secs(5),
        )
    }

    #[test]
    fn per_request_latencies() {
        let r = record(1.0, 1.4, 2.4, 11); // 10 decode steps over 1s
        assert_eq!(r.ttft(), SimDuration::from_millis(400));
        assert_eq!(r.tpot(), SimDuration::from_millis(100));
        assert_eq!(r.e2e(), SimDuration::from_millis(1400));
        assert!(r.meets(&slo()));
    }

    #[test]
    fn single_token_output_has_zero_tpot() {
        let r = record(0.0, 0.3, 0.3, 1);
        assert_eq!(r.tpot(), SimDuration::ZERO);
    }

    #[test]
    fn attainment_counts_dropped_as_misses() {
        let m = Metrics::new(
            vec![record(0.0, 0.3, 1.0, 8)],
            1,
            SimDuration::from_secs(10),
        );
        assert_eq!(m.slo_attainment(&slo(), SloKind::Ttft), 0.5);
        assert_eq!(m.joint_attainment(&slo()), 0.5);
    }

    #[test]
    fn min_scale_search() {
        // TTFT = 400ms; base deadline 500ms -> scale 1.0 works
        let m = Metrics::new(vec![record(0.0, 0.4, 1.0, 8)], 0, SimDuration::from_secs(1));
        let scales = [0.5, 1.0, 2.0];
        assert_eq!(
            m.min_scale_for(&slo(), SloKind::Ttft, 1.0, &scales),
            Some(1.0)
        );
        // with a dropped request nothing reaches 100%
        let m2 = Metrics::new(vec![record(0.0, 0.4, 1.0, 8)], 1, SimDuration::from_secs(1));
        assert_eq!(m2.min_scale_for(&slo(), SloKind::Ttft, 1.0, &scales), None);
    }

    #[test]
    fn throughput_math() {
        let m = Metrics::new(
            vec![record(0.0, 0.3, 1.0, 10), record(0.0, 0.4, 1.5, 30)],
            0,
            SimDuration::from_secs(4),
        );
        assert!((m.throughput_rps() - 0.5).abs() < 1e-9);
        assert!((m.throughput_tokens() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn percentiles_sorted() {
        let recs = (1..=100)
            .map(|i| record(0.0, i as f64 / 100.0, 2.0, 4))
            .collect();
        let m = Metrics::new(recs, 0, SimDuration::from_secs(2));
        let p50 = m.latency_percentile(SloKind::Ttft, 0.5).unwrap();
        let p99 = m.latency_percentile(SloKind::Ttft, 0.99).unwrap();
        assert!(p50 < p99);
        assert_eq!(p99, SimDuration::from_millis(990));
    }

    #[test]
    fn attainment_curve_is_monotone() {
        let recs = (1..=20)
            .map(|i| record(0.0, i as f64 / 10.0, 3.0, 4))
            .collect();
        let m = Metrics::new(recs, 0, SimDuration::from_secs(3));
        let curve = m.attainment_curve(&slo(), SloKind::Ttft, &[0.5, 1.0, 2.0, 4.0]);
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
        assert_eq!(curve.len(), 4);
    }

    #[test]
    fn windowed_filters_by_arrival() {
        let recs = vec![
            record(0.5, 0.8, 1.0, 4),
            record(5.0, 5.3, 6.0, 4),
            record(9.0, 9.4, 9.9, 4),
        ];
        let m = Metrics::new(recs, 2, SimDuration::from_secs(10));
        let w = m.windowed(SimTime::from_secs_f64(1.0), SimTime::from_secs_f64(8.0));
        assert_eq!(w.num_completed(), 1);
        assert_eq!(w.num_dropped(), 0);
        assert_eq!(w.horizon(), SimDuration::from_secs(7));
    }

    #[test]
    fn rejected_requests_count_as_misses() {
        let rec = RecoveryCounters {
            requeued_requests: 2,
            reprefilled_tokens: 640,
            kv_transfer_retries: 1,
            recovery_times: vec![SimDuration::from_millis(80), SimDuration::from_millis(30)],
            ..RecoveryCounters::default()
        };
        let m = Metrics::with_recovery(
            vec![record(0.0, 0.3, 1.0, 8), record(0.0, 0.3, 1.0, 8)],
            1,
            1,
            SimDuration::from_secs(10),
            rec,
        );
        assert_eq!(m.num_rejected(), 1);
        // 2 hits out of 2 + 1 dropped + 1 rejected submitted
        assert_eq!(m.slo_attainment(&slo(), SloKind::Ttft), 0.5);
        assert_eq!(m.joint_attainment(&slo()), 0.5);
        assert!(m.recovery().any());
        assert_eq!(
            m.recovery().max_time_to_recover(),
            Some(SimDuration::from_millis(80))
        );
        // windowing is a steady-state view: fault bookkeeping is cleared
        let w = m.windowed(SimTime::ZERO, SimTime::from_secs_f64(5.0));
        assert_eq!(w.num_rejected(), 0);
        assert!(!w.recovery().any());
    }

    #[test]
    fn per_model_breakdown_filters_records_and_counters() {
        let mut fast = record(0.0, 0.3, 1.0, 8);
        fast.request = fast.request.with_model(ModelId(1));
        let mut slow = record(0.0, 0.9, 4.0, 8);
        slow.request = slow.request.with_model(ModelId(2));
        let rec = RecoveryCounters {
            per_model: vec![
                ModelConservation {
                    model: ModelId(1),
                    submitted: 2,
                    completed: 1,
                    dropped: 1,
                    rejected: 0,
                },
                ModelConservation {
                    model: ModelId(2),
                    submitted: 1,
                    completed: 1,
                    dropped: 0,
                    rejected: 0,
                },
            ],
            ..RecoveryCounters::default()
        };
        let m = Metrics::with_recovery(vec![fast, slow], 1, 0, SimDuration::from_secs(10), rec);
        assert_eq!(m.models(), vec![ModelId(1), ModelId(2)]);
        assert!(m.recovery().per_model.iter().all(|c| c.balanced()));

        let m1 = m.for_model(ModelId(1));
        assert_eq!(m1.num_completed(), 1);
        assert_eq!(m1.num_dropped(), 1);
        // tenant 1: one hit of two submitted
        assert_eq!(m1.slo_attainment(&slo(), SloKind::Ttft), 0.5);

        let m2 = m.for_model(ModelId(2));
        assert_eq!(m2.num_completed(), 1);
        assert_eq!(m2.num_dropped(), 0);
        // tenant 2's single request misses the 500ms TTFT deadline
        assert_eq!(m2.slo_attainment(&slo(), SloKind::Ttft), 0.0);

        // untracked model: empty, vacuously perfect
        let m9 = m.for_model(ModelId(9));
        assert_eq!(m9.num_completed(), 0);
        assert_eq!(m9.joint_attainment(&slo()), 1.0);
    }

    #[test]
    fn per_model_counters_stay_out_of_legacy_recovery() {
        // an empty catalog must leave RecoveryCounters (and thus Metrics
        // equality) exactly as before the multi-model work
        let rec = RecoveryCounters::default();
        assert!(rec.per_model.is_empty());
        assert!(!rec.any());
        let tracked = RecoveryCounters {
            per_model: vec![ModelConservation {
                model: ModelId(1),
                submitted: 0,
                completed: 0,
                dropped: 0,
                rejected: 0,
            }],
            ..RecoveryCounters::default()
        };
        // conservation tracking alone is bookkeeping, not a recovery action
        assert!(!tracked.any());
    }

    #[test]
    fn empty_metrics_are_vacuously_perfect() {
        let m = Metrics::new(vec![], 0, SimDuration::from_secs(1));
        assert_eq!(m.joint_attainment(&slo()), 1.0);
        assert!(m.latency_percentile(SloKind::E2e, 0.9).is_none());
    }
}
