//! The phase-split serving engine.
//!
//! Simulates a [`DeploymentPlan`] end to end: requests arrive at the
//! coordinator, are routed to a (prefill, decode) replica pair by the
//! orchestration matrix, batched FCFS on the prefill replica, their KV cache
//! is shipped over the (possibly contended) inter-replica link, and they
//! join the decode replica's continuous batch until all output tokens are
//! generated. All durations come from [`ts_costmodel`]; all scheduling is
//! deterministic.
//!
//! [`Simulation`] is a thin facade: the actual machinery — the shared
//! event loop, routing, admission/shed policy and the whole fault layer —
//! lives in [`crate::exec`], where it is shared with the colocated engine
//! ([`crate::colocated::ColocatedSimulation`]). This type pins the
//! phase-split topology ([`crate::exec::PrefillExecutor`] pools feeding
//! [`crate::exec::DecodeExecutor`] pools over the KV-transfer fabric) and
//! preserves the original public API.
//!
//! # Fault injection
//!
//! [`Simulation::run_with_faults`] additionally consumes a
//! [`FaultScript`]: replicas and links can die (and heal) *mid-run*.
//! Capacity is lost at the fault time, but the coordinator only reacts one
//! heartbeat detection delay later — between the two, work lands on the dead
//! replica and is silently lost, as in a real deployment. On detection
//! (with recovery enabled) routing is masked away from the dead replica,
//! queued and in-flight prefill batches are re-routed to survivors, and
//! decode sequences whose KV cache died are re-prefilled from scratch on a
//! surviving pair (the lost work is accounted in
//! [`crate::metrics::RecoveryCounters`]). KV transfers completing over a
//! downed link retry with capped exponential backoff. While no live route
//! exists, arrivals stall up to [`SimConfig::shed_threshold`] and are
//! rejected beyond it.

use crate::config::SimConfig;
use crate::exec::driver::Driver;
use crate::fault::FaultScript;
use crate::metrics::Metrics;
use ts_cluster::Cluster;
use ts_common::{DeploymentPlan, Request, Result};
#[cfg(test)]
use ts_common::{SimDuration, SimTime};

/// The phase-split discrete-event simulation.
pub struct Simulation<'a> {
    cluster: &'a Cluster,
    driver: Driver,
}

impl<'a> Simulation<'a> {
    /// Builds a simulation for `plan` on `cluster`.
    ///
    /// # Errors
    /// Returns [`ts_common::Error::Infeasible`] if any group cannot hold the
    /// model, and [`ts_common::Error::InvalidConfig`] for malformed routing.
    pub fn new(cluster: &'a Cluster, plan: &DeploymentPlan, cfg: SimConfig) -> Result<Self> {
        Ok(Simulation {
            cluster,
            driver: Driver::new_split(cluster, plan, cfg)?,
        })
    }

    /// The cluster this simulation runs on.
    pub fn cluster(&self) -> &Cluster {
        self.cluster
    }

    /// Runs the trace to completion and returns the metrics.
    ///
    /// # Errors
    /// Returns [`ts_common::Error::Simulation`] if internal invariants are
    /// violated.
    pub fn run(&mut self, requests: &[Request]) -> Result<Metrics> {
        self.run_with_faults(requests, &FaultScript::none())
    }

    /// Runs the trace with mid-flight fault injection. With an empty script
    /// this is exactly [`Simulation::run`].
    ///
    /// # Errors
    /// Returns [`ts_common::Error::InvalidConfig`] for out-of-range replica
    /// indices in the script, and [`ts_common::Error::Simulation`] on
    /// invariant violations.
    pub fn run_with_faults(
        &mut self,
        requests: &[Request],
        script: &FaultScript,
    ) -> Result<Metrics> {
        self.driver.run_with_faults(requests, script)
    }

    /// Takes the telemetry recorded so far, finalized into a time-sorted
    /// [`ts_telemetry::TraceLog`]. Returns `None` unless the simulation was
    /// built with [`SimConfig::with_telemetry`] enabled (or if the trace was
    /// already taken). Call after [`Simulation::run`] to get the full run.
    pub fn take_trace(&mut self) -> Option<ts_telemetry::TraceLog> {
        self.driver.take_trace()
    }

    /// Takes the streaming observability plane accumulated over the run
    /// (online sketches, window counters, burn monitors). Returns `None`
    /// unless the simulation was built with [`SimConfig::with_streaming`]
    /// (or if the plane was already taken).
    pub fn take_streaming(&mut self) -> Option<Box<ts_telemetry::StreamingPlane>> {
        self.driver.take_streaming()
    }

    /// Read access to the live streaming plane, `None` unless
    /// [`SimConfig::with_streaming`] was set.
    pub fn streaming(&self) -> Option<&ts_telemetry::StreamingPlane> {
        self.driver.streaming()
    }

    /// Total number of discrete events dispatched so far (across every run
    /// on this simulation). The benchmark harness divides by wall time for
    /// an events/sec figure.
    pub fn events_processed(&self) -> u64 {
        self.driver.events_processed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_cluster::presets;
    use ts_common::{
        GpuId, GroupSpec, ModelSpec, ParallelConfig, Phase, RoutingMatrix, SloKind, SloSpec,
        StageSpec,
    };
    use ts_workload::{generator::generate, spec};

    fn group(phase: Phase, gpus: &[u32], tp: usize, pp: usize, layers: usize) -> GroupSpec {
        let per = layers / pp;
        let stages = (0..pp)
            .map(|s| StageSpec {
                gpus: gpus[s * tp..(s + 1) * tp]
                    .iter()
                    .map(|&g| GpuId(g))
                    .collect(),
                layers: if s + 1 == pp {
                    layers - per * (pp - 1)
                } else {
                    per
                },
            })
            .collect();
        GroupSpec::new(phase, ParallelConfig::new(tp, pp).unwrap(), stages).unwrap()
    }

    /// 4xA40 prefill + 4x3090Ti decode on the Appendix-H testbed.
    fn testbed(bw: f64) -> (ts_cluster::Cluster, DeploymentPlan, SimConfig) {
        let cluster = presets::network_case_cluster(bw);
        let model = ModelSpec::llama_13b();
        let plan = DeploymentPlan::new(
            vec![
                group(Phase::Prefill, &[0, 1, 2, 3], 2, 2, model.num_layers),
                group(Phase::Decode, &[4, 5, 6, 7], 2, 2, model.num_layers),
            ],
            RoutingMatrix::uniform(1, 1),
        )
        .unwrap();
        (cluster, plan, SimConfig::new(model))
    }

    #[test]
    fn every_request_completes() {
        let (cluster, plan, cfg) = testbed(presets::ETH_40GBPS);
        let mut sim = Simulation::new(&cluster, &plan, cfg).unwrap();
        let reqs = generate(&spec::coding(0.5), ts_common::SimDuration::from_secs(60), 1);
        let m = sim.run(&reqs).unwrap();
        assert_eq!(m.num_completed(), reqs.len());
        assert_eq!(m.num_dropped(), 0);
        assert_eq!(m.num_rejected(), 0);
        assert!(!m.recovery().any());
    }

    #[test]
    fn records_are_causally_ordered() {
        let (cluster, plan, cfg) = testbed(presets::ETH_40GBPS);
        let mut sim = Simulation::new(&cluster, &plan, cfg).unwrap();
        let reqs = generate(
            &spec::conversation(0.5),
            ts_common::SimDuration::from_secs(60),
            2,
        );
        let m = sim.run(&reqs).unwrap();
        for r in m.records() {
            assert!(r.first_token_at >= r.request.arrival);
            assert!(r.finished_at >= r.first_token_at);
            if r.request.decode_steps() > 0 {
                assert!(r.finished_at > r.first_token_at);
            }
        }
    }

    #[test]
    fn deterministic_runs() {
        let (cluster, plan, cfg) = testbed(presets::ETH_40GBPS);
        let reqs = generate(&spec::coding(1.0), ts_common::SimDuration::from_secs(30), 3);
        let m1 = Simulation::new(&cluster, &plan, cfg.clone())
            .unwrap()
            .run(&reqs)
            .unwrap();
        let m2 = Simulation::new(&cluster, &plan, cfg)
            .unwrap()
            .run(&reqs)
            .unwrap();
        assert_eq!(m1, m2);
    }

    #[test]
    fn higher_rate_worsens_latency() {
        let (cluster, plan, cfg) = testbed(presets::ETH_40GBPS);
        let lo_r = generate(
            &spec::coding(0.3),
            ts_common::SimDuration::from_secs(120),
            4,
        );
        let hi_r = generate(
            &spec::coding(4.0),
            ts_common::SimDuration::from_secs(120),
            4,
        );
        let lo = Simulation::new(&cluster, &plan, cfg.clone())
            .unwrap()
            .run(&lo_r)
            .unwrap();
        let hi = Simulation::new(&cluster, &plan, cfg)
            .unwrap()
            .run(&hi_r)
            .unwrap();
        let p_lo = lo.latency_percentile(SloKind::Ttft, 0.9).unwrap();
        let p_hi = hi.latency_percentile(SloKind::Ttft, 0.9).unwrap();
        assert!(p_hi > p_lo, "{p_hi} <= {p_lo}");
    }

    #[test]
    fn kv_compression_reduces_e2e_on_slow_links() {
        // Table 8 / Figure 18 shape: on a bandwidth-starved link, 4-bit KV
        // transfers beat fp16 end to end.
        let (cluster, plan, cfg) = testbed(presets::ETH_5GBPS);
        let reqs = generate(
            &spec::fixed(1024, 64, 0.5),
            ts_common::SimDuration::from_secs(120),
            5,
        );
        let m4 = Simulation::new(&cluster, &plan, cfg.clone())
            .unwrap()
            .run(&reqs)
            .unwrap();
        let m16 = Simulation::new(&cluster, &plan, cfg.with_f16_kv())
            .unwrap()
            .run(&reqs)
            .unwrap();
        let e4 = m4.mean_latency(SloKind::E2e).unwrap();
        let e16 = m16.mean_latency(SloKind::E2e).unwrap();
        assert!(e4 < e16, "4-bit {e4} should beat fp16 {e16}");
    }

    #[test]
    fn single_token_outputs_skip_decode() {
        let (cluster, plan, cfg) = testbed(presets::ETH_40GBPS);
        let mut sim = Simulation::new(&cluster, &plan, cfg).unwrap();
        let reqs = generate(
            &spec::fixed(512, 1, 1.0),
            ts_common::SimDuration::from_secs(20),
            6,
        );
        let m = sim.run(&reqs).unwrap();
        assert_eq!(m.num_completed(), reqs.len());
        for r in m.records() {
            assert_eq!(r.finished_at, r.first_token_at);
        }
    }

    #[test]
    fn slo_attainment_monotone_in_scale() {
        let (cluster, plan, cfg) = testbed(presets::ETH_40GBPS);
        let reqs = generate(
            &spec::conversation(1.5),
            ts_common::SimDuration::from_secs(90),
            7,
        );
        let m = Simulation::new(&cluster, &plan, cfg)
            .unwrap()
            .run(&reqs)
            .unwrap();
        let base = SloSpec::new(
            ts_common::SimDuration::from_millis(800),
            ts_common::SimDuration::from_millis(80),
            ts_common::SimDuration::from_secs(8),
        );
        let mut prev = 0.0;
        for s in [0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0] {
            let a = m.joint_attainment(&base.scaled(s));
            assert!(
                a >= prev - 1e-12,
                "attainment must not decrease: {a} < {prev}"
            );
            prev = a;
        }
    }

    #[test]
    fn chunked_prefill_on_split_replicas_completes_and_bounds_launches() {
        // New with the shared execution core: Sarathi-style chunking on a
        // *disaggregated* prefill replica. Everything still completes, and
        // determinism holds.
        let (cluster, plan, cfg) = testbed(presets::ETH_40GBPS);
        let cfg = cfg.with_prefill_chunking(256);
        let reqs = generate(
            &spec::coding(1.0),
            ts_common::SimDuration::from_secs(40),
            21,
        );
        let run = || {
            Simulation::new(&cluster, &plan, cfg.clone())
                .unwrap()
                .run(&reqs)
                .unwrap()
        };
        let m = run();
        assert_eq!(m.num_completed(), reqs.len());
        for r in m.records() {
            assert!(r.first_token_at >= r.request.arrival);
            assert!(r.finished_at >= r.first_token_at);
        }
        assert_eq!(m, run());
        // Chunking a prompt across launches delays its completion relative
        // to whole-batch prefill: TTFT can only get worse, never better.
        let whole = {
            let (cluster, plan, cfg) = testbed(presets::ETH_40GBPS);
            Simulation::new(&cluster, &plan, cfg)
                .unwrap()
                .run(&reqs)
                .unwrap()
        };
        let p50 = |m: &crate::metrics::Metrics| m.latency_percentile(SloKind::Ttft, 0.5).unwrap();
        assert!(
            p50(&m) >= p50(&whole),
            "chunked median TTFT {} should not beat whole-batch {}",
            p50(&m),
            p50(&whole)
        );
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use crate::fault::{FaultKind, FaultScript, TimedFault};
    use ts_cluster::presets;
    use ts_common::{GpuId, GroupSpec, ModelSpec, ParallelConfig, Phase, RoutingMatrix, StageSpec};
    use ts_workload::{generator::generate, spec};

    /// 4xA40 prefill (one tp=4 replica) + two 2x3090Ti decode replicas, so
    /// a decode replica can die while a survivor picks up its work.
    fn failover_testbed() -> (ts_cluster::Cluster, DeploymentPlan, SimConfig) {
        let cluster = presets::network_case_cluster(presets::ETH_40GBPS);
        let model = ModelSpec::llama_13b();
        let group = |phase, ids: &[u32], tp: usize| {
            GroupSpec::new(
                phase,
                ParallelConfig::new(tp, 1).unwrap(),
                vec![StageSpec {
                    gpus: ids.iter().map(|&i| GpuId(i)).collect(),
                    layers: model.num_layers,
                }],
            )
            .unwrap()
        };
        let plan = DeploymentPlan::new(
            vec![
                group(Phase::Prefill, &[0, 1, 2, 3], 4),
                group(Phase::Decode, &[4, 5], 2),
                group(Phase::Decode, &[6, 7], 2),
            ],
            RoutingMatrix::uniform(1, 2),
        )
        .unwrap();
        (cluster, plan, SimConfig::new(model))
    }

    fn fault(at_s: f64, kind: FaultKind) -> TimedFault {
        TimedFault {
            at: SimTime::from_secs_f64(at_s),
            kind,
        }
    }

    #[test]
    fn empty_script_matches_plain_run() {
        let (cluster, plan, cfg) = failover_testbed();
        let reqs = generate(&spec::coding(1.0), SimDuration::from_secs(40), 11);
        let plain = Simulation::new(&cluster, &plan, cfg.clone())
            .unwrap()
            .run(&reqs)
            .unwrap();
        let scripted = Simulation::new(&cluster, &plan, cfg)
            .unwrap()
            .run_with_faults(&reqs, &FaultScript::none())
            .unwrap();
        assert_eq!(plain, scripted);
    }

    #[test]
    fn decode_death_mid_run_recovers_on_survivor() {
        let (cluster, plan, cfg) = failover_testbed();
        // Long outputs keep every decode replica saturated, so the fault is
        // guaranteed to strike sequences mid-decode.
        let reqs = generate(&spec::fixed(512, 256, 2.0), SimDuration::from_secs(60), 12);
        let script = FaultScript::new(
            vec![fault(20.0, FaultKind::DecodeDown(0))],
            SimDuration::from_millis(500),
        );
        let run = || {
            Simulation::new(&cluster, &plan, cfg.clone())
                .unwrap()
                .run_with_faults(&reqs, &script)
                .unwrap()
        };
        let m = run();
        // The fault struck mid-decode: some sequences lost KV and were
        // re-prefilled, and every affected request still completed.
        assert!(
            m.recovery().reprefilled_tokens > 0,
            "expected lost KV to be re-prefilled: {:?}",
            m.recovery()
        );
        assert_eq!(
            m.num_completed() + m.num_dropped() + m.num_rejected(),
            reqs.len()
        );
        assert_eq!(
            m.num_completed(),
            reqs.len(),
            "survivor should absorb all work"
        );
        assert!(m.recovery().max_time_to_recover().is_some());
        // Every post-fault decode ran on the survivor.
        for r in m.records() {
            if r.finished_at > SimTime::from_secs_f64(21.0) {
                assert_eq!(r.decode_replica, 1, "dead replica decoded a request");
            }
        }
        // Deterministic across identical runs.
        assert_eq!(m, run());
    }

    #[test]
    fn recovery_beats_no_recovery() {
        let (cluster, plan, cfg) = failover_testbed();
        let reqs = generate(&spec::fixed(512, 256, 2.0), SimDuration::from_secs(60), 13);
        let script = FaultScript::new(
            vec![fault(20.0, FaultKind::DecodeDown(0))],
            SimDuration::from_millis(500),
        );
        let with = Simulation::new(&cluster, &plan, cfg.clone())
            .unwrap()
            .run_with_faults(&reqs, &script)
            .unwrap();
        let without = Simulation::new(&cluster, &plan, cfg)
            .unwrap()
            .run_with_faults(&reqs, &script.clone().without_recovery())
            .unwrap();
        assert!(
            without.num_dropped() > 0,
            "no-recovery should lose requests"
        );
        assert!(with.num_completed() > without.num_completed());
        assert_eq!(
            without.num_completed() + without.num_dropped() + without.num_rejected(),
            reqs.len()
        );
    }

    #[test]
    fn prefill_death_requeues_to_nowhere_and_sheds() {
        // Single prefill replica dies and never returns: arrivals stall up
        // to the shed threshold, the rest are rejected, nothing panics.
        let (cluster, plan, cfg) = failover_testbed();
        let cfg = cfg.with_shed_threshold(4);
        let reqs = generate(&spec::coding(1.5), SimDuration::from_secs(60), 14);
        let script = FaultScript::new(
            vec![fault(15.0, FaultKind::PrefillDown(0))],
            SimDuration::from_millis(500),
        );
        let m = Simulation::new(&cluster, &plan, cfg)
            .unwrap()
            .run_with_faults(&reqs, &script)
            .unwrap();
        assert!(m.num_rejected() > 0, "whole-phase loss must shed load");
        // The stall queue holds exactly the threshold when events dry up.
        assert_eq!(
            m.num_completed() + m.num_dropped() + m.num_rejected(),
            reqs.len()
        );
        assert!(m.recovery().requeued_requests > 0);
    }

    #[test]
    fn replica_blip_restores_service() {
        let (cluster, plan, cfg) = failover_testbed();
        let reqs = generate(&spec::fixed(512, 128, 2.0), SimDuration::from_secs(60), 15);
        // Detection lands inside the outage; the arrivals that piled up on
        // the dead replica are requeued (to the stall queue: it is the only
        // prefill) and drain when the replica returns at t=25.
        let script = FaultScript::new(
            vec![
                fault(15.0, FaultKind::PrefillDown(0)),
                fault(25.0, FaultKind::PrefillUp(0)),
            ],
            SimDuration::from_secs_f64(2.0),
        );
        let m = Simulation::new(&cluster, &plan, cfg)
            .unwrap()
            .run_with_faults(&reqs, &script)
            .unwrap();
        // Everything eventually completes once the replica returns.
        assert_eq!(m.num_completed(), reqs.len(), "{:?}", m.recovery());
        assert!(m.recovery().requeued_requests > 0);
    }

    #[test]
    fn link_fault_retries_with_backoff() {
        let (cluster, plan, cfg) = failover_testbed();
        let reqs = generate(&spec::coding(1.0), SimDuration::from_secs(60), 16);
        let script = FaultScript::new(
            vec![
                fault(
                    10.0,
                    FaultKind::LinkDown {
                        prefill: 0,
                        decode: 0,
                    },
                ),
                fault(
                    14.0,
                    FaultKind::LinkUp {
                        prefill: 0,
                        decode: 0,
                    },
                ),
            ],
            SimDuration::from_millis(100),
        );
        let m = Simulation::new(&cluster, &plan, cfg)
            .unwrap()
            .run_with_faults(&reqs, &script)
            .unwrap();
        assert!(
            m.recovery().kv_transfer_retries > 0,
            "transfers over the dead link must retry"
        );
        assert_eq!(m.num_completed(), reqs.len());
    }

    #[test]
    fn pause_stalls_arrivals_then_drains() {
        let (cluster, plan, cfg) = failover_testbed();
        let reqs = generate(&spec::coding(1.0), SimDuration::from_secs(60), 17);
        let script = FaultScript::new(
            vec![fault(
                20.0,
                FaultKind::Pause {
                    until: SimTime::from_secs_f64(28.0),
                },
            )],
            SimDuration::ZERO,
        );
        let m = Simulation::new(&cluster, &plan, cfg)
            .unwrap()
            .run_with_faults(&reqs, &script)
            .unwrap();
        // Default shed threshold is generous: the blackout queue drains.
        assert_eq!(m.num_completed(), reqs.len());
        // No request starts prefill during the blackout, so first tokens of
        // blackout arrivals land after the resume.
        for r in m.records() {
            let arr = r.request.arrival;
            if arr >= SimTime::from_secs_f64(20.0) && arr < SimTime::from_secs_f64(28.0) {
                assert!(r.first_token_at >= SimTime::from_secs_f64(28.0));
            }
        }
    }

    #[test]
    fn out_of_range_fault_is_rejected() {
        let (cluster, plan, cfg) = failover_testbed();
        let script = FaultScript::new(
            vec![fault(1.0, FaultKind::DecodeDown(7))],
            SimDuration::ZERO,
        );
        let err = Simulation::new(&cluster, &plan, cfg)
            .unwrap()
            .run_with_faults(&[], &script);
        assert!(err.is_err());
    }
}

#[cfg(test)]
mod tpot_cap_tests {
    use super::*;
    use ts_cluster::presets;
    use ts_common::{
        GpuId, GroupSpec, ModelSpec, ParallelConfig, Phase, RoutingMatrix, SloKind, StageSpec,
    };
    use ts_workload::{generator::generate, spec};

    fn plan(model: &ModelSpec) -> (ts_cluster::Cluster, DeploymentPlan) {
        let cluster = presets::network_case_cluster(presets::ETH_40GBPS);
        let group = |phase, ids: [u32; 4]| {
            GroupSpec::new(
                phase,
                ParallelConfig::new(4, 1).unwrap(),
                vec![StageSpec {
                    gpus: ids.iter().map(|&i| GpuId(i)).collect(),
                    layers: model.num_layers,
                }],
            )
            .unwrap()
        };
        let plan = DeploymentPlan::new(
            vec![
                group(Phase::Prefill, [0, 1, 2, 3]),
                group(Phase::Decode, [4, 5, 6, 7]),
            ],
            RoutingMatrix::uniform(1, 1),
        )
        .unwrap();
        (cluster, plan)
    }

    #[test]
    fn tpot_cap_bounds_tail_tpot() {
        // Under heavy decode concurrency, an SLO-aware admission cap keeps
        // p90 TPOT below the configured deadline (at the cost of queueing).
        let model = ModelSpec::llama_30b();
        let (cluster, plan) = plan(&model);
        let w = spec::fixed(512, 128, 2.5);
        let reqs = generate(&w, ts_common::SimDuration::from_secs(90), 3);
        let cap = ts_common::SimDuration::from_millis(40);

        let uncapped = Simulation::new(&cluster, &plan, SimConfig::new(model.clone()))
            .unwrap()
            .run(&reqs)
            .unwrap();
        let capped = Simulation::new(
            &cluster,
            &plan,
            SimConfig::new(model.clone()).with_tpot_cap(cap),
        )
        .unwrap()
        .run(&reqs)
        .unwrap();

        let p90 = |m: &crate::metrics::Metrics| m.latency_percentile(SloKind::Tpot, 0.9).unwrap();
        assert!(
            p90(&capped) <= cap + ts_common::SimDuration::from_millis(5),
            "capped p90 TPOT {} should respect the {cap} deadline",
            p90(&capped)
        );
        assert!(
            p90(&capped) <= p90(&uncapped),
            "cap must not worsen TPOT: {} vs {}",
            p90(&capped),
            p90(&uncapped)
        );
        // conservation still holds
        assert_eq!(capped.num_completed() + capped.num_dropped(), reqs.len());
    }

    #[test]
    fn tpot_cap_never_deadlocks_single_sequences() {
        // Even with an absurdly tight cap the replica admits one sequence at
        // a time and everything eventually completes.
        let model = ModelSpec::llama_30b();
        let (cluster, plan) = plan(&model);
        let w = spec::fixed(256, 16, 0.5);
        let reqs = generate(&w, ts_common::SimDuration::from_secs(40), 4);
        let m = Simulation::new(
            &cluster,
            &plan,
            SimConfig::new(model).with_tpot_cap(ts_common::SimDuration::from_micros(1)),
        )
        .unwrap()
        .run(&reqs)
        .unwrap();
        assert_eq!(m.num_completed(), reqs.len());
    }
}

#[cfg(test)]
mod policy_tests {
    use super::*;
    use crate::config::PrefillPolicy;
    use ts_cluster::presets;
    use ts_common::{
        GpuId, GroupSpec, ModelSpec, ParallelConfig, Phase, RoutingMatrix, SloKind, StageSpec,
    };
    use ts_workload::generator::generate_mixture;

    #[test]
    fn sjf_improves_median_ttft_under_mixed_prompts() {
        let cluster = presets::network_case_cluster(presets::ETH_40GBPS);
        let model = ModelSpec::llama_30b();
        let group = |phase, ids: [u32; 4]| {
            GroupSpec::new(
                phase,
                ParallelConfig::new(4, 1).unwrap(),
                vec![StageSpec {
                    gpus: ids.iter().map(|&i| GpuId(i)).collect(),
                    layers: model.num_layers,
                }],
            )
            .unwrap()
        };
        let plan = DeploymentPlan::new(
            vec![
                group(Phase::Prefill, [0, 1, 2, 3]),
                group(Phase::Decode, [4, 5, 6, 7]),
            ],
            RoutingMatrix::uniform(1, 1),
        )
        .unwrap();
        // Mixed prompt lengths at pressure: many short, some very long.
        let trace = generate_mixture(
            &[
                ts_workload::spec::fixed(256, 8, 2.2),
                ts_workload::spec::fixed(3500, 8, 0.5),
            ],
            ts_common::SimDuration::from_secs(120),
            3,
        );
        let run = |policy| {
            Simulation::new(
                &cluster,
                &plan,
                SimConfig::new(model.clone()).with_prefill_policy(policy),
            )
            .unwrap()
            .run(&trace)
            .unwrap()
        };
        let fcfs = run(PrefillPolicy::Fcfs);
        let sjf = run(PrefillPolicy::ShortestFirst);
        let p50 = |m: &crate::metrics::Metrics| m.latency_percentile(SloKind::Ttft, 0.5).unwrap();
        let p99 = |m: &crate::metrics::Metrics| m.latency_percentile(SloKind::Ttft, 0.99).unwrap();
        assert!(
            p50(&sjf) <= p50(&fcfs),
            "SJF median TTFT {} should not exceed FCFS {}",
            p50(&sjf),
            p50(&fcfs)
        );
        assert!(
            p99(&sjf) >= p99(&fcfs),
            "SJF pays at the tail: {} vs {}",
            p99(&sjf),
            p99(&fcfs)
        );
        // conservation under both policies
        assert_eq!(fcfs.num_completed() + fcfs.num_dropped(), trace.len());
        assert_eq!(sjf.num_completed() + sjf.num_dropped(), trace.len());
    }
}

#[cfg(test)]
mod fabric_tests {
    use super::*;
    use crate::fault::{FaultKind, FaultScript, TimedFault};
    use ts_cluster::presets;
    use ts_common::{GpuId, GroupSpec, ModelSpec, ParallelConfig, Phase, RoutingMatrix, StageSpec};
    use ts_workload::{generator::generate, spec};

    /// 4xA40 prefill + two 2x3090Ti decode replicas on a slow (5 Gbps)
    /// fabric, so concurrent KV transfers genuinely contend.
    fn contended_testbed() -> (ts_cluster::Cluster, DeploymentPlan, SimConfig) {
        let cluster = presets::network_case_cluster(presets::ETH_5GBPS);
        let model = ModelSpec::llama_13b();
        let group = |phase, ids: &[u32], tp: usize| {
            GroupSpec::new(
                phase,
                ParallelConfig::new(tp, 1).unwrap(),
                vec![StageSpec {
                    gpus: ids.iter().map(|&i| GpuId(i)).collect(),
                    layers: model.num_layers,
                }],
            )
            .unwrap()
        };
        let plan = DeploymentPlan::new(
            vec![
                group(Phase::Prefill, &[0, 1, 2, 3], 4),
                group(Phase::Decode, &[4, 5], 2),
                group(Phase::Decode, &[6, 7], 2),
            ],
            RoutingMatrix::uniform(1, 2),
        )
        .unwrap();
        (cluster, plan, SimConfig::new(model))
    }

    fn mean_wire_secs(m: &crate::metrics::Metrics) -> f64 {
        let moved: Vec<_> = m
            .records()
            .iter()
            .filter(|r| r.kv_done_at.is_some())
            .collect();
        assert!(!moved.is_empty(), "no transfers recorded");
        moved
            .iter()
            .map(|r| r.kv_wire_time.as_secs_f64())
            .sum::<f64>()
            / moved.len() as f64
    }

    #[test]
    fn fabric_run_completes_and_is_deterministic() {
        let (cluster, plan, cfg) = contended_testbed();
        let cfg = cfg.with_network_contention(true);
        let reqs = generate(&spec::coding(1.0), SimDuration::from_secs(40), 31);
        let run = || {
            Simulation::new(&cluster, &plan, cfg.clone())
                .unwrap()
                .run(&reqs)
                .unwrap()
        };
        let m = run();
        assert_eq!(m.num_completed(), reqs.len());
        for r in m.records() {
            if let Some(done) = r.kv_done_at {
                // The KV moves between prefill completion (= first token)
                // and the end of decode.
                assert!(done >= r.first_token_at, "{done} < {}", r.first_token_at);
                assert!(done <= r.finished_at);
                assert_eq!(r.kv_overhead(), r.kv_queue_wait + r.kv_wire_time);
            }
        }
        assert_eq!(m, run(), "fabric scheduling must stay deterministic");
    }

    #[test]
    fn contention_grows_wire_time_with_load() {
        // More concurrent flows -> each gets a smaller max-min share -> the
        // per-transfer wire time stretches. The legacy serialization model
        // cannot show this (wire time is load-independent there).
        let (cluster, plan, cfg) = contended_testbed();
        let cfg = cfg.with_network_contention(true);
        let run = |rate: f64, seed: u64| {
            let reqs = generate(
                &spec::fixed(1024, 16, rate),
                SimDuration::from_secs(60),
                seed,
            );
            Simulation::new(&cluster, &plan, cfg.clone())
                .unwrap()
                .run(&reqs)
                .unwrap()
        };
        let lo = mean_wire_secs(&run(0.3, 32));
        let hi = mean_wire_secs(&run(4.0, 32));
        assert!(
            hi > lo,
            "wire time should grow with concurrent load: {hi} <= {lo}"
        );
    }

    #[test]
    fn contention_flag_is_inert_without_kv_modeling() {
        // The fabric only engages when transfers are modeled at all; with
        // `model_kv_transfer` off the flag must change nothing, bit for bit.
        let (cluster, plan, cfg) = contended_testbed();
        let mut base = cfg;
        base.model_kv_transfer = false;
        let reqs = generate(&spec::coding(1.5), SimDuration::from_secs(40), 33);
        let plain = Simulation::new(&cluster, &plan, base.clone())
            .unwrap()
            .run(&reqs)
            .unwrap();
        let flagged = Simulation::new(&cluster, &plan, base.with_network_contention(true))
            .unwrap()
            .run(&reqs)
            .unwrap();
        assert_eq!(plain, flagged);
    }

    #[test]
    fn kv_timing_is_recorded_on_the_legacy_path() {
        // Satellite: the timing decomposition rides the default (legacy)
        // model too, not just the fabric.
        let (cluster, plan, cfg) = contended_testbed();
        let reqs = generate(&spec::fixed(1024, 16, 1.0), SimDuration::from_secs(40), 34);
        let m = Simulation::new(&cluster, &plan, cfg)
            .unwrap()
            .run(&reqs)
            .unwrap();
        assert_eq!(m.num_completed(), reqs.len());
        for r in m.records() {
            let done = r.kv_done_at.expect("multi-token request must transfer");
            assert!(r.kv_wire_time > SimDuration::ZERO, "modeled wire time");
            assert!(done >= r.first_token_at && done <= r.finished_at);
        }
    }

    #[test]
    fn link_fault_mid_flow_retries_like_legacy() {
        // Satellite: a link dying under the fabric kills in-flight flows,
        // which re-enter through the same retry/backoff path (and the same
        // RecoveryCounters) as the legacy completion-time check.
        let (cluster, plan, cfg) = contended_testbed();
        let reqs = generate(&spec::fixed(1024, 64, 2.0), SimDuration::from_secs(60), 35);
        let script = FaultScript::new(
            vec![
                TimedFault {
                    at: SimTime::from_secs_f64(10.0),
                    kind: FaultKind::LinkDown {
                        prefill: 0,
                        decode: 0,
                    },
                },
                TimedFault {
                    at: SimTime::from_secs_f64(14.0),
                    kind: FaultKind::LinkUp {
                        prefill: 0,
                        decode: 0,
                    },
                },
            ],
            SimDuration::from_millis(100),
        );
        let run = |c: SimConfig| {
            Simulation::new(&cluster, &plan, c)
                .unwrap()
                .run_with_faults(&reqs, &script)
                .unwrap()
        };
        let fabric = run(cfg.clone().with_network_contention(true));
        let legacy = run(cfg);
        assert!(
            fabric.recovery().kv_transfer_retries > 0,
            "flows killed by the link fault must retry: {:?}",
            fabric.recovery()
        );
        assert!(legacy.recovery().kv_transfer_retries > 0);
        assert_eq!(fabric.num_completed(), reqs.len());
        assert_eq!(legacy.num_completed(), reqs.len());
        // Neither model loses or double-counts work.
        assert_eq!(fabric.recovery().requeued_requests, 0);
        assert_eq!(fabric.recovery().reprefilled_tokens, 0);
        // And the fabric run stays reproducible under faults.
        let again = Simulation::new(&cluster, &plan, {
            let (_, _, c) = contended_testbed();
            c.with_network_contention(true)
        })
        .unwrap()
        .run_with_faults(&reqs, &script)
        .unwrap();
        assert_eq!(fabric, again);
    }
}

#[cfg(test)]
mod gray_failure_tests {
    use super::*;
    use crate::fault::{FaultKind, FaultScript, TimedFault};
    use ts_cluster::presets;
    use ts_common::{
        GpuId, GroupSpec, ModelSpec, ParallelConfig, Phase, RoutingMatrix, SloKind, SloSpec,
        StageSpec,
    };
    use ts_workload::{generator::generate, spec};

    fn group(model: &ModelSpec, phase: Phase, ids: &[u32], tp: usize) -> GroupSpec {
        GroupSpec::new(
            phase,
            ParallelConfig::new(tp, 1).unwrap(),
            vec![StageSpec {
                gpus: ids.iter().map(|&i| GpuId(i)).collect(),
                layers: model.num_layers,
            }],
        )
        .unwrap()
    }

    /// One tp=4 prefill replica + two tp=2 decode replicas: the shape used
    /// by the hard-failure tests, reused here for decode-side gray faults.
    fn gray_testbed() -> (ts_cluster::Cluster, DeploymentPlan, SimConfig) {
        let cluster = presets::network_case_cluster(presets::ETH_40GBPS);
        let model = ModelSpec::llama_13b();
        let plan = DeploymentPlan::new(
            vec![
                group(&model, Phase::Prefill, &[0, 1, 2, 3], 4),
                group(&model, Phase::Decode, &[4, 5], 2),
                group(&model, Phase::Decode, &[6, 7], 2),
            ],
            RoutingMatrix::uniform(1, 2),
        )
        .unwrap();
        (cluster, plan, SimConfig::new(model))
    }

    /// Two tp=2 prefill replicas + two tp=2 decode replicas, so a stuck
    /// prefill has somewhere to hedge to.
    fn hedge_testbed() -> (ts_cluster::Cluster, DeploymentPlan, SimConfig) {
        let cluster = presets::network_case_cluster(presets::ETH_40GBPS);
        let model = ModelSpec::llama_13b();
        let plan = DeploymentPlan::new(
            vec![
                group(&model, Phase::Prefill, &[0, 1], 2),
                group(&model, Phase::Prefill, &[2, 3], 2),
                group(&model, Phase::Decode, &[4, 5], 2),
                group(&model, Phase::Decode, &[6, 7], 2),
            ],
            RoutingMatrix::uniform(2, 2),
        )
        .unwrap();
        (cluster, plan, SimConfig::new(model))
    }

    fn fault(at_s: f64, kind: FaultKind) -> TimedFault {
        TimedFault {
            at: SimTime::from_secs_f64(at_s),
            kind,
        }
    }

    fn conserved(m: &Metrics, n: usize) {
        assert_eq!(
            m.num_completed() + m.num_dropped() + m.num_rejected(),
            n,
            "request conservation violated: {:?}",
            m.recovery()
        );
    }

    #[test]
    fn default_knobs_stay_bit_identical() {
        // Acceptance gate: with no gray faults and no mitigation knobs the
        // new layer must be invisible — bit-identical metrics regardless of
        // the fault seed, on both the legacy and the fabric engine.
        let (cluster, plan, cfg) = gray_testbed();
        let reqs = generate(&spec::coding(1.0), SimDuration::from_secs(40), 41);
        for fabric in [false, true] {
            let base = cfg.clone().with_network_contention(fabric);
            let plain = Simulation::new(&cluster, &plan, base.clone())
                .unwrap()
                .run(&reqs)
                .unwrap();
            let reseeded = Simulation::new(&cluster, &plan, base.with_fault_seed(0xDEAD_BEEF))
                .unwrap()
                .run_with_faults(&reqs, &FaultScript::none())
                .unwrap();
            assert_eq!(plain, reseeded, "fabric={fabric}");
            assert_eq!(plain.recovery().quarantines, 0);
            assert_eq!(plain.recovery().hedges_launched, 0);
            assert_eq!(plain.recovery().deadline_shed, 0);
        }
    }

    #[test]
    fn slowdown_stretches_latency_without_mitigation() {
        // A decode straggler with no detector configured: everything still
        // completes, just slower — the degradation alone changes no counts.
        let (cluster, plan, cfg) = gray_testbed();
        let reqs = generate(&spec::fixed(512, 128, 1.5), SimDuration::from_secs(60), 42);
        let script = FaultScript::new(
            vec![fault(0.01, FaultKind::DecodeSlow(0, 4.0))],
            SimDuration::from_millis(500),
        );
        let slow = Simulation::new(&cluster, &plan, cfg.clone())
            .unwrap()
            .run_with_faults(&reqs, &script)
            .unwrap();
        let healthy = Simulation::new(&cluster, &plan, cfg)
            .unwrap()
            .run(&reqs)
            .unwrap();
        assert_eq!(slow.num_completed(), reqs.len());
        let e = |m: &Metrics| m.mean_latency(SloKind::E2e).unwrap();
        assert!(
            e(&slow) > e(&healthy),
            "straggler must hurt E2E: {} <= {}",
            e(&slow),
            e(&healthy)
        );
        assert_eq!(slow.recovery().quarantines, 0, "no detector configured");
    }

    #[test]
    fn straggler_is_quarantined_then_readmitted() {
        let (cluster, plan, cfg) = gray_testbed();
        let cfg = cfg
            .with_straggler_detection(2.0)
            .with_straggler_readmit_after(SimDuration::from_secs(4));
        let reqs = generate(&spec::fixed(512, 128, 1.5), SimDuration::from_secs(60), 43);
        // Decode 0 runs 6x slow from t=5 and heals at t=30: the detector
        // must quarantine it, probe it while still slow (re-quarantine), and
        // finally readmit it for good.
        let script = FaultScript::new(
            vec![
                fault(5.0, FaultKind::DecodeSlow(0, 6.0)),
                fault(30.0, FaultKind::DecodeSlow(0, 1.0)),
            ],
            SimDuration::from_millis(500),
        );
        let run = || {
            Simulation::new(&cluster, &plan, cfg.clone())
                .unwrap()
                .run_with_faults(&reqs, &script)
                .unwrap()
        };
        let m = run();
        assert!(
            m.recovery().quarantines > 0,
            "detector must trip: {:?}",
            m.recovery()
        );
        assert!(
            m.recovery().readmissions > 0,
            "healed replica must be readmitted: {:?}",
            m.recovery()
        );
        conserved(&m, reqs.len());
        assert_eq!(m.num_completed(), reqs.len(), "quarantine loses no work");
        assert_eq!(m, run(), "mitigation must stay deterministic");
    }

    #[test]
    fn quarantine_improves_tail_latency_under_straggler() {
        let (cluster, plan, cfg) = gray_testbed();
        let reqs = generate(&spec::fixed(512, 128, 1.5), SimDuration::from_secs(90), 44);
        let script = FaultScript::new(
            vec![fault(5.0, FaultKind::DecodeSlow(0, 8.0))],
            SimDuration::from_millis(500),
        );
        let run = |c: SimConfig| {
            Simulation::new(&cluster, &plan, c)
                .unwrap()
                .run_with_faults(&reqs, &script)
                .unwrap()
        };
        let unmitigated = run(cfg.clone());
        let mitigated = run(cfg
            .with_straggler_detection(2.0)
            .with_straggler_readmit_after(SimDuration::from_secs(60)));
        let p99 = |m: &Metrics| m.latency_percentile(SloKind::E2e, 0.99).unwrap();
        assert!(
            p99(&mitigated) < p99(&unmitigated),
            "routing away from the straggler must help the tail: {} >= {}",
            p99(&mitigated),
            p99(&unmitigated)
        );
        assert!(mitigated.recovery().quarantines > 0);
    }

    #[test]
    fn hedging_rescues_stuck_prefills() {
        let (cluster, plan, cfg) = hedge_testbed();
        let reqs = generate(&spec::coding(1.5), SimDuration::from_secs(60), 45);
        // Prefill 0 becomes a deep straggler: requests stuck behind it wait
        // tens of seconds unless hedged onto prefill 1.
        let script = FaultScript::new(
            vec![fault(5.0, FaultKind::PrefillSlow(0, 40.0))],
            SimDuration::from_millis(500),
        );
        let run = |c: SimConfig| {
            Simulation::new(&cluster, &plan, c)
                .unwrap()
                .run_with_faults(&reqs, &script)
                .unwrap()
        };
        let unhedged = run(cfg.clone());
        let hedged = run(cfg.clone().with_hedging(SimDuration::from_millis(400)));
        assert!(
            hedged.recovery().hedges_launched > 0,
            "stuck prefills must hedge: {:?}",
            hedged.recovery()
        );
        assert!(
            hedged.recovery().hedges_won > 0,
            "the healthy duplicate must win: {:?}",
            hedged.recovery()
        );
        conserved(&hedged, reqs.len());
        assert_eq!(
            hedged.num_completed(),
            reqs.len(),
            "hedging must not lose or double-complete requests"
        );
        let p99 = |m: &Metrics| m.latency_percentile(SloKind::Ttft, 0.99).unwrap();
        assert!(
            p99(&hedged) < p99(&unhedged),
            "hedging must cut tail TTFT: {} >= {}",
            p99(&hedged),
            p99(&unhedged)
        );
        // Deterministic across identical runs.
        let again = run(cfg.with_hedging(SimDuration::from_millis(400)));
        assert_eq!(hedged, again);
    }

    #[test]
    fn retry_budget_exhaustion_drops_instead_of_looping() {
        // A link that never heals: an unbounded retry loop would spin
        // forever, a budget of 1 drops the affected transfers and the run
        // terminates with exact conservation.
        let (cluster, plan, cfg) = gray_testbed();
        let cfg = cfg.with_kv_retry_budget(1);
        let reqs = generate(&spec::fixed(512, 32, 1.0), SimDuration::from_secs(40), 46);
        let script = FaultScript::new(
            vec![fault(
                5.0,
                FaultKind::LinkDown {
                    prefill: 0,
                    decode: 0,
                },
            )],
            SimDuration::from_millis(100),
        );
        let run = || {
            Simulation::new(&cluster, &plan, cfg.clone())
                .unwrap()
                .run_with_faults(&reqs, &script)
                .unwrap()
        };
        let m = run();
        assert!(
            m.recovery().retry_budget_exhausted > 0,
            "transfers on the dead link must exhaust their budget: {:?}",
            m.recovery()
        );
        assert!(m.num_dropped() >= m.recovery().retry_budget_exhausted);
        assert!(
            m.recovery().kv_transfer_retries > 0,
            "the budget allows one retry before giving up"
        );
        conserved(&m, reqs.len());
        assert_eq!(m, run());
    }

    #[test]
    fn retry_jitter_decorrelates_but_conserves() {
        // With jitter on, retry delays stretch by a seeded random factor:
        // results stay deterministic per seed and conservation is exact.
        let (cluster, plan, cfg) = gray_testbed();
        let reqs = generate(&spec::fixed(512, 32, 1.5), SimDuration::from_secs(40), 47);
        let script = FaultScript::new(
            vec![
                fault(
                    5.0,
                    FaultKind::LinkDown {
                        prefill: 0,
                        decode: 0,
                    },
                ),
                fault(
                    9.0,
                    FaultKind::LinkUp {
                        prefill: 0,
                        decode: 0,
                    },
                ),
            ],
            SimDuration::from_millis(100),
        );
        let run = |c: SimConfig| {
            Simulation::new(&cluster, &plan, c)
                .unwrap()
                .run_with_faults(&reqs, &script)
                .unwrap()
        };
        let jittered = run(cfg.clone().with_kv_retry_jitter(0.5));
        assert!(jittered.recovery().kv_transfer_retries > 0);
        conserved(&jittered, reqs.len());
        assert_eq!(jittered.num_completed(), reqs.len());
        assert_eq!(
            jittered,
            run(cfg.with_kv_retry_jitter(0.5)),
            "jitter draws must be reproducible per seed"
        );
    }

    #[test]
    fn deadline_shed_fires_only_under_stall() {
        // A service pause holds arrivals past their TTFT deadline: with
        // deadline shedding on, the coordinator rejects them at resume
        // instead of running prefills whose SLO is already blown.
        let (cluster, plan, cfg) = gray_testbed();
        let slo = SloSpec::new(
            SimDuration::from_millis(800),
            SimDuration::from_millis(80),
            SimDuration::from_secs(8),
        );
        let cfg = cfg.with_deadlines(slo, 1.0);
        let reqs = generate(&spec::coding(1.0), SimDuration::from_secs(60), 48);
        let script = FaultScript::new(
            vec![fault(
                20.0,
                FaultKind::Pause {
                    until: SimTime::from_secs_f64(28.0),
                },
            )],
            SimDuration::ZERO,
        );
        let m = Simulation::new(&cluster, &plan, cfg.clone())
            .unwrap()
            .run_with_faults(&reqs, &script)
            .unwrap();
        assert!(
            m.recovery().deadline_shed > 0,
            "blackout arrivals must shed: {:?}",
            m.recovery()
        );
        assert!(m.num_rejected() >= m.recovery().deadline_shed);
        conserved(&m, reqs.len());
        // Without any stall the same knobs shed nothing: deadlines only
        // bite when dispatch actually lags arrival.
        let calm = Simulation::new(&cluster, &plan, cfg)
            .unwrap()
            .run(&reqs)
            .unwrap();
        assert_eq!(calm.recovery().deadline_shed, 0);
        assert_eq!(calm.num_completed(), reqs.len());
    }

    #[test]
    fn flaky_heartbeat_masks_routing_and_conserves() {
        let (cluster, plan, cfg) = gray_testbed();
        let reqs = generate(&spec::fixed(512, 64, 1.5), SimDuration::from_secs(60), 49);
        // Decode replica 0 lives on host 1 (hosts count prefills first).
        // Its heartbeats drop 70% of windows from t=5 until the flap heals
        // at t=40; masking is a routing-only false positive, so no work is
        // lost — only shifted to the peer while masked.
        let script = FaultScript::new(
            vec![
                fault(5.0, FaultKind::HeartbeatFlaky(1, 0.7)),
                fault(40.0, FaultKind::HeartbeatFlaky(1, 0.0)),
            ],
            SimDuration::from_millis(500),
        );
        let run = || {
            Simulation::new(&cluster, &plan, cfg.clone())
                .unwrap()
                .run_with_faults(&reqs, &script)
                .unwrap()
        };
        let m = run();
        assert!(
            m.recovery().quarantines > 0,
            "lost beats must mask the node: {:?}",
            m.recovery()
        );
        assert!(
            m.recovery().readmissions > 0,
            "recovered beats must readmit the node: {:?}",
            m.recovery()
        );
        assert_eq!(m.num_completed(), reqs.len(), "{:?}", m.recovery());
        assert_eq!(m, run(), "flaky draws must be reproducible per seed");
        // A different fault seed flips different beats but still conserves.
        let reseeded = Simulation::new(&cluster, &plan, cfg.clone().with_fault_seed(99))
            .unwrap()
            .run_with_faults(&reqs, &script)
            .unwrap();
        assert_eq!(reseeded.num_completed(), reqs.len());
    }

    #[test]
    fn flaky_heartbeat_requires_detection_window() {
        let (cluster, plan, cfg) = gray_testbed();
        let script = FaultScript::new(
            vec![fault(1.0, FaultKind::HeartbeatFlaky(1, 0.5))],
            SimDuration::ZERO,
        );
        let err = Simulation::new(&cluster, &plan, cfg)
            .unwrap()
            .run_with_faults(&[], &script);
        assert!(err.is_err(), "zero beat window must be rejected");
    }

    #[test]
    fn degraded_link_stretches_wire_time_on_both_models() {
        let (cluster, plan, cfg) = gray_testbed();
        let reqs = generate(&spec::fixed(1024, 16, 1.0), SimDuration::from_secs(40), 50);
        // Degrade both outgoing links of the single prefill replica so every
        // post-fault transfer is hit, on the legacy serialization model and
        // the flow fabric alike.
        let script = FaultScript::new(
            vec![
                fault(
                    0.01,
                    FaultKind::LinkDegraded {
                        prefill: 0,
                        decode: 0,
                        factor: 4.0,
                    },
                ),
                fault(
                    0.01,
                    FaultKind::LinkDegraded {
                        prefill: 0,
                        decode: 1,
                        factor: 4.0,
                    },
                ),
            ],
            SimDuration::from_millis(100),
        );
        for fabric in [false, true] {
            let c = cfg.clone().with_network_contention(fabric);
            let degraded = Simulation::new(&cluster, &plan, c.clone())
                .unwrap()
                .run_with_faults(&reqs, &script)
                .unwrap();
            let healthy = Simulation::new(&cluster, &plan, c)
                .unwrap()
                .run(&reqs)
                .unwrap();
            let wire = |m: &Metrics| {
                let moved: Vec<_> = m
                    .records()
                    .iter()
                    .filter(|r| r.kv_done_at.is_some())
                    .collect();
                assert!(!moved.is_empty());
                moved
                    .iter()
                    .map(|r| r.kv_wire_time.as_secs_f64())
                    .sum::<f64>()
                    / moved.len() as f64
            };
            assert!(
                wire(&degraded) > wire(&healthy),
                "fabric={fabric}: degraded link must slow transfers: {} <= {}",
                wire(&degraded),
                wire(&healthy)
            );
            assert_eq!(degraded.num_completed(), reqs.len());
        }
    }

    #[test]
    fn gray_faults_reject_bad_indices_and_factors() {
        let (cluster, plan, cfg) = gray_testbed();
        let bad = [
            FaultKind::DecodeSlow(7, 2.0),
            FaultKind::PrefillSlow(0, 0.5),
            FaultKind::DecodeSlow(0, f64::NAN),
            FaultKind::LinkDegraded {
                prefill: 0,
                decode: 9,
                factor: 2.0,
            },
            FaultKind::HeartbeatFlaky(0, 1.5),
            FaultKind::HeartbeatFlaky(9, 0.5),
        ];
        for kind in bad {
            let script = FaultScript::new(vec![fault(1.0, kind)], SimDuration::from_millis(500));
            let err = Simulation::new(&cluster, &plan, cfg.clone())
                .unwrap()
                .run_with_faults(&[], &script);
            assert!(err.is_err(), "{kind:?} must be rejected");
        }
    }
}
