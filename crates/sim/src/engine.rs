//! The phase-split serving engine.
//!
//! Simulates a [`DeploymentPlan`] end to end: requests arrive at the
//! coordinator, are routed to a (prefill, decode) replica pair by the
//! orchestration matrix, batched FCFS on the prefill replica, their KV cache
//! is shipped over the (possibly contended) inter-replica link, and they
//! join the decode replica's continuous batch until all output tokens are
//! generated. All durations come from [`ts_costmodel`]; all scheduling is
//! deterministic.

use crate::config::{PrefillPolicy, SimConfig};
use crate::event::{EventKind, EventQueue};
use crate::metrics::{Metrics, RequestRecord};
use crate::router::StrideRouter;
use std::collections::{HashMap, VecDeque};
use ts_cluster::Cluster;
use ts_common::{
    DeploymentPlan, Error, Request, RequestId, Result, SimDuration, SimTime,
};
use ts_costmodel::replica::{kv_route, kv_transfer_time, KvRouteSegment};
use ts_costmodel::ReplicaCostModel;

/// Per-request routing decision and timing bookkeeping.
#[derive(Debug, Clone, Copy)]
struct Pending {
    prefill: usize,
    decode: usize,
    first_token_at: Option<SimTime>,
}

#[derive(Debug)]
struct PrefillState {
    cost: ReplicaCostModel,
    queue: VecDeque<Request>,
    /// Batches currently flowing through the pipeline (FIFO: completion
    /// events fire in launch order because stage times are batch-agnostic
    /// in ordering).
    in_flight: VecDeque<Vec<Request>>,
    /// Earliest time the first pipeline stage can accept a new batch.
    next_free: SimTime,
    /// Whether a slot-free wakeup is already scheduled.
    wakeup_scheduled: bool,
}

#[derive(Debug, Clone, Copy)]
struct ActiveSeq {
    id: RequestId,
    /// Tokens currently in this sequence's KV cache (prompt + generated).
    context: u64,
    /// Decode steps still to run.
    remaining: u32,
    /// When this sequence's previous token was emitted.
    last_token_at: SimTime,
    /// Longest inter-token gap observed so far.
    max_gap: SimDuration,
}

#[derive(Debug, Clone, Copy)]
struct WaitingSeq {
    id: RequestId,
    prompt_len: u64,
    remaining: u32,
}

#[derive(Debug)]
struct DecodeState {
    cost: ReplicaCostModel,
    kv_capacity: u64,
    kv_used: u64,
    active: Vec<ActiveSeq>,
    waiting: VecDeque<WaitingSeq>,
    stepping: bool,
}

/// The phase-split discrete-event simulation.
pub struct Simulation<'a> {
    cluster: &'a Cluster,
    cfg: SimConfig,
    prefills: Vec<PrefillState>,
    decodes: Vec<DecodeState>,
    router: StrideRouter,
    pair_coords: Vec<(usize, usize)>,
    /// KV route per (prefill, decode) pair.
    routes: Vec<Vec<Vec<KvRouteSegment>>>,
    /// Per-sender (prefill replica) uplink availability for KV transfer
    /// queuing: one replica's outbound transfers serialize on its NIC,
    /// whichever decode replica they target.
    sender_free_at: Vec<SimTime>,
    queue: EventQueue,
    pending: HashMap<RequestId, Pending>,
    request_payloads: HashMap<RequestId, Request>,
    records: Vec<RequestRecord>,
    dropped: usize,
    now: SimTime,
}

impl<'a> Simulation<'a> {
    /// Builds a simulation for `plan` on `cluster`.
    ///
    /// # Errors
    /// Returns [`Error::Infeasible`] if any group cannot hold the model, and
    /// [`Error::InvalidConfig`] for malformed routing.
    pub fn new(cluster: &'a Cluster, plan: &DeploymentPlan, cfg: SimConfig) -> Result<Self> {
        let prefill_idx = plan.prefill_indices();
        let decode_idx = plan.decode_indices();
        let mut prefills = Vec::with_capacity(prefill_idx.len());
        for &gi in &prefill_idx {
            prefills.push(PrefillState {
                cost: ReplicaCostModel::new(cluster, &cfg.model, &plan.groups[gi], &cfg.params)?,
                queue: VecDeque::new(),
                in_flight: VecDeque::new(),
                next_free: SimTime::ZERO,
                wakeup_scheduled: false,
            });
        }
        let mut decodes = Vec::with_capacity(decode_idx.len());
        for &gi in &decode_idx {
            let cost =
                ReplicaCostModel::new(cluster, &cfg.model, &plan.groups[gi], &cfg.params)?;
            let kv_capacity = cost.kv_capacity_tokens();
            decodes.push(DecodeState {
                cost,
                kv_capacity,
                kv_used: 0,
                active: Vec::new(),
                waiting: VecDeque::new(),
                stepping: false,
            });
        }
        let (router, pair_coords) = StrideRouter::from_matrix(plan.routing.rates())?;
        let mut routes = Vec::with_capacity(prefills.len());
        for p in &prefills {
            let mut row = Vec::with_capacity(decodes.len());
            for d in &decodes {
                row.push(kv_route(cluster, &p.cost, &d.cost));
            }
            routes.push(row);
        }
        let sender_free_at = vec![SimTime::ZERO; prefills.len()];
        Ok(Simulation {
            cluster,
            cfg,
            prefills,
            decodes,
            router,
            pair_coords,
            routes,
            sender_free_at,
            queue: EventQueue::new(),
            pending: HashMap::new(),
            request_payloads: HashMap::new(),
            records: Vec::new(),
            dropped: 0,
            now: SimTime::ZERO,
        })
    }

    /// The cluster this simulation runs on.
    pub fn cluster(&self) -> &Cluster {
        self.cluster
    }

    /// Runs the trace to completion and returns the metrics.
    ///
    /// # Errors
    /// Returns [`Error::Simulation`] if internal invariants are violated.
    pub fn run(&mut self, requests: &[Request]) -> Result<Metrics> {
        for r in requests {
            self.queue.push(r.arrival, EventKind::Arrival(*r));
        }
        let submitted = requests.len();
        while let Some(ev) = self.queue.pop() {
            debug_assert!(ev.at >= self.now, "event time went backwards");
            self.now = ev.at;
            match ev.kind {
                EventKind::Arrival(req) => self.on_arrival(req),
                EventKind::PrefillDone { replica } => self.on_prefill_done(replica)?,
                EventKind::PrefillSlotFree { replica } => {
                    self.prefills[replica].wakeup_scheduled = false;
                    self.maybe_start_prefill(replica);
                }
                EventKind::KvTransferDone { replica, request } => {
                    self.on_kv_arrived(replica, request)?
                }
                EventKind::DecodeStepDone { replica } => self.on_decode_step(replica)?,
                EventKind::WorkDone { .. } => {
                    return Err(Error::Simulation(
                        "WorkDone event in phase-split engine".into(),
                    ))
                }
            }
        }
        if self.records.len() + self.dropped != submitted {
            return Err(Error::Simulation(format!(
                "conservation violated: {} completed + {} dropped != {} submitted",
                self.records.len(),
                self.dropped,
                submitted
            )));
        }
        let horizon = self.now.saturating_since(SimTime::ZERO);
        Ok(Metrics::new(
            std::mem::take(&mut self.records),
            self.dropped,
            horizon,
        ))
    }

    fn on_arrival(&mut self, req: Request) {
        let (i, j) = self.pair_coords[self.router.next()];
        self.request_payloads.insert(req.id, req);
        self.pending.insert(
            req.id,
            Pending {
                prefill: i,
                decode: j,
                first_token_at: None,
            },
        );
        self.prefills[i].queue.push_back(req);
        self.maybe_start_prefill(i);
    }

    fn maybe_start_prefill(&mut self, i: usize) {
        let p = &mut self.prefills[i];
        if p.queue.is_empty() {
            return;
        }
        if p.next_free > self.now {
            // First stage still occupied: wake up when it frees.
            if !p.wakeup_scheduled {
                p.wakeup_scheduled = true;
                self.queue
                    .push(p.next_free, EventKind::PrefillSlotFree { replica: i });
            }
            return;
        }
        let budget = self.cfg.max_prefill_batch_tokens;
        if self.cfg.prefill_policy == PrefillPolicy::ShortestFirst {
            // Stable sort keeps arrival order among equal prompt lengths.
            p.queue.make_contiguous().sort_by_key(|r| r.prompt_len);
        }
        let mut total = 0u64;
        let mut batch = Vec::new();
        while let Some(front) = p.queue.front() {
            let t = front.prompt_len as u64;
            if !batch.is_empty() && total + t > budget {
                break;
            }
            total += t;
            batch.push(p.queue.pop_front().unwrap());
        }
        let avg_ctx = total / batch.len() as u64;
        let latency = p.cost.prefill_latency(total, avg_ctx);
        // Pipeline parallelism: the next batch may enter once the slowest
        // stage has processed this one; the batch itself completes after the
        // full pipeline latency.
        let bottleneck = p.cost.prefill_bottleneck(total, avg_ctx);
        p.next_free = self.now + bottleneck;
        p.in_flight.push_back(batch);
        self.queue
            .push(self.now + latency, EventKind::PrefillDone { replica: i });
    }

    fn on_prefill_done(&mut self, i: usize) -> Result<()> {
        let batch = self.prefills[i]
            .in_flight
            .pop_front()
            .ok_or_else(|| Error::Simulation("prefill done with nothing in flight".into()))?;
        for req in batch {
            let pend = self
                .pending
                .get_mut(&req.id)
                .ok_or_else(|| Error::Simulation(format!("unknown request {}", req.id)))?;
            pend.first_token_at = Some(self.now);
            let j = pend.decode;
            if req.decode_steps() == 0 {
                // Single-token output: the prefill already produced it.
                self.finish(req, self.now, SimDuration::ZERO)?;
                continue;
            }
            let dur = if self.cfg.model_kv_transfer {
                let ratio = self.cfg.kv_precision.ratio_vs_f16();
                kv_transfer_time(
                    &self.cfg.model,
                    &self.routes[i][j],
                    req.prompt_len as u64,
                    ratio,
                )
            } else {
                SimDuration::ZERO
            };
            // Serialize transfers on the sender's uplink; the sequence only
            // becomes admissible at the decode replica once its own KV
            // transfer completes (see on_kv_arrived).
            let start = self.sender_free_at[i].max(self.now);
            let done = start + dur;
            self.sender_free_at[i] = done;
            self.queue.push(
                done,
                EventKind::KvTransferDone {
                    replica: j,
                    request: req.id,
                },
            );
        }
        self.maybe_start_prefill(i);
        Ok(())
    }

    fn on_kv_arrived(&mut self, j: usize, request: RequestId) -> Result<()> {
        let req = self.find_request(request)?;
        self.decodes[j].waiting.push_back(WaitingSeq {
            id: req.id,
            prompt_len: req.prompt_len as u64,
            remaining: req.decode_steps(),
        });
        self.admit_waiting(j)?;
        self.maybe_start_decode_step(j);
        Ok(())
    }

    /// Admits waiting sequences in FCFS order while memory and batch slots
    /// allow. Oversized sequences that can never fit are dropped.
    fn admit_waiting(&mut self, j: usize) -> Result<()> {
        loop {
            let d = &mut self.decodes[j];
            let Some(front) = d.waiting.front().copied() else {
                return Ok(());
            };
            let need = front.prompt_len + 1;
            let total_need = front.prompt_len + 1 + front.remaining as u64;
            if total_need > d.kv_capacity {
                // can never fit: drop
                d.waiting.pop_front();
                self.pending.remove(&front.id);
                self.request_payloads.remove(&front.id);
                self.dropped += 1;
                continue;
            }
            if d.active.len() as u64 >= self.cfg.max_decode_batch
                || d.kv_used + need > d.kv_capacity
            {
                return Ok(());
            }
            // SLO-aware batch cap: do not grow the batch past the point
            // where the projected step latency breaks the TPOT deadline.
            if let Some(cap) = self.cfg.tpot_batch_cap {
                if !d.active.is_empty() {
                    let batch = d.active.len() as u64 + 1;
                    let ctx = (d.active.iter().map(|a| a.context).sum::<u64>() + need) / batch;
                    if d.cost.decode_step_latency(batch, ctx) > cap {
                        return Ok(());
                    }
                }
            }
            d.waiting.pop_front();
            d.kv_used += need;
            let first_token_at = self
                .pending
                .get(&front.id)
                .and_then(|p| p.first_token_at)
                .unwrap_or(self.now);
            d.active.push(ActiveSeq {
                id: front.id,
                context: need,
                remaining: front.remaining,
                last_token_at: first_token_at,
                max_gap: SimDuration::ZERO,
            });
        }
    }

    fn maybe_start_decode_step(&mut self, j: usize) {
        let d = &mut self.decodes[j];
        if d.stepping || d.active.is_empty() {
            return;
        }
        let batch = d.active.len() as u64;
        let avg_ctx =
            d.active.iter().map(|a| a.context).sum::<u64>() / batch;
        let latency = d.cost.decode_step_latency(batch, avg_ctx);
        d.stepping = true;
        self.queue
            .push(self.now + latency, EventKind::DecodeStepDone { replica: j });
    }

    fn on_decode_step(&mut self, j: usize) -> Result<()> {
        let d = &mut self.decodes[j];
        d.stepping = false;
        let now = self.now;
        let mut finished = Vec::new();
        let mut idx = 0;
        while idx < d.active.len() {
            let a = &mut d.active[idx];
            a.context += 1;
            a.remaining -= 1;
            d.kv_used += 1;
            let gap = now.saturating_since(a.last_token_at);
            a.max_gap = a.max_gap.max(gap);
            a.last_token_at = now;
            if a.remaining == 0 {
                let done = d.active.swap_remove(idx);
                d.kv_used -= done.context;
                finished.push((done.id, done.max_gap));
            } else {
                idx += 1;
            }
        }
        for (id, gap) in finished {
            let req = self.find_request(id)?;
            self.finish(req, self.now, gap)?;
        }
        self.admit_waiting(j)?;
        self.maybe_start_decode_step(j);
        Ok(())
    }

    /// Reconstructs the request payload for a completed id from pending
    /// bookkeeping (we stash the original request in the record path).
    fn find_request(&self, id: RequestId) -> Result<Request> {
        self.request_payloads
            .get(&id)
            .copied()
            .ok_or_else(|| Error::Simulation(format!("lost request {id}")))
    }

    fn finish(&mut self, req: Request, at: SimTime, max_token_gap: SimDuration) -> Result<()> {
        self.request_payloads.remove(&req.id);
        let pend = self
            .pending
            .remove(&req.id)
            .ok_or_else(|| Error::Simulation(format!("finish without pending: {}", req.id)))?;
        let first = pend
            .first_token_at
            .ok_or_else(|| Error::Simulation(format!("finish before prefill: {}", req.id)))?;
        self.records.push(RequestRecord {
            request: req,
            prefill_replica: pend.prefill,
            decode_replica: pend.decode,
            first_token_at: first,
            finished_at: at,
            max_token_gap,
        });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_cluster::presets;
    use ts_common::{GpuId, GroupSpec, ModelSpec, ParallelConfig, Phase, RoutingMatrix, SloKind, SloSpec, StageSpec};
    use ts_workload::{generator::generate, spec};

    fn group(phase: Phase, gpus: &[u32], tp: usize, pp: usize, layers: usize) -> GroupSpec {
        let per = layers / pp;
        let stages = (0..pp)
            .map(|s| StageSpec {
                gpus: gpus[s * tp..(s + 1) * tp].iter().map(|&g| GpuId(g)).collect(),
                layers: if s + 1 == pp { layers - per * (pp - 1) } else { per },
            })
            .collect();
        GroupSpec::new(phase, ParallelConfig::new(tp, pp).unwrap(), stages).unwrap()
    }

    /// 4xA40 prefill + 4x3090Ti decode on the Appendix-H testbed.
    fn testbed(bw: f64) -> (ts_cluster::Cluster, DeploymentPlan, SimConfig) {
        let cluster = presets::network_case_cluster(bw);
        let model = ModelSpec::llama_13b();
        let plan = DeploymentPlan::new(
            vec![
                group(Phase::Prefill, &[0, 1, 2, 3], 2, 2, model.num_layers),
                group(Phase::Decode, &[4, 5, 6, 7], 2, 2, model.num_layers),
            ],
            RoutingMatrix::uniform(1, 1),
        )
        .unwrap();
        (cluster, plan, SimConfig::new(model))
    }

    #[test]
    fn every_request_completes() {
        let (cluster, plan, cfg) = testbed(presets::ETH_40GBPS);
        let mut sim = Simulation::new(&cluster, &plan, cfg).unwrap();
        let reqs = generate(&spec::coding(0.5), ts_common::SimDuration::from_secs(60), 1);
        let m = sim.run(&reqs).unwrap();
        assert_eq!(m.num_completed(), reqs.len());
        assert_eq!(m.num_dropped(), 0);
    }

    #[test]
    fn records_are_causally_ordered() {
        let (cluster, plan, cfg) = testbed(presets::ETH_40GBPS);
        let mut sim = Simulation::new(&cluster, &plan, cfg).unwrap();
        let reqs = generate(&spec::conversation(0.5), ts_common::SimDuration::from_secs(60), 2);
        let m = sim.run(&reqs).unwrap();
        for r in m.records() {
            assert!(r.first_token_at >= r.request.arrival);
            assert!(r.finished_at >= r.first_token_at);
            if r.request.decode_steps() > 0 {
                assert!(r.finished_at > r.first_token_at);
            }
        }
    }

    #[test]
    fn deterministic_runs() {
        let (cluster, plan, cfg) = testbed(presets::ETH_40GBPS);
        let reqs = generate(&spec::coding(1.0), ts_common::SimDuration::from_secs(30), 3);
        let m1 = Simulation::new(&cluster, &plan, cfg.clone()).unwrap().run(&reqs).unwrap();
        let m2 = Simulation::new(&cluster, &plan, cfg).unwrap().run(&reqs).unwrap();
        assert_eq!(m1, m2);
    }

    #[test]
    fn higher_rate_worsens_latency() {
        let (cluster, plan, cfg) = testbed(presets::ETH_40GBPS);
        let lo_r = generate(&spec::coding(0.3), ts_common::SimDuration::from_secs(120), 4);
        let hi_r = generate(&spec::coding(4.0), ts_common::SimDuration::from_secs(120), 4);
        let lo = Simulation::new(&cluster, &plan, cfg.clone()).unwrap().run(&lo_r).unwrap();
        let hi = Simulation::new(&cluster, &plan, cfg).unwrap().run(&hi_r).unwrap();
        let p_lo = lo.latency_percentile(SloKind::Ttft, 0.9).unwrap();
        let p_hi = hi.latency_percentile(SloKind::Ttft, 0.9).unwrap();
        assert!(p_hi > p_lo, "{p_hi} <= {p_lo}");
    }

    #[test]
    fn kv_compression_reduces_e2e_on_slow_links() {
        // Table 8 / Figure 18 shape: on a bandwidth-starved link, 4-bit KV
        // transfers beat fp16 end to end.
        let (cluster, plan, cfg) = testbed(presets::ETH_5GBPS);
        let reqs = generate(&spec::fixed(1024, 64, 0.5), ts_common::SimDuration::from_secs(120), 5);
        let m4 = Simulation::new(&cluster, &plan, cfg.clone()).unwrap().run(&reqs).unwrap();
        let m16 = Simulation::new(&cluster, &plan, cfg.with_f16_kv()).unwrap().run(&reqs).unwrap();
        let e4 = m4.mean_latency(SloKind::E2e).unwrap();
        let e16 = m16.mean_latency(SloKind::E2e).unwrap();
        assert!(e4 < e16, "4-bit {e4} should beat fp16 {e16}");
    }

    #[test]
    fn single_token_outputs_skip_decode() {
        let (cluster, plan, cfg) = testbed(presets::ETH_40GBPS);
        let mut sim = Simulation::new(&cluster, &plan, cfg).unwrap();
        let reqs = generate(&spec::fixed(512, 1, 1.0), ts_common::SimDuration::from_secs(20), 6);
        let m = sim.run(&reqs).unwrap();
        assert_eq!(m.num_completed(), reqs.len());
        for r in m.records() {
            assert_eq!(r.finished_at, r.first_token_at);
        }
    }

    #[test]
    fn slo_attainment_monotone_in_scale() {
        let (cluster, plan, cfg) = testbed(presets::ETH_40GBPS);
        let reqs = generate(&spec::conversation(1.5), ts_common::SimDuration::from_secs(90), 7);
        let m = Simulation::new(&cluster, &plan, cfg).unwrap().run(&reqs).unwrap();
        let base = SloSpec::new(
            ts_common::SimDuration::from_millis(800),
            ts_common::SimDuration::from_millis(80),
            ts_common::SimDuration::from_secs(8),
        );
        let mut prev = 0.0;
        for s in [0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0] {
            let a = m.joint_attainment(&base.scaled(s));
            assert!(a >= prev - 1e-12, "attainment must not decrease: {a} < {prev}");
            prev = a;
        }
    }
}

#[cfg(test)]
mod tpot_cap_tests {
    use super::*;
    use ts_cluster::presets;
    use ts_common::{
        GpuId, GroupSpec, ModelSpec, ParallelConfig, Phase, RoutingMatrix, SloKind, StageSpec,
    };
    use ts_workload::{generator::generate, spec};

    fn plan(model: &ModelSpec) -> (ts_cluster::Cluster, DeploymentPlan) {
        let cluster = presets::network_case_cluster(presets::ETH_40GBPS);
        let group = |phase, ids: [u32; 4]| {
            GroupSpec::new(
                phase,
                ParallelConfig::new(4, 1).unwrap(),
                vec![StageSpec {
                    gpus: ids.iter().map(|&i| GpuId(i)).collect(),
                    layers: model.num_layers,
                }],
            )
            .unwrap()
        };
        let plan = DeploymentPlan::new(
            vec![
                group(Phase::Prefill, [0, 1, 2, 3]),
                group(Phase::Decode, [4, 5, 6, 7]),
            ],
            RoutingMatrix::uniform(1, 1),
        )
        .unwrap();
        (cluster, plan)
    }

    #[test]
    fn tpot_cap_bounds_tail_tpot() {
        // Under heavy decode concurrency, an SLO-aware admission cap keeps
        // p90 TPOT below the configured deadline (at the cost of queueing).
        let model = ModelSpec::llama_30b();
        let (cluster, plan) = plan(&model);
        let w = spec::fixed(512, 128, 2.5);
        let reqs = generate(&w, ts_common::SimDuration::from_secs(90), 3);
        let cap = ts_common::SimDuration::from_millis(40);

        let uncapped = Simulation::new(&cluster, &plan, SimConfig::new(model.clone()))
            .unwrap()
            .run(&reqs)
            .unwrap();
        let capped = Simulation::new(
            &cluster,
            &plan,
            SimConfig::new(model.clone()).with_tpot_cap(cap),
        )
        .unwrap()
        .run(&reqs)
        .unwrap();

        let p90 = |m: &crate::metrics::Metrics| {
            m.latency_percentile(SloKind::Tpot, 0.9).unwrap()
        };
        assert!(
            p90(&capped) <= cap + ts_common::SimDuration::from_millis(5),
            "capped p90 TPOT {} should respect the {cap} deadline",
            p90(&capped)
        );
        assert!(
            p90(&capped) <= p90(&uncapped),
            "cap must not worsen TPOT: {} vs {}",
            p90(&capped),
            p90(&uncapped)
        );
        // conservation still holds
        assert_eq!(
            capped.num_completed() + capped.num_dropped(),
            reqs.len()
        );
    }

    #[test]
    fn tpot_cap_never_deadlocks_single_sequences() {
        // Even with an absurdly tight cap the replica admits one sequence at
        // a time and everything eventually completes.
        let model = ModelSpec::llama_30b();
        let (cluster, plan) = plan(&model);
        let w = spec::fixed(256, 16, 0.5);
        let reqs = generate(&w, ts_common::SimDuration::from_secs(40), 4);
        let m = Simulation::new(
            &cluster,
            &plan,
            SimConfig::new(model).with_tpot_cap(ts_common::SimDuration::from_micros(1)),
        )
        .unwrap()
        .run(&reqs)
        .unwrap();
        assert_eq!(m.num_completed(), reqs.len());
    }
}

#[cfg(test)]
mod policy_tests {
    use super::*;
    use crate::config::PrefillPolicy;
    use ts_cluster::presets;
    use ts_common::{
        GpuId, GroupSpec, ModelSpec, ParallelConfig, Phase, RoutingMatrix, SloKind, StageSpec,
    };
    use ts_workload::generator::generate_mixture;

    #[test]
    fn sjf_improves_median_ttft_under_mixed_prompts() {
        let cluster = presets::network_case_cluster(presets::ETH_40GBPS);
        let model = ModelSpec::llama_30b();
        let group = |phase, ids: [u32; 4]| {
            GroupSpec::new(
                phase,
                ParallelConfig::new(4, 1).unwrap(),
                vec![StageSpec {
                    gpus: ids.iter().map(|&i| GpuId(i)).collect(),
                    layers: model.num_layers,
                }],
            )
            .unwrap()
        };
        let plan = DeploymentPlan::new(
            vec![
                group(Phase::Prefill, [0, 1, 2, 3]),
                group(Phase::Decode, [4, 5, 6, 7]),
            ],
            RoutingMatrix::uniform(1, 1),
        )
        .unwrap();
        // Mixed prompt lengths at pressure: many short, some very long.
        let trace = generate_mixture(
            &[
                ts_workload::spec::fixed(256, 8, 2.2),
                ts_workload::spec::fixed(3500, 8, 0.5),
            ],
            ts_common::SimDuration::from_secs(120),
            3,
        );
        let run = |policy| {
            Simulation::new(
                &cluster,
                &plan,
                SimConfig::new(model.clone()).with_prefill_policy(policy),
            )
            .unwrap()
            .run(&trace)
            .unwrap()
        };
        let fcfs = run(PrefillPolicy::Fcfs);
        let sjf = run(PrefillPolicy::ShortestFirst);
        let p50 = |m: &crate::metrics::Metrics| m.latency_percentile(SloKind::Ttft, 0.5).unwrap();
        let p99 = |m: &crate::metrics::Metrics| m.latency_percentile(SloKind::Ttft, 0.99).unwrap();
        assert!(
            p50(&sjf) <= p50(&fcfs),
            "SJF median TTFT {} should not exceed FCFS {}",
            p50(&sjf),
            p50(&fcfs)
        );
        assert!(
            p99(&sjf) >= p99(&fcfs),
            "SJF pays at the tail: {} vs {}",
            p99(&sjf),
            p99(&fcfs)
        );
        // conservation under both policies
        assert_eq!(fcfs.num_completed() + fcfs.num_dropped(), trace.len());
        assert_eq!(sjf.num_completed() + sjf.num_dropped(), trace.len());
    }
}
