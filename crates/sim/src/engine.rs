//! The phase-split serving engine.
//!
//! Simulates a [`DeploymentPlan`] end to end: requests arrive at the
//! coordinator, are routed to a (prefill, decode) replica pair by the
//! orchestration matrix, batched FCFS on the prefill replica, their KV cache
//! is shipped over the (possibly contended) inter-replica link, and they
//! join the decode replica's continuous batch until all output tokens are
//! generated. All durations come from [`ts_costmodel`]; all scheduling is
//! deterministic.
//!
//! # Fault injection
//!
//! [`Simulation::run_with_faults`] additionally consumes a
//! [`FaultScript`]: replicas and links can die (and heal) *mid-run*.
//! Capacity is lost at the fault time, but the coordinator only reacts one
//! heartbeat detection delay later — between the two, work lands on the dead
//! replica and is silently lost, as in a real deployment. On detection
//! (with recovery enabled) routing is masked away from the dead replica,
//! queued and in-flight prefill batches are re-routed to survivors, and
//! decode sequences whose KV cache died are re-prefilled from scratch on a
//! surviving pair (the lost work is accounted in
//! [`crate::metrics::RecoveryCounters`]). KV transfers completing over a
//! downed link retry with capped exponential backoff. While no live route
//! exists, arrivals stall up to [`SimConfig::shed_threshold`] and are
//! rejected beyond it.

use crate::config::{PrefillPolicy, SimConfig};
use crate::event::{EventKind, EventQueue};
use crate::fault::{FaultKind, FaultScript, TimedFault};
use crate::metrics::{Metrics, RecoveryCounters, RequestRecord};
use crate::router::StrideRouter;
use std::collections::{BTreeSet, HashMap, VecDeque};
use ts_cluster::Cluster;
use ts_common::{
    DeploymentPlan, Error, Request, RequestId, Result, SimDuration, SimTime,
};
use ts_costmodel::replica::{kv_route, kv_transfer_time, KvRouteSegment};
use ts_costmodel::ReplicaCostModel;

/// Per-request routing decision and timing bookkeeping.
#[derive(Debug, Clone, Copy)]
struct Pending {
    prefill: usize,
    decode: usize,
    first_token_at: Option<SimTime>,
}

/// Decode-side progress carried across a fault: a re-prefilled sequence
/// resumes its token-gap accounting instead of starting fresh, so the
/// recovery stall shows up in ITL metrics.
#[derive(Debug, Clone, Copy)]
struct ResumeState {
    last_token_at: SimTime,
    max_gap: SimDuration,
}

/// A unit of prefill work: a fresh request (prompt prefill) or a recovered
/// sequence being re-prefilled over its full lost context.
#[derive(Debug, Clone, Copy)]
struct PrefillJob {
    req: Request,
    /// Tokens to prefill and then ship: the prompt for fresh requests, the
    /// whole lost context (prompt + generated) for recovered ones.
    tokens: u64,
    /// Decode steps still owed after this prefill.
    remaining: u32,
    resume: Option<ResumeState>,
}

impl PrefillJob {
    fn fresh(req: Request) -> Self {
        PrefillJob {
            req,
            tokens: req.prompt_len as u64,
            remaining: req.decode_steps(),
            resume: None,
        }
    }
}

#[derive(Debug)]
struct PrefillState {
    cost: ReplicaCostModel,
    queue: VecDeque<PrefillJob>,
    /// Batches currently flowing through the pipeline (FIFO: completion
    /// events fire in launch order because stage times are batch-agnostic
    /// in ordering).
    in_flight: VecDeque<Vec<PrefillJob>>,
    /// Earliest time the first pipeline stage can accept a new batch.
    next_free: SimTime,
    /// Whether a slot-free wakeup is already scheduled.
    wakeup_scheduled: bool,
    /// Fault state: dead replicas hold their work frozen until detection.
    alive: bool,
    /// Bumped on every death so completion events scheduled before the
    /// fault are recognized as stale.
    epoch: u64,
}

#[derive(Debug, Clone, Copy)]
struct ActiveSeq {
    id: RequestId,
    /// Tokens currently in this sequence's KV cache (prompt + generated).
    context: u64,
    /// Decode steps still to run.
    remaining: u32,
    /// When this sequence's previous token was emitted.
    last_token_at: SimTime,
    /// Longest inter-token gap observed so far.
    max_gap: SimDuration,
}

#[derive(Debug, Clone, Copy)]
struct WaitingSeq {
    id: RequestId,
    /// Context tokens whose KV just arrived (prompt, or full re-prefilled
    /// context for recovered sequences).
    tokens: u64,
    remaining: u32,
    resume: Option<ResumeState>,
}

#[derive(Debug)]
struct DecodeState {
    cost: ReplicaCostModel,
    kv_capacity: u64,
    kv_used: u64,
    active: Vec<ActiveSeq>,
    waiting: VecDeque<WaitingSeq>,
    stepping: bool,
    alive: bool,
    epoch: u64,
}

/// An in-flight KV transfer (registry entry; completion events carry an
/// attempt number so superseded attempts are ignored).
#[derive(Debug, Clone, Copy)]
struct Transfer {
    from: usize,
    to: usize,
    job: PrefillJob,
    attempt: u32,
}

/// The phase-split discrete-event simulation.
pub struct Simulation<'a> {
    cluster: &'a Cluster,
    cfg: SimConfig,
    prefills: Vec<PrefillState>,
    decodes: Vec<DecodeState>,
    router: StrideRouter,
    pair_coords: Vec<(usize, usize)>,
    /// KV route per (prefill, decode) pair.
    routes: Vec<Vec<Vec<KvRouteSegment>>>,
    /// Per-sender (prefill replica) uplink availability for KV transfer
    /// queuing: one replica's outbound transfers serialize on its NIC,
    /// whichever decode replica they target.
    sender_free_at: Vec<SimTime>,
    queue: EventQueue,
    pending: HashMap<RequestId, Pending>,
    request_payloads: HashMap<RequestId, Request>,
    records: Vec<RequestRecord>,
    dropped: usize,
    now: SimTime,
    // --- fault state ---
    faults: Vec<TimedFault>,
    recovery_enabled: bool,
    /// Link availability per (prefill, decode) pair.
    link_down: Vec<Vec<bool>>,
    /// The coordinator's belief about replica liveness: updated at fault
    /// *detection* (downs) and immediately on healing (ups). Routing masks
    /// follow beliefs, not ground truth — that is the detection window.
    believed_dead_prefill: Vec<bool>,
    believed_dead_decode: Vec<bool>,
    /// In-flight KV transfers by request.
    transfers: HashMap<RequestId, Transfer>,
    /// Transfers whose target died with no live alternative; re-dispatched
    /// when a decode replica comes back.
    parked: Vec<Transfer>,
    /// Arrivals (and requeues) stalled because no live route exists or the
    /// service is paused; shed beyond `cfg.shed_threshold`.
    stalled: VecDeque<PrefillJob>,
    paused_until: Option<SimTime>,
    rejected: usize,
    recovery: RecoveryCounters,
    /// Requests affected by each fault (fault time, outstanding ids); a
    /// fault's time-to-recover is recorded when its set empties.
    affected: Vec<(SimTime, BTreeSet<RequestId>)>,
}

impl<'a> Simulation<'a> {
    /// Builds a simulation for `plan` on `cluster`.
    ///
    /// # Errors
    /// Returns [`Error::Infeasible`] if any group cannot hold the model, and
    /// [`Error::InvalidConfig`] for malformed routing.
    pub fn new(cluster: &'a Cluster, plan: &DeploymentPlan, cfg: SimConfig) -> Result<Self> {
        let prefill_idx = plan.prefill_indices();
        let decode_idx = plan.decode_indices();
        let mut prefills = Vec::with_capacity(prefill_idx.len());
        for &gi in &prefill_idx {
            prefills.push(PrefillState {
                cost: ReplicaCostModel::new(cluster, &cfg.model, &plan.groups[gi], &cfg.params)?,
                queue: VecDeque::new(),
                in_flight: VecDeque::new(),
                next_free: SimTime::ZERO,
                wakeup_scheduled: false,
                alive: true,
                epoch: 0,
            });
        }
        let mut decodes = Vec::with_capacity(decode_idx.len());
        for &gi in &decode_idx {
            let cost =
                ReplicaCostModel::new(cluster, &cfg.model, &plan.groups[gi], &cfg.params)?;
            let kv_capacity = cost.kv_capacity_tokens();
            decodes.push(DecodeState {
                cost,
                kv_capacity,
                kv_used: 0,
                active: Vec::new(),
                waiting: VecDeque::new(),
                stepping: false,
                alive: true,
                epoch: 0,
            });
        }
        let (router, pair_coords) = StrideRouter::from_matrix(plan.routing.rates())?;
        let mut routes = Vec::with_capacity(prefills.len());
        for p in &prefills {
            let mut row = Vec::with_capacity(decodes.len());
            for d in &decodes {
                row.push(kv_route(cluster, &p.cost, &d.cost));
            }
            routes.push(row);
        }
        let sender_free_at = vec![SimTime::ZERO; prefills.len()];
        let link_down = vec![vec![false; decodes.len()]; prefills.len()];
        let believed_dead_prefill = vec![false; prefills.len()];
        let believed_dead_decode = vec![false; decodes.len()];
        Ok(Simulation {
            cluster,
            cfg,
            prefills,
            decodes,
            router,
            pair_coords,
            routes,
            sender_free_at,
            queue: EventQueue::new(),
            pending: HashMap::new(),
            request_payloads: HashMap::new(),
            records: Vec::new(),
            dropped: 0,
            now: SimTime::ZERO,
            faults: Vec::new(),
            recovery_enabled: true,
            link_down,
            believed_dead_prefill,
            believed_dead_decode,
            transfers: HashMap::new(),
            parked: Vec::new(),
            stalled: VecDeque::new(),
            paused_until: None,
            rejected: 0,
            recovery: RecoveryCounters::default(),
            affected: Vec::new(),
        })
    }

    /// The cluster this simulation runs on.
    pub fn cluster(&self) -> &Cluster {
        self.cluster
    }

    /// Runs the trace to completion and returns the metrics.
    ///
    /// # Errors
    /// Returns [`Error::Simulation`] if internal invariants are violated.
    pub fn run(&mut self, requests: &[Request]) -> Result<Metrics> {
        self.run_with_faults(requests, &FaultScript::none())
    }

    /// Runs the trace with mid-flight fault injection. With an empty script
    /// this is exactly [`Simulation::run`].
    ///
    /// # Errors
    /// Returns [`Error::InvalidConfig`] for out-of-range replica indices in
    /// the script, and [`Error::Simulation`] on invariant violations.
    pub fn run_with_faults(
        &mut self,
        requests: &[Request],
        script: &FaultScript,
    ) -> Result<Metrics> {
        self.validate_script(script)?;
        self.faults = script.faults.clone();
        self.recovery_enabled = script.recovery;

        for r in requests {
            self.queue.push(r.arrival, EventKind::Arrival(*r));
        }
        for (idx, f) in self.faults.iter().enumerate() {
            self.queue.push(f.at, EventKind::FaultTriggered { index: idx });
            // Detection only matters for deaths, and only when the engine
            // actually recovers; healing and pauses act at trigger time.
            let needs_detection = matches!(
                f.kind,
                FaultKind::PrefillDown(_) | FaultKind::DecodeDown(_)
            );
            if needs_detection && script.recovery {
                self.queue.push(
                    f.at + script.detection_delay,
                    EventKind::FaultDetected { index: idx },
                );
            }
        }
        let submitted = requests.len();
        while let Some(ev) = self.queue.pop() {
            debug_assert!(ev.at >= self.now, "event time went backwards");
            self.now = ev.at;
            match ev.kind {
                EventKind::Arrival(req) => self.on_arrival(req),
                EventKind::PrefillDone { replica, epoch } => {
                    if self.prefills[replica].alive && self.prefills[replica].epoch == epoch {
                        self.on_prefill_done(replica)?;
                    }
                }
                EventKind::PrefillSlotFree { replica, epoch } => {
                    if self.prefills[replica].alive && self.prefills[replica].epoch == epoch {
                        self.prefills[replica].wakeup_scheduled = false;
                        self.maybe_start_prefill(replica);
                    }
                }
                EventKind::KvTransferDone {
                    replica,
                    request,
                    attempt,
                } => self.on_transfer_done(replica, request, attempt)?,
                EventKind::DecodeStepDone { replica, epoch } => {
                    if self.decodes[replica].alive && self.decodes[replica].epoch == epoch {
                        self.on_decode_step(replica)?;
                    }
                }
                EventKind::WorkDone { .. } => {
                    return Err(Error::Simulation(
                        "WorkDone event in phase-split engine".into(),
                    ))
                }
                EventKind::FaultTriggered { index } => self.on_fault_triggered(index),
                EventKind::FaultDetected { index } => self.on_fault_detected(index),
                EventKind::ServiceResumed => self.on_service_resumed(),
            }
        }
        // Anything still in the system when events run dry was lost to a
        // fault it never recovered from (stalled, parked, frozen on a dead
        // replica).
        self.dropped += self.pending.len();
        self.pending.clear();
        self.request_payloads.clear();
        if self.records.len() + self.dropped + self.rejected != submitted {
            return Err(Error::Simulation(format!(
                "conservation violated: {} completed + {} dropped + {} rejected != {} submitted",
                self.records.len(),
                self.dropped,
                self.rejected,
                submitted
            )));
        }
        let horizon = self.now.saturating_since(SimTime::ZERO);
        Ok(Metrics::with_recovery(
            std::mem::take(&mut self.records),
            self.dropped,
            self.rejected,
            horizon,
            std::mem::take(&mut self.recovery),
        ))
    }

    fn validate_script(&self, script: &FaultScript) -> Result<()> {
        let np = self.prefills.len();
        let nd = self.decodes.len();
        for f in &script.faults {
            let ok = match f.kind {
                FaultKind::PrefillDown(i) | FaultKind::PrefillUp(i) => i < np,
                FaultKind::DecodeDown(j) | FaultKind::DecodeUp(j) => j < nd,
                FaultKind::LinkDown { prefill, decode }
                | FaultKind::LinkUp { prefill, decode } => prefill < np && decode < nd,
                FaultKind::Pause { .. } => true,
            };
            if !ok {
                return Err(Error::InvalidConfig(format!(
                    "fault references a replica outside the plan: {:?}",
                    f.kind
                )));
            }
        }
        Ok(())
    }

    fn on_arrival(&mut self, req: Request) {
        self.request_payloads.insert(req.id, req);
        self.pending.insert(
            req.id,
            Pending {
                prefill: 0,
                decode: 0,
                first_token_at: None,
            },
        );
        self.dispatch_job(PrefillJob::fresh(req));
    }

    /// Routes a job to a live (prefill, decode) pair, or stalls/sheds it if
    /// the service is paused or no live route exists.
    fn dispatch_job(&mut self, job: PrefillJob) {
        if self.paused_until.is_some() || self.router.num_enabled() == 0 {
            self.stall_or_shed(job);
            return;
        }
        let (i, j) = self.pair_coords[self.router.next()];
        if let Some(p) = self.pending.get_mut(&job.req.id) {
            p.prefill = i;
            p.decode = j;
        }
        self.prefills[i].queue.push_back(job);
        self.maybe_start_prefill(i);
    }

    fn stall_or_shed(&mut self, job: PrefillJob) {
        if self.stalled.len() < self.cfg.shed_threshold {
            self.stalled.push_back(job);
        } else {
            let id = job.req.id;
            self.pending.remove(&id);
            self.request_payloads.remove(&id);
            self.rejected += 1;
            self.clear_affected(id);
        }
    }

    fn drop_request(&mut self, id: RequestId) {
        self.pending.remove(&id);
        self.request_payloads.remove(&id);
        self.dropped += 1;
        self.clear_affected(id);
    }

    /// Marks `id` no longer waiting on fault recovery; records a fault's
    /// time-to-recover when its last affected request resolves.
    fn clear_affected(&mut self, id: RequestId) {
        let now = self.now;
        let mut recovered_at = Vec::new();
        for (at, set) in &mut self.affected {
            if set.remove(&id) && set.is_empty() {
                recovered_at.push(now.saturating_since(*at));
            }
        }
        self.recovery.recovery_times.extend(recovered_at);
    }

    fn maybe_start_prefill(&mut self, i: usize) {
        let p = &mut self.prefills[i];
        if !p.alive || p.queue.is_empty() {
            return;
        }
        if p.next_free > self.now {
            // First stage still occupied: wake up when it frees.
            if !p.wakeup_scheduled {
                p.wakeup_scheduled = true;
                self.queue.push(
                    p.next_free,
                    EventKind::PrefillSlotFree {
                        replica: i,
                        epoch: p.epoch,
                    },
                );
            }
            return;
        }
        let budget = self.cfg.max_prefill_batch_tokens;
        if self.cfg.prefill_policy == PrefillPolicy::ShortestFirst {
            // Stable sort keeps arrival order among equal prompt lengths.
            p.queue.make_contiguous().sort_by_key(|j| j.tokens);
        }
        let mut total = 0u64;
        let mut batch = Vec::new();
        while let Some(front) = p.queue.front() {
            let t = front.tokens;
            if !batch.is_empty() && total + t > budget {
                break;
            }
            total += t;
            batch.push(p.queue.pop_front().unwrap());
        }
        let avg_ctx = total / batch.len() as u64;
        let latency = p.cost.prefill_latency(total, avg_ctx);
        // Pipeline parallelism: the next batch may enter once the slowest
        // stage has processed this one; the batch itself completes after the
        // full pipeline latency.
        let bottleneck = p.cost.prefill_bottleneck(total, avg_ctx);
        p.next_free = self.now + bottleneck;
        p.in_flight.push_back(batch);
        self.queue.push(
            self.now + latency,
            EventKind::PrefillDone {
                replica: i,
                epoch: p.epoch,
            },
        );
    }

    fn on_prefill_done(&mut self, i: usize) -> Result<()> {
        let batch = self.prefills[i]
            .in_flight
            .pop_front()
            .ok_or_else(|| Error::Simulation("prefill done with nothing in flight".into()))?;
        for job in batch {
            let pend = self
                .pending
                .get_mut(&job.req.id)
                .ok_or_else(|| Error::Simulation(format!("unknown request {}", job.req.id)))?;
            // Re-prefills keep their original first-token time: TTFT was
            // already paid, recovery shows up in inter-token gaps instead.
            if pend.first_token_at.is_none() {
                pend.first_token_at = Some(self.now);
            }
            let j = pend.decode;
            if job.remaining == 0 {
                // Single-token output: the prefill already produced it.
                let req = job.req;
                self.finish(req, self.now, SimDuration::ZERO)?;
                continue;
            }
            self.launch_transfer(
                Transfer {
                    from: i,
                    to: j,
                    job,
                    attempt: 1,
                },
                SimDuration::ZERO,
            );
        }
        self.maybe_start_prefill(i);
        Ok(())
    }

    /// Schedules (or re-schedules) a KV transfer on the sender's uplink
    /// after an optional backoff delay and registers it.
    fn launch_transfer(&mut self, transfer: Transfer, delay: SimDuration) {
        let dur = if self.cfg.model_kv_transfer {
            let ratio = self.cfg.kv_precision.ratio_vs_f16();
            kv_transfer_time(
                &self.cfg.model,
                &self.routes[transfer.from][transfer.to],
                transfer.job.tokens,
                ratio,
            )
        } else {
            SimDuration::ZERO
        };
        // Serialize transfers on the sender's uplink; the sequence only
        // becomes admissible at the decode replica once its own KV
        // transfer completes (see on_transfer_done).
        let start = self.sender_free_at[transfer.from].max(self.now + delay);
        let done = start + dur;
        self.sender_free_at[transfer.from] = done;
        self.queue.push(
            done,
            EventKind::KvTransferDone {
                replica: transfer.to,
                request: transfer.job.req.id,
                attempt: transfer.attempt,
            },
        );
        self.transfers.insert(transfer.job.req.id, transfer);
    }

    /// Exponential backoff for transfer attempt `attempt` (2 = first
    /// retry): `base * 2^(attempt-2)`, capped.
    fn retry_backoff(&self, attempt: u32) -> SimDuration {
        let base = self.cfg.kv_retry_backoff_base;
        let cap = self.cfg.kv_retry_backoff_cap;
        let mut delay = base;
        for _ in 2..attempt {
            delay = delay + delay;
            if delay >= cap {
                return cap;
            }
        }
        delay.min(cap)
    }

    fn on_transfer_done(&mut self, replica: usize, request: RequestId, attempt: u32) -> Result<()> {
        let Some(&t) = self.transfers.get(&request) else {
            return Ok(()); // superseded or dropped
        };
        if t.attempt != attempt || t.to != replica {
            return Ok(()); // stale attempt
        }
        if self.link_down[t.from][t.to] {
            // The link faulted mid-transfer. With recovery the sender
            // retries after a capped exponential backoff; without, the
            // request is lost.
            if !self.recovery_enabled {
                self.transfers.remove(&request);
                self.drop_request(request);
                return Ok(());
            }
            let mut t = t;
            t.attempt += 1;
            self.recovery.kv_transfer_retries += 1;
            let delay = self.retry_backoff(t.attempt);
            self.launch_transfer(t, delay);
            return Ok(());
        }
        if !self.decodes[t.to].alive {
            // Target died while the bytes were in flight.
            self.transfers.remove(&request);
            if !self.recovery_enabled {
                self.drop_request(request);
                return Ok(());
            }
            self.redispatch_transfer(t);
            return Ok(());
        }
        // Delivered.
        self.transfers.remove(&request);
        let d = &mut self.decodes[t.to];
        d.waiting.push_back(WaitingSeq {
            id: request,
            tokens: t.job.tokens,
            remaining: t.job.remaining,
            resume: t.job.resume,
        });
        self.admit_waiting(t.to)?;
        self.maybe_start_decode_step(t.to);
        Ok(())
    }

    /// Re-targets a transfer whose decode replica died: picks the live
    /// replica with the most free KV memory (lowest index breaks ties), or
    /// parks the transfer until one comes back.
    fn redispatch_transfer(&mut self, mut t: Transfer) {
        let target = self
            .decodes
            .iter()
            .enumerate()
            .filter(|(_, d)| d.alive)
            .max_by_key(|(j, d)| (d.kv_capacity.saturating_sub(d.kv_used), std::cmp::Reverse(*j)))
            .map(|(j, _)| j);
        let Some(j2) = target else {
            self.parked.push(t);
            return;
        };
        if let Some(p) = self.pending.get_mut(&t.job.req.id) {
            p.decode = j2;
        }
        t.to = j2;
        t.attempt += 1;
        self.recovery.kv_transfer_retries += 1;
        self.launch_transfer(t, SimDuration::ZERO);
    }

    /// Admits waiting sequences in FCFS order while memory and batch slots
    /// allow. Oversized sequences that can never fit are dropped.
    fn admit_waiting(&mut self, j: usize) -> Result<()> {
        loop {
            let d = &mut self.decodes[j];
            if !d.alive {
                return Ok(());
            }
            let Some(front) = d.waiting.front().copied() else {
                return Ok(());
            };
            let need = front.tokens + 1;
            let total_need = front.tokens + 1 + front.remaining as u64;
            if total_need > d.kv_capacity {
                // can never fit: drop
                d.waiting.pop_front();
                self.drop_request(front.id);
                continue;
            }
            if d.active.len() as u64 >= self.cfg.max_decode_batch
                || d.kv_used + need > d.kv_capacity
            {
                return Ok(());
            }
            // SLO-aware batch cap: do not grow the batch past the point
            // where the projected step latency breaks the TPOT deadline.
            if let Some(cap) = self.cfg.tpot_batch_cap {
                if !d.active.is_empty() {
                    let batch = d.active.len() as u64 + 1;
                    let ctx = (d.active.iter().map(|a| a.context).sum::<u64>() + need) / batch;
                    if d.cost.decode_step_latency(batch, ctx) > cap {
                        return Ok(());
                    }
                }
            }
            d.waiting.pop_front();
            d.kv_used += need;
            let first_token_at = self
                .pending
                .get(&front.id)
                .and_then(|p| p.first_token_at)
                .unwrap_or(self.now);
            let (last_token_at, max_gap) = match front.resume {
                Some(r) => (r.last_token_at, r.max_gap),
                None => (first_token_at, SimDuration::ZERO),
            };
            self.decodes[j].active.push(ActiveSeq {
                id: front.id,
                context: need,
                remaining: front.remaining,
                last_token_at,
                max_gap,
            });
            // Back in a decode batch: this request has recovered.
            self.clear_affected(front.id);
        }
    }

    fn maybe_start_decode_step(&mut self, j: usize) {
        let d = &mut self.decodes[j];
        if !d.alive || d.stepping || d.active.is_empty() {
            return;
        }
        let batch = d.active.len() as u64;
        let avg_ctx =
            d.active.iter().map(|a| a.context).sum::<u64>() / batch;
        let latency = d.cost.decode_step_latency(batch, avg_ctx);
        d.stepping = true;
        self.queue.push(
            self.now + latency,
            EventKind::DecodeStepDone {
                replica: j,
                epoch: d.epoch,
            },
        );
    }

    fn on_decode_step(&mut self, j: usize) -> Result<()> {
        let d = &mut self.decodes[j];
        d.stepping = false;
        let now = self.now;
        let mut finished = Vec::new();
        let mut idx = 0;
        while idx < d.active.len() {
            let a = &mut d.active[idx];
            a.context += 1;
            a.remaining -= 1;
            d.kv_used += 1;
            let gap = now.saturating_since(a.last_token_at);
            a.max_gap = a.max_gap.max(gap);
            a.last_token_at = now;
            if a.remaining == 0 {
                let done = d.active.swap_remove(idx);
                d.kv_used -= done.context;
                finished.push((done.id, done.max_gap));
            } else {
                idx += 1;
            }
        }
        for (id, gap) in finished {
            let req = self.find_request(id)?;
            self.finish(req, self.now, gap)?;
        }
        self.admit_waiting(j)?;
        self.maybe_start_decode_step(j);
        Ok(())
    }

    // --- fault handlers ---

    fn on_fault_triggered(&mut self, index: usize) {
        match self.faults[index].kind {
            FaultKind::PrefillDown(i) => {
                let p = &mut self.prefills[i];
                p.alive = false;
                p.epoch += 1; // invalidates every scheduled completion
                p.wakeup_scheduled = false;
                // Queued and in-flight work freezes in place until the
                // heartbeat monitor notices (FaultDetected).
            }
            FaultKind::DecodeDown(j) => {
                let d = &mut self.decodes[j];
                d.alive = false;
                d.epoch += 1;
                d.stepping = false;
                // KV cache and batches are lost, but the coordinator keeps
                // routing here until detection.
            }
            FaultKind::PrefillUp(i) => self.on_prefill_up(i),
            FaultKind::DecodeUp(j) => self.on_decode_up(j),
            FaultKind::LinkDown { prefill, decode } => {
                self.link_down[prefill][decode] = true;
            }
            FaultKind::LinkUp { prefill, decode } => {
                self.link_down[prefill][decode] = false;
            }
            FaultKind::Pause { until } => {
                if until > self.now {
                    self.paused_until = Some(until);
                    self.queue.push(until, EventKind::ServiceResumed);
                }
            }
        }
    }

    fn on_fault_detected(&mut self, index: usize) {
        let at = self.faults[index].at;
        match self.faults[index].kind {
            FaultKind::PrefillDown(i) => {
                if self.prefills[i].alive {
                    return; // blipped back up before detection; healed already
                }
                self.believed_dead_prefill[i] = true;
                self.refresh_router();
                let p = &mut self.prefills[i];
                let mut lost: Vec<PrefillJob> = p.in_flight.drain(..).flatten().collect();
                lost.extend(p.queue.drain(..));
                let mut ids = BTreeSet::new();
                for job in &lost {
                    ids.insert(job.req.id);
                }
                if !ids.is_empty() {
                    self.affected.push((at, ids));
                }
                for job in lost {
                    self.recovery.requeued_requests += 1;
                    self.dispatch_job(job);
                }
            }
            FaultKind::DecodeDown(j) => {
                if self.decodes[j].alive {
                    return;
                }
                self.believed_dead_decode[j] = true;
                self.refresh_router();
                let jobs = self.evacuate_decode(j);
                let mut ids = BTreeSet::new();
                for job in &jobs {
                    ids.insert(job.req.id);
                }
                if !ids.is_empty() {
                    self.affected.push((at, ids));
                }
                for job in jobs {
                    self.dispatch_job(job);
                }
            }
            _ => {}
        }
    }

    /// Converts a dead decode replica's lost sequences into re-prefill jobs
    /// (the KV cache is gone: prompt *and* generated tokens must be
    /// recomputed) and resets its memory accounting.
    fn evacuate_decode(&mut self, j: usize) -> Vec<PrefillJob> {
        let d = &mut self.decodes[j];
        d.kv_used = 0;
        let active: Vec<ActiveSeq> = std::mem::take(&mut d.active);
        let waiting: VecDeque<WaitingSeq> = std::mem::take(&mut d.waiting);
        let mut jobs = Vec::new();
        for a in active {
            let Some(&req) = self.request_payloads.get(&a.id) else {
                continue;
            };
            self.recovery.reprefilled_tokens += a.context;
            jobs.push(PrefillJob {
                req,
                tokens: a.context,
                remaining: a.remaining,
                resume: Some(ResumeState {
                    last_token_at: a.last_token_at,
                    max_gap: a.max_gap,
                }),
            });
        }
        for w in waiting {
            let Some(&req) = self.request_payloads.get(&w.id) else {
                continue;
            };
            self.recovery.reprefilled_tokens += w.tokens;
            jobs.push(PrefillJob {
                req,
                tokens: w.tokens,
                remaining: w.remaining,
                resume: w.resume,
            });
        }
        jobs
    }

    fn on_prefill_up(&mut self, i: usize) {
        let p = &mut self.prefills[i];
        p.alive = true;
        p.epoch += 1;
        p.next_free = self.now;
        p.wakeup_scheduled = false;
        // Work frozen at death never re-runs on its own (its completion
        // events are stale); restart it or declare it lost.
        let mut lost: Vec<PrefillJob> = p.in_flight.drain(..).flatten().collect();
        lost.extend(p.queue.drain(..));
        self.believed_dead_prefill[i] = false;
        self.refresh_router();
        if self.recovery_enabled {
            for job in lost {
                self.recovery.requeued_requests += 1;
                self.dispatch_job(job);
            }
            self.drain_stalled();
        } else {
            for job in lost {
                self.drop_request(job.req.id);
            }
        }
    }

    fn on_decode_up(&mut self, j: usize) {
        {
            let d = &mut self.decodes[j];
            d.alive = true;
            d.epoch += 1;
            d.stepping = false;
        }
        // Sequences frozen at death lost their KV either way.
        let lost = self.evacuate_decode(j);
        self.believed_dead_decode[j] = false;
        self.refresh_router();
        if self.recovery_enabled {
            for job in lost {
                self.dispatch_job(job);
            }
            let parked = std::mem::take(&mut self.parked);
            for t in parked {
                self.redispatch_transfer(t);
            }
            self.drain_stalled();
        } else {
            for job in lost {
                // evacuate_decode counted these as re-prefill work, but
                // nothing recovers them under a no-recovery policy.
                self.recovery.reprefilled_tokens -= job.tokens;
                self.drop_request(job.req.id);
            }
        }
    }

    /// Re-derives the routing mask from believed replica liveness.
    fn refresh_router(&mut self) {
        for (k, &(i, j)) in self.pair_coords.iter().enumerate() {
            let enabled = !self.believed_dead_prefill[i] && !self.believed_dead_decode[j];
            if self.router.is_enabled(k) != enabled {
                self.router.set_enabled(k, enabled);
            }
        }
    }

    fn drain_stalled(&mut self) {
        if self.paused_until.is_some() || self.router.num_enabled() == 0 {
            return;
        }
        let stalled = std::mem::take(&mut self.stalled);
        for job in stalled {
            self.dispatch_job(job);
        }
    }

    fn on_service_resumed(&mut self) {
        // Pauses can be extended by a later Pause fault; only resume at the
        // latest deadline.
        if let Some(until) = self.paused_until {
            if until > self.now {
                return;
            }
        }
        self.paused_until = None;
        self.drain_stalled();
    }

    /// Reconstructs the request payload for a completed id from pending
    /// bookkeeping (we stash the original request in the record path).
    fn find_request(&self, id: RequestId) -> Result<Request> {
        self.request_payloads
            .get(&id)
            .copied()
            .ok_or_else(|| Error::Simulation(format!("lost request {id}")))
    }

    fn finish(&mut self, req: Request, at: SimTime, max_token_gap: SimDuration) -> Result<()> {
        self.request_payloads.remove(&req.id);
        let pend = self
            .pending
            .remove(&req.id)
            .ok_or_else(|| Error::Simulation(format!("finish without pending: {}", req.id)))?;
        let first = pend
            .first_token_at
            .ok_or_else(|| Error::Simulation(format!("finish before prefill: {}", req.id)))?;
        self.records.push(RequestRecord {
            request: req,
            prefill_replica: pend.prefill,
            decode_replica: pend.decode,
            first_token_at: first,
            finished_at: at,
            max_token_gap,
        });
        self.clear_affected(req.id);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_cluster::presets;
    use ts_common::{GpuId, GroupSpec, ModelSpec, ParallelConfig, Phase, RoutingMatrix, SloKind, SloSpec, StageSpec};
    use ts_workload::{generator::generate, spec};

    fn group(phase: Phase, gpus: &[u32], tp: usize, pp: usize, layers: usize) -> GroupSpec {
        let per = layers / pp;
        let stages = (0..pp)
            .map(|s| StageSpec {
                gpus: gpus[s * tp..(s + 1) * tp].iter().map(|&g| GpuId(g)).collect(),
                layers: if s + 1 == pp { layers - per * (pp - 1) } else { per },
            })
            .collect();
        GroupSpec::new(phase, ParallelConfig::new(tp, pp).unwrap(), stages).unwrap()
    }

    /// 4xA40 prefill + 4x3090Ti decode on the Appendix-H testbed.
    fn testbed(bw: f64) -> (ts_cluster::Cluster, DeploymentPlan, SimConfig) {
        let cluster = presets::network_case_cluster(bw);
        let model = ModelSpec::llama_13b();
        let plan = DeploymentPlan::new(
            vec![
                group(Phase::Prefill, &[0, 1, 2, 3], 2, 2, model.num_layers),
                group(Phase::Decode, &[4, 5, 6, 7], 2, 2, model.num_layers),
            ],
            RoutingMatrix::uniform(1, 1),
        )
        .unwrap();
        (cluster, plan, SimConfig::new(model))
    }

    #[test]
    fn every_request_completes() {
        let (cluster, plan, cfg) = testbed(presets::ETH_40GBPS);
        let mut sim = Simulation::new(&cluster, &plan, cfg).unwrap();
        let reqs = generate(&spec::coding(0.5), ts_common::SimDuration::from_secs(60), 1);
        let m = sim.run(&reqs).unwrap();
        assert_eq!(m.num_completed(), reqs.len());
        assert_eq!(m.num_dropped(), 0);
        assert_eq!(m.num_rejected(), 0);
        assert!(!m.recovery().any());
    }

    #[test]
    fn records_are_causally_ordered() {
        let (cluster, plan, cfg) = testbed(presets::ETH_40GBPS);
        let mut sim = Simulation::new(&cluster, &plan, cfg).unwrap();
        let reqs = generate(&spec::conversation(0.5), ts_common::SimDuration::from_secs(60), 2);
        let m = sim.run(&reqs).unwrap();
        for r in m.records() {
            assert!(r.first_token_at >= r.request.arrival);
            assert!(r.finished_at >= r.first_token_at);
            if r.request.decode_steps() > 0 {
                assert!(r.finished_at > r.first_token_at);
            }
        }
    }

    #[test]
    fn deterministic_runs() {
        let (cluster, plan, cfg) = testbed(presets::ETH_40GBPS);
        let reqs = generate(&spec::coding(1.0), ts_common::SimDuration::from_secs(30), 3);
        let m1 = Simulation::new(&cluster, &plan, cfg.clone()).unwrap().run(&reqs).unwrap();
        let m2 = Simulation::new(&cluster, &plan, cfg).unwrap().run(&reqs).unwrap();
        assert_eq!(m1, m2);
    }

    #[test]
    fn higher_rate_worsens_latency() {
        let (cluster, plan, cfg) = testbed(presets::ETH_40GBPS);
        let lo_r = generate(&spec::coding(0.3), ts_common::SimDuration::from_secs(120), 4);
        let hi_r = generate(&spec::coding(4.0), ts_common::SimDuration::from_secs(120), 4);
        let lo = Simulation::new(&cluster, &plan, cfg.clone()).unwrap().run(&lo_r).unwrap();
        let hi = Simulation::new(&cluster, &plan, cfg).unwrap().run(&hi_r).unwrap();
        let p_lo = lo.latency_percentile(SloKind::Ttft, 0.9).unwrap();
        let p_hi = hi.latency_percentile(SloKind::Ttft, 0.9).unwrap();
        assert!(p_hi > p_lo, "{p_hi} <= {p_lo}");
    }

    #[test]
    fn kv_compression_reduces_e2e_on_slow_links() {
        // Table 8 / Figure 18 shape: on a bandwidth-starved link, 4-bit KV
        // transfers beat fp16 end to end.
        let (cluster, plan, cfg) = testbed(presets::ETH_5GBPS);
        let reqs = generate(&spec::fixed(1024, 64, 0.5), ts_common::SimDuration::from_secs(120), 5);
        let m4 = Simulation::new(&cluster, &plan, cfg.clone()).unwrap().run(&reqs).unwrap();
        let m16 = Simulation::new(&cluster, &plan, cfg.with_f16_kv()).unwrap().run(&reqs).unwrap();
        let e4 = m4.mean_latency(SloKind::E2e).unwrap();
        let e16 = m16.mean_latency(SloKind::E2e).unwrap();
        assert!(e4 < e16, "4-bit {e4} should beat fp16 {e16}");
    }

    #[test]
    fn single_token_outputs_skip_decode() {
        let (cluster, plan, cfg) = testbed(presets::ETH_40GBPS);
        let mut sim = Simulation::new(&cluster, &plan, cfg).unwrap();
        let reqs = generate(&spec::fixed(512, 1, 1.0), ts_common::SimDuration::from_secs(20), 6);
        let m = sim.run(&reqs).unwrap();
        assert_eq!(m.num_completed(), reqs.len());
        for r in m.records() {
            assert_eq!(r.finished_at, r.first_token_at);
        }
    }

    #[test]
    fn slo_attainment_monotone_in_scale() {
        let (cluster, plan, cfg) = testbed(presets::ETH_40GBPS);
        let reqs = generate(&spec::conversation(1.5), ts_common::SimDuration::from_secs(90), 7);
        let m = Simulation::new(&cluster, &plan, cfg).unwrap().run(&reqs).unwrap();
        let base = SloSpec::new(
            ts_common::SimDuration::from_millis(800),
            ts_common::SimDuration::from_millis(80),
            ts_common::SimDuration::from_secs(8),
        );
        let mut prev = 0.0;
        for s in [0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0] {
            let a = m.joint_attainment(&base.scaled(s));
            assert!(a >= prev - 1e-12, "attainment must not decrease: {a} < {prev}");
            prev = a;
        }
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use crate::fault::{FaultKind, FaultScript, TimedFault};
    use ts_cluster::presets;
    use ts_common::{
        GpuId, GroupSpec, ModelSpec, ParallelConfig, Phase, RoutingMatrix, StageSpec,
    };
    use ts_workload::{generator::generate, spec};

    /// 4xA40 prefill (one tp=4 replica) + two 2x3090Ti decode replicas, so
    /// a decode replica can die while a survivor picks up its work.
    fn failover_testbed() -> (ts_cluster::Cluster, DeploymentPlan, SimConfig) {
        let cluster = presets::network_case_cluster(presets::ETH_40GBPS);
        let model = ModelSpec::llama_13b();
        let group = |phase, ids: &[u32], tp: usize| {
            GroupSpec::new(
                phase,
                ParallelConfig::new(tp, 1).unwrap(),
                vec![StageSpec {
                    gpus: ids.iter().map(|&i| GpuId(i)).collect(),
                    layers: model.num_layers,
                }],
            )
            .unwrap()
        };
        let plan = DeploymentPlan::new(
            vec![
                group(Phase::Prefill, &[0, 1, 2, 3], 4),
                group(Phase::Decode, &[4, 5], 2),
                group(Phase::Decode, &[6, 7], 2),
            ],
            RoutingMatrix::uniform(1, 2),
        )
        .unwrap();
        (cluster, plan, SimConfig::new(model))
    }

    fn fault(at_s: f64, kind: FaultKind) -> TimedFault {
        TimedFault {
            at: SimTime::from_secs_f64(at_s),
            kind,
        }
    }

    #[test]
    fn empty_script_matches_plain_run() {
        let (cluster, plan, cfg) = failover_testbed();
        let reqs = generate(&spec::coding(1.0), SimDuration::from_secs(40), 11);
        let plain = Simulation::new(&cluster, &plan, cfg.clone())
            .unwrap()
            .run(&reqs)
            .unwrap();
        let scripted = Simulation::new(&cluster, &plan, cfg)
            .unwrap()
            .run_with_faults(&reqs, &FaultScript::none())
            .unwrap();
        assert_eq!(plain, scripted);
    }

    #[test]
    fn decode_death_mid_run_recovers_on_survivor() {
        let (cluster, plan, cfg) = failover_testbed();
        // Long outputs keep every decode replica saturated, so the fault is
        // guaranteed to strike sequences mid-decode.
        let reqs = generate(&spec::fixed(512, 256, 2.0), SimDuration::from_secs(60), 12);
        let script = FaultScript::new(
            vec![fault(20.0, FaultKind::DecodeDown(0))],
            SimDuration::from_millis(500),
        );
        let run = || {
            Simulation::new(&cluster, &plan, cfg.clone())
                .unwrap()
                .run_with_faults(&reqs, &script)
                .unwrap()
        };
        let m = run();
        // The fault struck mid-decode: some sequences lost KV and were
        // re-prefilled, and every affected request still completed.
        assert!(
            m.recovery().reprefilled_tokens > 0,
            "expected lost KV to be re-prefilled: {:?}",
            m.recovery()
        );
        assert_eq!(
            m.num_completed() + m.num_dropped() + m.num_rejected(),
            reqs.len()
        );
        assert_eq!(m.num_completed(), reqs.len(), "survivor should absorb all work");
        assert!(m.recovery().max_time_to_recover().is_some());
        // Every post-fault decode ran on the survivor.
        for r in m.records() {
            if r.finished_at > SimTime::from_secs_f64(21.0) {
                assert_eq!(r.decode_replica, 1, "dead replica decoded a request");
            }
        }
        // Deterministic across identical runs.
        assert_eq!(m, run());
    }

    #[test]
    fn recovery_beats_no_recovery() {
        let (cluster, plan, cfg) = failover_testbed();
        let reqs = generate(&spec::fixed(512, 256, 2.0), SimDuration::from_secs(60), 13);
        let script = FaultScript::new(
            vec![fault(20.0, FaultKind::DecodeDown(0))],
            SimDuration::from_millis(500),
        );
        let with = Simulation::new(&cluster, &plan, cfg.clone())
            .unwrap()
            .run_with_faults(&reqs, &script)
            .unwrap();
        let without = Simulation::new(&cluster, &plan, cfg)
            .unwrap()
            .run_with_faults(&reqs, &script.clone().without_recovery())
            .unwrap();
        assert!(without.num_dropped() > 0, "no-recovery should lose requests");
        assert!(with.num_completed() > without.num_completed());
        assert_eq!(
            without.num_completed() + without.num_dropped() + without.num_rejected(),
            reqs.len()
        );
    }

    #[test]
    fn prefill_death_requeues_to_nowhere_and_sheds() {
        // Single prefill replica dies and never returns: arrivals stall up
        // to the shed threshold, the rest are rejected, nothing panics.
        let (cluster, plan, cfg) = failover_testbed();
        let cfg = cfg.with_shed_threshold(4);
        let reqs = generate(&spec::coding(1.5), SimDuration::from_secs(60), 14);
        let script = FaultScript::new(
            vec![fault(15.0, FaultKind::PrefillDown(0))],
            SimDuration::from_millis(500),
        );
        let m = Simulation::new(&cluster, &plan, cfg)
            .unwrap()
            .run_with_faults(&reqs, &script)
            .unwrap();
        assert!(m.num_rejected() > 0, "whole-phase loss must shed load");
        // The stall queue holds exactly the threshold when events dry up.
        assert_eq!(
            m.num_completed() + m.num_dropped() + m.num_rejected(),
            reqs.len()
        );
        assert!(m.recovery().requeued_requests > 0);
    }

    #[test]
    fn replica_blip_restores_service() {
        let (cluster, plan, cfg) = failover_testbed();
        let reqs = generate(&spec::fixed(512, 128, 2.0), SimDuration::from_secs(60), 15);
        // Detection lands inside the outage; the arrivals that piled up on
        // the dead replica are requeued (to the stall queue: it is the only
        // prefill) and drain when the replica returns at t=25.
        let script = FaultScript::new(
            vec![
                fault(15.0, FaultKind::PrefillDown(0)),
                fault(25.0, FaultKind::PrefillUp(0)),
            ],
            SimDuration::from_secs_f64(2.0),
        );
        let m = Simulation::new(&cluster, &plan, cfg)
            .unwrap()
            .run_with_faults(&reqs, &script)
            .unwrap();
        // Everything eventually completes once the replica returns.
        assert_eq!(m.num_completed(), reqs.len(), "{:?}", m.recovery());
        assert!(m.recovery().requeued_requests > 0);
    }

    #[test]
    fn link_fault_retries_with_backoff() {
        let (cluster, plan, cfg) = failover_testbed();
        let reqs = generate(&spec::coding(1.0), SimDuration::from_secs(60), 16);
        let script = FaultScript::new(
            vec![
                fault(10.0, FaultKind::LinkDown { prefill: 0, decode: 0 }),
                fault(14.0, FaultKind::LinkUp { prefill: 0, decode: 0 }),
            ],
            SimDuration::from_millis(100),
        );
        let m = Simulation::new(&cluster, &plan, cfg)
            .unwrap()
            .run_with_faults(&reqs, &script)
            .unwrap();
        assert!(
            m.recovery().kv_transfer_retries > 0,
            "transfers over the dead link must retry"
        );
        assert_eq!(m.num_completed(), reqs.len());
    }

    #[test]
    fn pause_stalls_arrivals_then_drains() {
        let (cluster, plan, cfg) = failover_testbed();
        let reqs = generate(&spec::coding(1.0), SimDuration::from_secs(60), 17);
        let script = FaultScript::new(
            vec![fault(
                20.0,
                FaultKind::Pause {
                    until: SimTime::from_secs_f64(28.0),
                },
            )],
            SimDuration::ZERO,
        );
        let m = Simulation::new(&cluster, &plan, cfg)
            .unwrap()
            .run_with_faults(&reqs, &script)
            .unwrap();
        // Default shed threshold is generous: the blackout queue drains.
        assert_eq!(m.num_completed(), reqs.len());
        // No request starts prefill during the blackout, so first tokens of
        // blackout arrivals land after the resume.
        for r in m.records() {
            let arr = r.request.arrival;
            if arr >= SimTime::from_secs_f64(20.0) && arr < SimTime::from_secs_f64(28.0) {
                assert!(r.first_token_at >= SimTime::from_secs_f64(28.0));
            }
        }
    }

    #[test]
    fn out_of_range_fault_is_rejected() {
        let (cluster, plan, cfg) = failover_testbed();
        let script = FaultScript::new(
            vec![fault(1.0, FaultKind::DecodeDown(7))],
            SimDuration::ZERO,
        );
        let err = Simulation::new(&cluster, &plan, cfg)
            .unwrap()
            .run_with_faults(&[], &script);
        assert!(err.is_err());
    }
}

#[cfg(test)]
mod tpot_cap_tests {
    use super::*;
    use ts_cluster::presets;
    use ts_common::{
        GpuId, GroupSpec, ModelSpec, ParallelConfig, Phase, RoutingMatrix, SloKind, StageSpec,
    };
    use ts_workload::{generator::generate, spec};

    fn plan(model: &ModelSpec) -> (ts_cluster::Cluster, DeploymentPlan) {
        let cluster = presets::network_case_cluster(presets::ETH_40GBPS);
        let group = |phase, ids: [u32; 4]| {
            GroupSpec::new(
                phase,
                ParallelConfig::new(4, 1).unwrap(),
                vec![StageSpec {
                    gpus: ids.iter().map(|&i| GpuId(i)).collect(),
                    layers: model.num_layers,
                }],
            )
            .unwrap()
        };
        let plan = DeploymentPlan::new(
            vec![
                group(Phase::Prefill, [0, 1, 2, 3]),
                group(Phase::Decode, [4, 5, 6, 7]),
            ],
            RoutingMatrix::uniform(1, 1),
        )
        .unwrap();
        (cluster, plan)
    }

    #[test]
    fn tpot_cap_bounds_tail_tpot() {
        // Under heavy decode concurrency, an SLO-aware admission cap keeps
        // p90 TPOT below the configured deadline (at the cost of queueing).
        let model = ModelSpec::llama_30b();
        let (cluster, plan) = plan(&model);
        let w = spec::fixed(512, 128, 2.5);
        let reqs = generate(&w, ts_common::SimDuration::from_secs(90), 3);
        let cap = ts_common::SimDuration::from_millis(40);

        let uncapped = Simulation::new(&cluster, &plan, SimConfig::new(model.clone()))
            .unwrap()
            .run(&reqs)
            .unwrap();
        let capped = Simulation::new(
            &cluster,
            &plan,
            SimConfig::new(model.clone()).with_tpot_cap(cap),
        )
        .unwrap()
        .run(&reqs)
        .unwrap();

        let p90 = |m: &crate::metrics::Metrics| {
            m.latency_percentile(SloKind::Tpot, 0.9).unwrap()
        };
        assert!(
            p90(&capped) <= cap + ts_common::SimDuration::from_millis(5),
            "capped p90 TPOT {} should respect the {cap} deadline",
            p90(&capped)
        );
        assert!(
            p90(&capped) <= p90(&uncapped),
            "cap must not worsen TPOT: {} vs {}",
            p90(&capped),
            p90(&uncapped)
        );
        // conservation still holds
        assert_eq!(
            capped.num_completed() + capped.num_dropped(),
            reqs.len()
        );
    }

    #[test]
    fn tpot_cap_never_deadlocks_single_sequences() {
        // Even with an absurdly tight cap the replica admits one sequence at
        // a time and everything eventually completes.
        let model = ModelSpec::llama_30b();
        let (cluster, plan) = plan(&model);
        let w = spec::fixed(256, 16, 0.5);
        let reqs = generate(&w, ts_common::SimDuration::from_secs(40), 4);
        let m = Simulation::new(
            &cluster,
            &plan,
            SimConfig::new(model).with_tpot_cap(ts_common::SimDuration::from_micros(1)),
        )
        .unwrap()
        .run(&reqs)
        .unwrap();
        assert_eq!(m.num_completed(), reqs.len());
    }
}

#[cfg(test)]
mod policy_tests {
    use super::*;
    use crate::config::PrefillPolicy;
    use ts_cluster::presets;
    use ts_common::{
        GpuId, GroupSpec, ModelSpec, ParallelConfig, Phase, RoutingMatrix, SloKind, StageSpec,
    };
    use ts_workload::generator::generate_mixture;

    #[test]
    fn sjf_improves_median_ttft_under_mixed_prompts() {
        let cluster = presets::network_case_cluster(presets::ETH_40GBPS);
        let model = ModelSpec::llama_30b();
        let group = |phase, ids: [u32; 4]| {
            GroupSpec::new(
                phase,
                ParallelConfig::new(4, 1).unwrap(),
                vec![StageSpec {
                    gpus: ids.iter().map(|&i| GpuId(i)).collect(),
                    layers: model.num_layers,
                }],
            )
            .unwrap()
        };
        let plan = DeploymentPlan::new(
            vec![
                group(Phase::Prefill, [0, 1, 2, 3]),
                group(Phase::Decode, [4, 5, 6, 7]),
            ],
            RoutingMatrix::uniform(1, 1),
        )
        .unwrap();
        // Mixed prompt lengths at pressure: many short, some very long.
        let trace = generate_mixture(
            &[
                ts_workload::spec::fixed(256, 8, 2.2),
                ts_workload::spec::fixed(3500, 8, 0.5),
            ],
            ts_common::SimDuration::from_secs(120),
            3,
        );
        let run = |policy| {
            Simulation::new(
                &cluster,
                &plan,
                SimConfig::new(model.clone()).with_prefill_policy(policy),
            )
            .unwrap()
            .run(&trace)
            .unwrap()
        };
        let fcfs = run(PrefillPolicy::Fcfs);
        let sjf = run(PrefillPolicy::ShortestFirst);
        let p50 = |m: &crate::metrics::Metrics| m.latency_percentile(SloKind::Ttft, 0.5).unwrap();
        let p99 = |m: &crate::metrics::Metrics| m.latency_percentile(SloKind::Ttft, 0.99).unwrap();
        assert!(
            p50(&sjf) <= p50(&fcfs),
            "SJF median TTFT {} should not exceed FCFS {}",
            p50(&sjf),
            p50(&fcfs)
        );
        assert!(
            p99(&sjf) >= p99(&fcfs),
            "SJF pays at the tail: {} vs {}",
            p99(&sjf),
            p99(&fcfs)
        );
        // conservation under both policies
        assert_eq!(fcfs.num_completed() + fcfs.num_dropped(), trace.len());
        assert_eq!(sjf.num_completed() + sjf.num_dropped(), trace.len());
    }
}
