//! Deterministic weighted routing.
//!
//! The orchestration solver produces fractional routing weights; the
//! simulator and runtime need to turn them into a concrete per-request
//! choice. We use stride scheduling (deficit counters): each option
//! accumulates credit proportional to its weight and the option with the
//! largest credit wins, guaranteeing that realized shares track the weights
//! with O(1) error and no randomness.

use ts_common::{Error, Result};

/// A deterministic weighted round-robin over `n` options.
#[derive(Debug, Clone)]
pub struct StrideRouter {
    weights: Vec<f64>,
    credit: Vec<f64>,
    total: f64,
}

impl StrideRouter {
    /// Creates a router over the given non-negative weights (they need not
    /// sum to 1; zero-weight options are never chosen).
    ///
    /// # Errors
    /// Returns [`Error::InvalidConfig`] if empty, any weight is negative or
    /// non-finite, or all weights are zero.
    pub fn new(weights: Vec<f64>) -> Result<Self> {
        if weights.is_empty() {
            return Err(Error::InvalidConfig("router needs at least one option".into()));
        }
        if weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return Err(Error::InvalidConfig("weights must be non-negative".into()));
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return Err(Error::InvalidConfig("all routing weights are zero".into()));
        }
        let n = weights.len();
        Ok(StrideRouter {
            weights,
            credit: vec![0.0; n],
            total,
        })
    }

    /// Builds a router over the cells of a routing matrix, returning the
    /// router plus the `(row, col)` coordinates of each option.
    ///
    /// # Errors
    /// Propagates [`StrideRouter::new`] failures.
    pub fn from_matrix(rates: &[Vec<f64>]) -> Result<(Self, Vec<(usize, usize)>)> {
        let mut weights = Vec::new();
        let mut coords = Vec::new();
        for (i, row) in rates.iter().enumerate() {
            for (j, &w) in row.iter().enumerate() {
                if w > 0.0 {
                    weights.push(w);
                    coords.push((i, j));
                }
            }
        }
        Ok((Self::new(weights)?, coords))
    }

    /// Picks the next option. (Deliberately named like `Iterator::next`;
    /// the router is an infinite choice stream, not an iterator.)
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> usize {
        for (i, c) in self.credit.iter_mut().enumerate() {
            *c += self.weights[i] / self.total;
        }
        let best = self
            .credit
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .expect("router is non-empty");
        self.credit[best] -= 1.0;
        best
    }

    /// Number of options.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Whether the router has no options (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn realized_shares_track_weights() {
        let mut r = StrideRouter::new(vec![0.5, 0.3, 0.2]).unwrap();
        let mut counts = [0usize; 3];
        for _ in 0..1000 {
            counts[r.next()] += 1;
        }
        assert!((counts[0] as f64 - 500.0).abs() <= 2.0, "{counts:?}");
        assert!((counts[1] as f64 - 300.0).abs() <= 2.0, "{counts:?}");
        assert!((counts[2] as f64 - 200.0).abs() <= 2.0, "{counts:?}");
    }

    #[test]
    fn zero_weight_options_never_chosen() {
        let mut r = StrideRouter::new(vec![0.0, 1.0]).unwrap();
        for _ in 0..50 {
            assert_eq!(r.next(), 1);
        }
    }

    #[test]
    fn deterministic_sequence() {
        let mut a = StrideRouter::new(vec![2.0, 1.0]).unwrap();
        let mut b = StrideRouter::new(vec![2.0, 1.0]).unwrap();
        let sa: Vec<usize> = (0..20).map(|_| a.next()).collect();
        let sb: Vec<usize> = (0..20).map(|_| b.next()).collect();
        assert_eq!(sa, sb);
    }

    #[test]
    fn from_matrix_skips_zero_cells() {
        let rates = vec![vec![0.5, 0.0], vec![0.0, 0.5]];
        let (r, coords) = StrideRouter::from_matrix(&rates).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(coords, vec![(0, 0), (1, 1)]);
    }

    #[test]
    fn rejects_bad_weights() {
        assert!(StrideRouter::new(vec![]).is_err());
        assert!(StrideRouter::new(vec![-1.0]).is_err());
        assert!(StrideRouter::new(vec![0.0, 0.0]).is_err());
        assert!(StrideRouter::new(vec![f64::NAN]).is_err());
    }
}
