//! Deterministic weighted routing.
//!
//! The orchestration solver produces fractional routing weights; the
//! simulator and runtime need to turn them into a concrete per-request
//! choice. We use stride scheduling (deficit counters): each option
//! accumulates credit proportional to its weight and the option with the
//! largest credit wins, guaranteeing that realized shares track the weights
//! with O(1) error and no randomness.

use ts_common::{Error, Result};

/// A deterministic weighted round-robin over `n` options.
///
/// Options can be masked at runtime (fault handling): a disabled option
/// receives no credit and is never chosen, and the remaining weights are
/// renormalized so the surviving options absorb its share.
#[derive(Debug, Clone)]
pub struct StrideRouter {
    weights: Vec<f64>,
    credit: Vec<f64>,
    enabled: Vec<bool>,
    total: f64,
    /// `weights[i] / total`, refreshed whenever `total` changes: `next`
    /// runs once per routed request over every enabled option, and float
    /// division is expensive enough to show up there. Precomputing the
    /// exact same quotient keeps the credit arithmetic bit-identical.
    stride: Vec<f64>,
}

impl StrideRouter {
    /// Creates a router over the given non-negative weights (they need not
    /// sum to 1; zero-weight options are never chosen).
    ///
    /// # Errors
    /// Returns [`Error::InvalidConfig`] if empty, any weight is negative or
    /// non-finite, or all weights are zero.
    pub fn new(weights: Vec<f64>) -> Result<Self> {
        if weights.is_empty() {
            return Err(Error::InvalidConfig(
                "router needs at least one option".into(),
            ));
        }
        if weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return Err(Error::InvalidConfig("weights must be non-negative".into()));
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return Err(Error::InvalidConfig("all routing weights are zero".into()));
        }
        let n = weights.len();
        let stride = weights.iter().map(|w| w / total).collect();
        Ok(StrideRouter {
            weights,
            credit: vec![0.0; n],
            enabled: vec![true; n],
            total,
            stride,
        })
    }

    /// Builds a router over the cells of a routing matrix, returning the
    /// router plus the `(row, col)` coordinates of each option.
    ///
    /// # Errors
    /// Propagates [`StrideRouter::new`] failures.
    pub fn from_matrix(rates: &[Vec<f64>]) -> Result<(Self, Vec<(usize, usize)>)> {
        let mut weights = Vec::new();
        let mut coords = Vec::new();
        for (i, row) in rates.iter().enumerate() {
            for (j, &w) in row.iter().enumerate() {
                if w > 0.0 {
                    weights.push(w);
                    coords.push((i, j));
                }
            }
        }
        Ok((Self::new(weights)?, coords))
    }

    /// Picks the next option among the enabled ones. (Deliberately named
    /// like `Iterator::next`; the router is an infinite choice stream, not
    /// an iterator.)
    ///
    /// # Panics
    /// Panics if every option is disabled ([`Self::num_enabled`] is zero);
    /// callers must shed or queue traffic instead of routing it.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> usize {
        assert!(self.total > 0.0, "all routing options are disabled");
        // One fused pass: top up every enabled option's credit and track the
        // arg-max as we go. `>=` keeps the *last* maximum, matching the
        // two-pass `max_by(partial_cmp)` tie-breaking this replaced.
        let mut best = None;
        let mut best_credit = f64::NEG_INFINITY;
        for i in 0..self.credit.len() {
            if !self.enabled[i] {
                continue;
            }
            self.credit[i] += self.stride[i];
            if self.weights[i] > 0.0 && self.credit[i] >= best_credit {
                best_credit = self.credit[i];
                best = Some(i);
            }
        }
        let best = best.expect("router has an enabled option");
        self.credit[best] -= 1.0;
        best
    }

    /// Masks or unmasks option `i`. Disabling sheds its credit (a revived
    /// option starts fresh rather than bursting to catch up) and
    /// renormalizes the surviving weights.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn set_enabled(&mut self, i: usize, enabled: bool) {
        self.enabled[i] = enabled;
        self.credit[i] = 0.0;
        self.total = self
            .weights
            .iter()
            .zip(&self.enabled)
            .filter(|(_, &e)| e)
            .map(|(w, _)| w)
            .sum();
        for (s, w) in self.stride.iter_mut().zip(&self.weights) {
            *s = w / self.total;
        }
    }

    /// Applies a full enable mask: option `i` ends up enabled iff
    /// `mask[i]`. Only options whose state actually changes go through
    /// [`StrideRouter::set_enabled`], so unchanged options keep their
    /// accumulated credit (flipping an option sheds its credit; a no-op
    /// mask application must not perturb the routing sequence).
    ///
    /// # Panics
    /// Panics if `mask.len()` differs from the number of options.
    pub fn apply_mask(&mut self, mask: &[bool]) {
        assert_eq!(mask.len(), self.weights.len(), "mask length mismatch");
        for (i, &want) in mask.iter().enumerate() {
            if self.enabled[i] != want {
                self.set_enabled(i, want);
            }
        }
    }

    /// Whether option `i` is currently enabled.
    pub fn is_enabled(&self, i: usize) -> bool {
        self.enabled[i]
    }

    /// Number of enabled options with positive weight (choices `next` can
    /// actually make).
    pub fn num_enabled(&self) -> usize {
        self.enabled
            .iter()
            .zip(&self.weights)
            .filter(|(&e, &w)| e && w > 0.0)
            .count()
    }

    /// Number of options.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Whether the router has no options (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn realized_shares_track_weights() {
        let mut r = StrideRouter::new(vec![0.5, 0.3, 0.2]).unwrap();
        let mut counts = [0usize; 3];
        for _ in 0..1000 {
            counts[r.next()] += 1;
        }
        assert!((counts[0] as f64 - 500.0).abs() <= 2.0, "{counts:?}");
        assert!((counts[1] as f64 - 300.0).abs() <= 2.0, "{counts:?}");
        assert!((counts[2] as f64 - 200.0).abs() <= 2.0, "{counts:?}");
    }

    #[test]
    fn zero_weight_options_never_chosen() {
        let mut r = StrideRouter::new(vec![0.0, 1.0]).unwrap();
        for _ in 0..50 {
            assert_eq!(r.next(), 1);
        }
    }

    #[test]
    fn deterministic_sequence() {
        let mut a = StrideRouter::new(vec![2.0, 1.0]).unwrap();
        let mut b = StrideRouter::new(vec![2.0, 1.0]).unwrap();
        let sa: Vec<usize> = (0..20).map(|_| a.next()).collect();
        let sb: Vec<usize> = (0..20).map(|_| b.next()).collect();
        assert_eq!(sa, sb);
    }

    #[test]
    fn from_matrix_skips_zero_cells() {
        let rates = vec![vec![0.5, 0.0], vec![0.0, 0.5]];
        let (r, coords) = StrideRouter::from_matrix(&rates).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(coords, vec![(0, 0), (1, 1)]);
    }

    #[test]
    fn disabled_options_are_skipped_and_share_renormalizes() {
        let mut r = StrideRouter::new(vec![0.5, 0.3, 0.2]).unwrap();
        assert_eq!(r.num_enabled(), 3);
        r.set_enabled(0, false);
        assert!(!r.is_enabled(0));
        assert_eq!(r.num_enabled(), 2);
        let mut counts = [0usize; 3];
        for _ in 0..1000 {
            counts[r.next()] += 1;
        }
        assert_eq!(counts[0], 0);
        // survivors absorb the dead option's share: 0.3/0.5 vs 0.2/0.5
        assert!((counts[1] as f64 - 600.0).abs() <= 2.0, "{counts:?}");
        assert!((counts[2] as f64 - 400.0).abs() <= 2.0, "{counts:?}");
    }

    #[test]
    fn reenabled_option_resumes_its_share() {
        let mut r = StrideRouter::new(vec![1.0, 1.0]).unwrap();
        r.set_enabled(1, false);
        for _ in 0..10 {
            assert_eq!(r.next(), 0);
        }
        r.set_enabled(1, true);
        let mut counts = [0usize; 2];
        for _ in 0..100 {
            counts[r.next()] += 1;
        }
        assert_eq!(counts[0], 50);
        assert_eq!(counts[1], 50);
    }

    #[test]
    fn apply_mask_only_touches_changed_options() {
        // A no-op mask must not shed credit: the routing sequence with a
        // redundant apply_mask interleaved must equal the untouched one.
        let mut a = StrideRouter::new(vec![0.6, 0.4]).unwrap();
        let mut b = StrideRouter::new(vec![0.6, 0.4]).unwrap();
        let mut sa = Vec::new();
        let mut sb = Vec::new();
        for step in 0..40 {
            if step % 3 == 0 {
                b.apply_mask(&[true, true]); // no-op
            }
            sa.push(a.next());
            sb.push(b.next());
        }
        assert_eq!(sa, sb);
        // A real change does take effect.
        b.apply_mask(&[true, false]);
        assert_eq!(b.num_enabled(), 1);
        for _ in 0..10 {
            assert_eq!(b.next(), 0);
        }
        b.apply_mask(&[true, true]);
        assert_eq!(b.num_enabled(), 2);
    }

    #[test]
    #[should_panic]
    fn next_with_all_disabled_panics() {
        let mut r = StrideRouter::new(vec![1.0]).unwrap();
        r.set_enabled(0, false);
        assert_eq!(r.num_enabled(), 0);
        let _ = r.next();
    }

    #[test]
    fn rejects_bad_weights() {
        assert!(StrideRouter::new(vec![]).is_err());
        assert!(StrideRouter::new(vec![-1.0]).is_err());
        assert!(StrideRouter::new(vec![0.0, 0.0]).is_err());
        assert!(StrideRouter::new(vec![f64::NAN]).is_err());
    }
}
