//! # ts-net
//!
//! A deterministic, event-driven **flow-level network fabric** for the
//! serving simulator.
//!
//! The legacy KV-transfer model charges each prefill→decode transfer a
//! fixed alpha-beta cost and serializes transfers only on the sender's
//! uplink — receiver downlinks, shared node NICs and concurrent flows never
//! contend. That is optimistic on exactly the slow, shared cloud networks
//! the paper targets (§5, Table 5). This crate supplies the standard
//! substitution for packet-level simulation: model every transfer as a
//! *fluid flow* over a small set of capacitated links and share each link's
//! bandwidth **max-min fairly** among the flows crossing it, recomputing
//! the allocation whenever a flow starts or finishes.
//!
//! * [`topology`] — the link graph derived from a [`ts_cluster::Cluster`]:
//!   per-node NIC uplinks/downlinks, intra-node buses and pairwise
//!   inter-node fabric links;
//! * [`maxmin`] — the progressive-filling max-min fair allocator;
//! * [`flow`] — [`flow::FlowFabric`], the event-driven flow registry: it
//!   tracks remaining bytes per flow, re-estimates every affected flow's
//!   completion time after each change, and invalidates superseded
//!   completion events with per-flow epoch counters (mirroring the
//!   simulator's replica-epoch pattern).
//!
//! Determinism: flows live in a [`std::collections::BTreeMap`] keyed by the
//! caller's flow id, and the allocator iterates links and flows in index
//! order with lowest-index tie-breaking — so the allocation (and therefore
//! every completion estimate) depends only on the *set* of active flows,
//! never on the order they were inserted.

pub mod flow;
pub mod maxmin;
pub mod topology;

pub use flow::{FlowEstimate, FlowFabric, FlowPoll};
pub use maxmin::max_min_allocate;
pub use topology::FabricTopology;
