//! The event-driven flow registry.
//!
//! [`FlowFabric`] tracks every in-flight transfer as a fluid flow with a
//! remaining byte count and a one-shot startup latency (alpha). Whenever
//! the set of active flows changes, the max-min fair allocation is
//! recomputed and **every** flow's completion time re-estimated; the caller
//! schedules one completion event per estimate and uses the carried epoch
//! to discard estimates that a later change superseded. Epochs are drawn
//! from a fabric-global monotonic counter, so an event scheduled for an
//! earlier incarnation of a reused flow key can never be mistaken for a
//! current one.

use std::collections::BTreeMap;

use ts_common::{GpuId, RequestId, SimDuration, SimTime};
use ts_telemetry::{LinkKind, Recorder, TraceEvent, TraceKind, TraceSink};

use crate::topology::FabricTopology;

/// Residual byte count below which a flow counts as drained. Completion
/// events are scheduled with ceiling rounding to whole microseconds, so at
/// the event's timestamp the true residual is at most one microsecond of
/// float error — far below this threshold for any realistic rate.
const EPS_BYTES: f64 = 1e-3;

/// Rounds a span in seconds *up* to whole microseconds, so a completion
/// event never fires before the modeled flow has actually drained.
fn ceil_micros(secs: f64) -> SimDuration {
    assert!(secs.is_finite() && secs >= 0.0, "invalid span: {secs}");
    SimDuration::from_micros((secs * 1e6).ceil() as u64)
}

/// A predicted completion, returned after every fabric change.
///
/// Valid until the next change: the caller schedules an event at `done_at`
/// carrying `key` and `epoch`, and the fabric rejects the event as stale if
/// the flow has been re-estimated (or removed) since.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowEstimate {
    /// Caller-chosen flow id (the simulator uses the request id).
    pub key: u64,
    /// When the flow will finish under the current allocation.
    pub done_at: SimTime,
    /// Epoch the estimate belongs to; compare via [`FlowFabric::poll`].
    pub epoch: u64,
}

/// Outcome of delivering a completion event to the fabric.
#[derive(Debug)]
pub enum FlowPoll {
    /// The event was superseded by a newer estimate (or the flow was
    /// cancelled); drop it.
    Stale,
    /// The flow finished. It has been removed and bandwidth reallocated;
    /// reschedule completion events for every surviving flow.
    Done(Vec<FlowEstimate>),
    /// The flow is not drained yet (possible only through float drift);
    /// reschedule this single refreshed estimate.
    InFlight(FlowEstimate),
}

#[derive(Debug, Clone)]
struct FlowState {
    path: Vec<usize>,
    remaining: f64,
    rate: f64,
    /// Bytes start draining here (start time + alpha). The flow still
    /// occupies link bandwidth during the startup window.
    active_at: SimTime,
    epoch: u64,
}

/// The set of in-flight flows over one [`FabricTopology`], with max-min
/// fair bandwidth sharing.
///
/// Deterministic: flows are kept in a `BTreeMap` keyed by the caller's id,
/// so the allocator always sees them in key order regardless of insertion
/// order, and identical flow sets yield bit-identical estimates.
#[derive(Debug, Clone)]
pub struct FlowFabric {
    topo: FabricTopology,
    flows: BTreeMap<u64, FlowState>,
    now: SimTime,
    epoch_counter: u64,
    /// Fabric-side telemetry, `Some` iff [`FlowFabric::enable_telemetry`]
    /// was called: link-utilization samples and per-flow rate changes,
    /// recorded at allocation boundaries. Pure observation — it never
    /// affects rates, epochs or estimates.
    recorder: Option<Recorder>,
    /// Per-link used bandwidth at the last telemetry sample, so only
    /// changed links emit events (including drops to zero as flows drain).
    last_used: Vec<f64>,
}

impl FlowFabric {
    /// Creates an empty fabric over `topo`.
    pub fn new(topo: FabricTopology) -> Self {
        FlowFabric {
            topo,
            flows: BTreeMap::new(),
            now: SimTime::ZERO,
            epoch_counter: 0,
            recorder: None,
            last_used: Vec::new(),
        }
    }

    /// Turns on fabric-side telemetry: every reallocation records a
    /// [`TraceKind::LinkUtilization`] sample for each link whose used
    /// bandwidth changed and a [`TraceKind::FlowRate`] event for each flow
    /// whose fair-share rate changed. Idempotent.
    pub fn enable_telemetry(&mut self) {
        if self.recorder.is_none() {
            self.recorder = Some(Recorder::new());
            self.last_used = vec![0.0; self.topo.capacities().len()];
        }
    }

    /// Takes the telemetry events recorded so far, in emission order
    /// (empty when telemetry is off). Recording continues afterwards with
    /// an empty buffer.
    pub fn take_events(&mut self) -> Vec<TraceEvent> {
        match self.recorder.take() {
            Some(r) => {
                self.recorder = Some(Recorder::new());
                r.into_events()
            }
            None => Vec::new(),
        }
    }

    /// Builds the fabric directly from a cluster.
    pub fn from_cluster(cluster: &ts_cluster::Cluster) -> Self {
        FlowFabric::new(FabricTopology::from_cluster(cluster))
    }

    /// The derived link graph.
    pub fn topology(&self) -> &FabricTopology {
        &self.topo
    }

    /// Number of in-flight flows.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// Whether no flow is in flight.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Whether `key` is currently in flight.
    pub fn contains(&self, key: u64) -> bool {
        self.flows.contains_key(&key)
    }

    /// Starts a flow of `bytes` from GPU `from` to GPU `to` at `now` and
    /// returns fresh completion estimates for **all** flows (including this
    /// one). The startup latency of the crossed link class is charged as a
    /// one-shot delay before bytes begin draining.
    ///
    /// Starting a key that is already in flight replaces the old flow (its
    /// pending events go stale automatically).
    pub fn start(
        &mut self,
        key: u64,
        from: GpuId,
        to: GpuId,
        bytes: f64,
        now: SimTime,
    ) -> Vec<FlowEstimate> {
        self.advance(now);
        let state = FlowState {
            path: self.topo.path(from, to),
            remaining: bytes.max(0.0),
            rate: 0.0,
            active_at: now + self.topo.alpha(from, to),
            epoch: 0,
        };
        self.flows.insert(key, state);
        self.reallocate()
    }

    /// Delivers a completion event for (`key`, `epoch`) at `now`.
    pub fn poll(&mut self, key: u64, epoch: u64, now: SimTime) -> FlowPoll {
        match self.flows.get(&key) {
            Some(f) if f.epoch == epoch => {}
            _ => return FlowPoll::Stale,
        }
        self.advance(now);
        let f = &self.flows[&key];
        if f.remaining <= EPS_BYTES && now >= f.active_at {
            self.flows.remove(&key);
            FlowPoll::Done(self.reallocate())
        } else {
            self.epoch_counter += 1;
            let now_ = self.now;
            let epoch = self.epoch_counter;
            let f = self.flows.get_mut(&key).expect("checked above");
            f.epoch = epoch;
            FlowPoll::InFlight(estimate(key, f, now_))
        }
    }

    /// Removes `key` (e.g. its link went down) and returns fresh estimates
    /// for the surviving flows. Returns an empty list — and reallocates
    /// nothing — if the key was not in flight.
    pub fn cancel(&mut self, key: u64, now: SimTime) -> Vec<FlowEstimate> {
        if self.flows.remove(&key).is_none() {
            return Vec::new();
        }
        self.advance(now);
        self.reallocate()
    }

    /// Degrades (or heals, with `factor` 1) every link on the `from → to`
    /// path to `healthy capacity / factor` and re-fair-shares the fabric
    /// live: bytes already moved at the old rates stay moved, and every
    /// in-flight flow gets a fresh epoch and completion estimate under the
    /// new capacities. Returns the fresh estimates (empty if no flow is in
    /// flight).
    ///
    /// # Panics
    /// Panics if `factor` is not finite or below 1.
    pub fn degrade_path(
        &mut self,
        from: GpuId,
        to: GpuId,
        factor: f64,
        now: SimTime,
    ) -> Vec<FlowEstimate> {
        self.advance(now);
        for link in self.topo.path(from, to) {
            self.topo.set_degradation(link, factor);
        }
        self.reallocate()
    }

    /// Drains every flow's remaining bytes up to `now` under the rates of
    /// the *current* allocation.
    fn advance(&mut self, now: SimTime) {
        if now < self.now {
            debug_assert!(
                false,
                "fabric time went backwards: {now:?} < {:?}",
                self.now
            );
            return;
        }
        for f in self.flows.values_mut() {
            let begin = if f.active_at > self.now {
                f.active_at
            } else {
                self.now
            };
            if now >= begin {
                if f.rate.is_finite() {
                    let dt = (now - begin).as_secs_f64();
                    f.remaining = (f.remaining - f.rate * dt).max(0.0);
                } else {
                    // Unconstrained (loopback / free-link) flows drain the
                    // moment their startup window ends.
                    f.remaining = 0.0;
                }
            }
        }
        self.now = now;
    }

    /// Recomputes the max-min allocation over all flows and re-stamps every
    /// flow with a fresh epoch and completion estimate.
    fn reallocate(&mut self) -> Vec<FlowEstimate> {
        let mut out = Vec::with_capacity(self.flows.len());
        let mut rate_changes: Vec<(u64, f64)> = Vec::new();
        if !self.flows.is_empty() {
            self.epoch_counter += 1;
            let epoch = self.epoch_counter;
            let paths: Vec<Vec<usize>> = self.flows.values().map(|f| f.path.clone()).collect();
            let rates = max_min_rates(self.topo.capacities(), &paths);
            let now = self.now;
            let telemetry_on = self.recorder.is_some();
            for ((&key, f), rate) in self.flows.iter_mut().zip(rates) {
                if telemetry_on && rate.is_finite() && rate != f.rate {
                    rate_changes.push((key, rate));
                }
                f.rate = rate;
                f.epoch = epoch;
                out.push(estimate(key, f, now));
            }
        }
        if let Some(rec) = self.recorder.as_mut() {
            let at = self.now;
            for (key, rate_bps) in rate_changes {
                rec.record(TraceEvent {
                    at,
                    kind: TraceKind::FlowRate {
                        request: RequestId(key),
                        rate_bps,
                    },
                });
            }
        }
        self.record_utilization();
        out
    }

    /// Emits a [`TraceKind::LinkUtilization`] sample for every link whose
    /// used bandwidth changed since the last sample. Unconstrained
    /// (infinite-rate) flows and links with unbounded capacity are skipped:
    /// they model free local copies, not contended bandwidth.
    fn record_utilization(&mut self) {
        if self.recorder.is_none() {
            return;
        }
        let caps = self.topo.capacities();
        let mut used = vec![0.0f64; caps.len()];
        for f in self.flows.values() {
            if !f.rate.is_finite() {
                continue;
            }
            for &l in &f.path {
                used[l] += f.rate;
            }
        }
        let n = self.topo.num_nodes();
        let at = self.now;
        let rec = self.recorder.as_mut().expect("checked above");
        for (l, (&u, &prev)) in used.iter().zip(self.last_used.iter()).enumerate() {
            if u == prev || !caps[l].is_finite() {
                continue;
            }
            let kind = if l < n {
                LinkKind::Uplink(l)
            } else if l < 2 * n {
                LinkKind::Downlink(l - n)
            } else if l < 3 * n {
                LinkKind::Intra(l - 2 * n)
            } else {
                LinkKind::Inter
            };
            rec.record(TraceEvent {
                at,
                kind: TraceKind::LinkUtilization {
                    link: l,
                    kind,
                    used_bps: u,
                    capacity_bps: caps[l],
                },
            });
        }
        self.last_used = used;
    }
}

fn max_min_rates(capacity: &[f64], paths: &[Vec<usize>]) -> Vec<f64> {
    crate::maxmin::max_min_allocate(capacity, paths)
}

fn estimate(key: u64, f: &FlowState, now: SimTime) -> FlowEstimate {
    let begin = if f.active_at > now { f.active_at } else { now };
    let done_at = if f.remaining <= EPS_BYTES || f.rate.is_infinite() {
        begin
    } else {
        begin + ceil_micros(f.remaining / f.rate)
    };
    FlowEstimate {
        key,
        done_at,
        epoch: f.epoch,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_cluster::{Cluster, ClusterBuilder, GpuModel};

    fn cluster() -> Cluster {
        ClusterBuilder::new()
            .node("a", GpuModel::A40, 2)
            .node("b", GpuModel::Rtx3090Ti, 2)
            .node("c", GpuModel::A5000, 1)
            .inter_link(0, 1, 1e9, SimDuration::from_micros(300))
            .inter_link(0, 2, 1e9, SimDuration::from_micros(300))
            .inter_link(1, 2, 1e9, SimDuration::from_micros(300))
            .build()
            .unwrap()
    }

    fn done_of(estimates: &[FlowEstimate], key: u64) -> SimTime {
        estimates
            .iter()
            .find(|e| e.key == key)
            .map(|e| e.done_at)
            .unwrap_or_else(|| panic!("no estimate for flow {key}"))
    }

    #[test]
    fn single_flow_matches_alpha_beta_time() {
        let mut fab = FlowFabric::from_cluster(&cluster());
        // 1 GB over the 1 GB/s node0 → node1 link, alpha 300us.
        let est = fab.start(7, GpuId(0), GpuId(2), 1e9, SimTime::ZERO);
        assert_eq!(est.len(), 1);
        assert_eq!(
            est[0].done_at,
            SimTime::from_micros(300) + SimDuration::from_secs(1)
        );
        match fab.poll(7, est[0].epoch, est[0].done_at) {
            FlowPoll::Done(rest) => assert!(rest.is_empty()),
            other => panic!("expected Done, got {other:?}"),
        }
        assert!(fab.is_empty());
    }

    #[test]
    fn loopback_flow_finishes_instantly() {
        let mut fab = FlowFabric::from_cluster(&cluster());
        let est = fab.start(1, GpuId(0), GpuId(0), 5e9, SimTime::from_micros(10));
        assert_eq!(est[0].done_at, SimTime::from_micros(10));
        assert!(matches!(
            fab.poll(1, est[0].epoch, est[0].done_at),
            FlowPoll::Done(_)
        ));
    }

    #[test]
    fn shared_uplink_halves_rates_and_finish_frees_bandwidth() {
        let mut fab = FlowFabric::from_cluster(&cluster());
        let t0 = SimTime::ZERO;
        // Both flows leave node 0 (GPU 0 and GPU 1) for different nodes:
        // they share node 0's 1 GB/s uplink.
        let est = fab.start(1, GpuId(0), GpuId(2), 1e9, t0);
        let first_done = done_of(&est, 1);
        let est = fab.start(2, GpuId(1), GpuId(4), 1e9, t0);
        // Halved bandwidth: both now finish in ~2s, so flow 1's refreshed
        // estimate is later than its solo estimate.
        assert!(done_of(&est, 1) > first_done);
        let twice = done_of(&est, 1);
        assert_eq!(twice, SimTime::from_micros(300) + SimDuration::from_secs(2));
        // Old (solo) estimate for flow 1 is now stale.
        assert!(matches!(fab.poll(1, 1, first_done), FlowPoll::Stale));
        // Cancel flow 2 halfway: flow 1 gets the uplink back and its fresh
        // estimate moves earlier again.
        let est = fab.cancel(2, SimTime::from_secs_f64(1.0));
        assert_eq!(fab.len(), 1);
        let after_cancel = done_of(&est, 1);
        assert!(after_cancel < twice, "{after_cancel} !< {twice}");
        match fab.poll(1, est[0].epoch, after_cancel) {
            FlowPoll::Done(rest) => assert!(rest.is_empty()),
            other => panic!("expected Done, got {other:?}"),
        }
    }

    #[test]
    fn receiver_downlink_contends_across_senders() {
        let mut fab = FlowFabric::from_cluster(&cluster());
        // Different source nodes, one destination GPU: node 2's downlink is
        // the shared bottleneck — precisely the effect the legacy
        // sender-serialized model cannot produce.
        let est = fab.start(1, GpuId(0), GpuId(4), 1e9, SimTime::ZERO);
        assert_eq!(
            done_of(&est, 1),
            SimTime::from_micros(300) + SimDuration::from_secs(1)
        );
        let est = fab.start(2, GpuId(2), GpuId(4), 1e9, SimTime::ZERO);
        assert_eq!(
            done_of(&est, 1),
            SimTime::from_micros(300) + SimDuration::from_secs(2)
        );
        assert_eq!(
            done_of(&est, 2),
            SimTime::from_micros(300) + SimDuration::from_secs(2)
        );
    }

    #[test]
    fn stale_epochs_survive_key_reuse() {
        let mut fab = FlowFabric::from_cluster(&cluster());
        let est = fab.start(9, GpuId(0), GpuId(2), 1e9, SimTime::ZERO);
        let old_epoch = est[0].epoch;
        // Link fault: cancel, then retry under the same key.
        fab.cancel(9, SimTime::from_micros(500));
        let est = fab.start(9, GpuId(0), GpuId(2), 1e9, SimTime::from_micros(1_000));
        // The old completion event must not complete the new incarnation.
        assert!(matches!(
            fab.poll(9, old_epoch, SimTime::from_secs_f64(1.2)),
            FlowPoll::Stale
        ));
        assert!(matches!(
            fab.poll(9, est[0].epoch, est[0].done_at),
            FlowPoll::Done(_)
        ));
    }

    /// Satellite: identical flow sets inserted in permuted order produce
    /// bit-identical completion times.
    #[test]
    fn completion_times_are_insertion_order_invariant() {
        let flows: [(u64, GpuId, GpuId, f64); 4] = [
            (3, GpuId(0), GpuId(2), 7e8),
            (1, GpuId(1), GpuId(4), 3e8),
            (4, GpuId(2), GpuId(0), 5e8),
            (2, GpuId(0), GpuId(4), 9e8),
        ];
        let t0 = SimTime::ZERO;
        let mut fab_a = FlowFabric::from_cluster(&cluster());
        let mut fab_b = FlowFabric::from_cluster(&cluster());
        let mut last_a = Vec::new();
        for &(k, from, to, bytes) in &flows {
            last_a = fab_a.start(k, from, to, bytes, t0);
        }
        let mut last_b = Vec::new();
        for &(k, from, to, bytes) in flows.iter().rev() {
            last_b = fab_b.start(k, from, to, bytes, t0);
        }
        last_a.sort_by_key(|e| e.key);
        last_b.sort_by_key(|e| e.key);
        assert_eq!(last_a.len(), last_b.len());
        for (a, b) in last_a.iter().zip(&last_b) {
            assert_eq!(a.key, b.key);
            assert_eq!(a.done_at, b.done_at, "flow {}", a.key);
        }
    }

    #[test]
    fn zero_byte_flow_completes_after_alpha() {
        let mut fab = FlowFabric::from_cluster(&cluster());
        let est = fab.start(5, GpuId(0), GpuId(2), 0.0, SimTime::ZERO);
        assert_eq!(est[0].done_at, SimTime::from_micros(300));
        assert!(matches!(
            fab.poll(5, est[0].epoch, est[0].done_at),
            FlowPoll::Done(_)
        ));
    }

    #[test]
    fn telemetry_samples_links_and_rates() {
        let mut fab = FlowFabric::from_cluster(&cluster());
        assert!(fab.take_events().is_empty(), "off by default");
        fab.enable_telemetry();
        // Both flows leave node 0 (GPU 0 and GPU 1): they share uplink 0.
        fab.start(1, GpuId(0), GpuId(2), 1e9, SimTime::ZERO);
        fab.start(2, GpuId(1), GpuId(4), 1e9, SimTime::ZERO);
        fab.cancel(1, SimTime::from_secs_f64(0.5));
        fab.cancel(2, SimTime::from_secs_f64(0.5));
        let events = fab.take_events();
        assert!(!events.is_empty());
        let rates = events
            .iter()
            .filter(|e| matches!(e.kind, TraceKind::FlowRate { .. }))
            .count();
        assert!(rates >= 2, "each flow's rate change recorded, got {rates}");
        let mut up0_last = None;
        for e in &events {
            if let TraceKind::LinkUtilization {
                kind: LinkKind::Uplink(0),
                used_bps,
                capacity_bps,
                ..
            } = e.kind
            {
                assert!(used_bps <= capacity_bps + 1e-6);
                up0_last = Some(used_bps);
            }
        }
        assert_eq!(up0_last, Some(0.0), "drops back to zero when flows drain");
        assert!(fab.take_events().is_empty(), "buffer drained by take");
    }

    #[test]
    fn degrade_path_refair_shares_in_flight_flows() {
        let mut fab = FlowFabric::from_cluster(&cluster());
        // 1 GB over the 1 GB/s node0 → node1 path: solo finish at ~1s.
        let est = fab.start(1, GpuId(0), GpuId(2), 1e9, SimTime::ZERO);
        let healthy_done = done_of(&est, 1);
        // Halfway through, the path loses 4× bandwidth. 0.5 GB already
        // moved stays moved; the rest drains at 0.25 GB/s → ~2s more.
        let t_half = SimTime::from_micros(300) + SimDuration::from_millis(500);
        let est = fab.degrade_path(GpuId(0), GpuId(2), 4.0, t_half);
        assert_eq!(est.len(), 1, "in-flight flow re-estimated");
        let degraded_done = done_of(&est, 1);
        assert!(
            degraded_done > healthy_done,
            "{degraded_done} !> {healthy_done}"
        );
        assert_eq!(degraded_done, t_half + SimDuration::from_secs(2));
        // The old estimate's epoch is stale now.
        assert!(matches!(fab.poll(1, 1, healthy_done), FlowPoll::Stale));
        // Healing mid-flight speeds the remainder back up.
        let est = fab.degrade_path(GpuId(0), GpuId(2), 1.0, t_half + SimDuration::from_secs(1));
        let healed_done = done_of(&est, 1);
        assert!(healed_done < degraded_done);
        assert!(matches!(
            fab.poll(1, est[0].epoch, healed_done),
            FlowPoll::Done(_)
        ));
    }

    #[test]
    fn cancel_of_unknown_key_is_a_noop() {
        let mut fab = FlowFabric::from_cluster(&cluster());
        let before = fab.start(1, GpuId(0), GpuId(2), 1e9, SimTime::ZERO);
        let out = fab.cancel(42, SimTime::from_micros(10));
        assert!(out.is_empty());
        // Flow 1's estimate was not re-stamped.
        assert!(matches!(
            fab.poll(1, before[0].epoch, before[0].done_at),
            FlowPoll::Done(_)
        ));
    }
}
