//! The fabric link graph derived from a cluster topology.
//!
//! Flow-level modeling needs a small, fixed set of capacitated resources.
//! From a [`Cluster`] we derive, per node, a NIC **uplink** and a NIC
//! **downlink** (capacity = the fastest ethernet link the node terminates),
//! an **intra-node bus** (PCIe/NVLink), and one **fabric link** per
//! unordered node pair (capacity = that pair's ethernet bandwidth). A
//! transfer between two GPUs then crosses:
//!
//! * nothing, if the GPUs are the same device (loopback);
//! * the intra-node bus, if they share a node;
//! * sender uplink → pair fabric link → receiver downlink otherwise.
//!
//! Splitting the NIC from the pairwise fabric link matters on heterogeneous
//! clouds: a node sending to two *different* peers still serializes on its
//! own NIC, while two different senders targeting one receiver contend on
//! the receiver's downlink — neither effect exists in a pure pairwise
//! model.

use ts_cluster::Cluster;
use ts_common::{GpuId, NodeId, SimDuration};

/// The capacitated link graph of one cluster, with stable link indices.
#[derive(Debug, Clone)]
pub struct FabricTopology {
    /// Effective capacity per link in bytes/s (uplinks, then downlinks,
    /// then intra-node buses, then inter-node fabric links in lexicographic
    /// `(a, b)` order with `a < b`) — the healthy capacity divided by the
    /// link's current degradation factor.
    capacity: Vec<f64>,
    /// Healthy (undegraded) capacity per link, the denominator baseline for
    /// [`FabricTopology::set_degradation`].
    base_capacity: Vec<f64>,
    /// Hosting node per GPU id.
    gpu_node: Vec<usize>,
    /// `inter_index[a][b]`: link index of the (a, b) fabric link.
    inter_index: Vec<Vec<usize>>,
    /// Alpha (startup latency) per GPU pair is looked up lazily; we keep
    /// node-pair latencies here to stay self-contained after construction.
    inter_latency: Vec<Vec<SimDuration>>,
    intra_latency: Vec<SimDuration>,
    num_nodes: usize,
}

impl FabricTopology {
    /// Derives the link graph from `cluster`.
    pub fn from_cluster(cluster: &Cluster) -> Self {
        let n = cluster.num_nodes();
        let mut capacity = Vec::with_capacity(3 * n + n * (n - 1) / 2);
        for i in 0..n {
            capacity.push(cluster.nic_bandwidth(NodeId(i as u32))); // uplink
        }
        for i in 0..n {
            capacity.push(cluster.nic_bandwidth(NodeId(i as u32))); // downlink
        }
        for i in 0..n {
            capacity.push(cluster.node(NodeId(i as u32)).intra_bw); // bus
        }
        let mut inter_index = vec![vec![usize::MAX; n]; n];
        for a in 0..n {
            for b in (a + 1)..n {
                let idx = capacity.len();
                capacity.push(cluster.inter_node_bandwidth(NodeId(a as u32), NodeId(b as u32)));
                inter_index[a][b] = idx;
                inter_index[b][a] = idx;
            }
        }
        let gpu_node = (0..cluster.num_gpus())
            .map(|g| cluster.gpu(GpuId(g as u32)).node.index())
            .collect();
        let inter_latency = (0..n)
            .map(|a| {
                (0..n)
                    .map(|b| cluster.inter_node_latency(NodeId(a as u32), NodeId(b as u32)))
                    .collect()
            })
            .collect();
        let intra_latency = (0..n)
            .map(|i| cluster.node(NodeId(i as u32)).intra_latency)
            .collect();
        FabricTopology {
            base_capacity: capacity.clone(),
            capacity,
            gpu_node,
            inter_index,
            inter_latency,
            intra_latency,
            num_nodes: n,
        }
    }

    /// Link capacities, indexable by the link ids [`FabricTopology::path`]
    /// returns. Reflects any degradation set via
    /// [`FabricTopology::set_degradation`].
    pub fn capacities(&self) -> &[f64] {
        &self.capacity
    }

    /// Sets one link's degradation factor: its effective capacity becomes
    /// the healthy capacity divided by `factor`. A factor of exactly 1
    /// restores full capacity; factors are absolute, not cumulative.
    ///
    /// # Panics
    /// Panics if `factor` is not finite or below 1, or `link` is out of
    /// range.
    pub fn set_degradation(&mut self, link: usize, factor: f64) {
        assert!(
            factor >= 1.0 && factor.is_finite(),
            "degradation factor must be finite and >= 1, got {factor}"
        );
        self.capacity[link] = self.base_capacity[link] / factor;
    }

    /// Number of nodes in the underlying cluster.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Link index of node `n`'s NIC uplink.
    pub fn uplink(&self, n: usize) -> usize {
        n
    }

    /// Link index of node `n`'s NIC downlink.
    pub fn downlink(&self, n: usize) -> usize {
        self.num_nodes + n
    }

    /// Link index of node `n`'s intra-node bus.
    pub fn intra(&self, n: usize) -> usize {
        2 * self.num_nodes + n
    }

    /// The hosting node of a GPU.
    pub fn node_of(&self, gpu: GpuId) -> usize {
        self.gpu_node[gpu.index()]
    }

    /// The links a `from → to` transfer crosses, in traversal order. Empty
    /// for loopback (same GPU) transfers.
    pub fn path(&self, from: GpuId, to: GpuId) -> Vec<usize> {
        if from == to {
            return Vec::new();
        }
        let a = self.node_of(from);
        let b = self.node_of(to);
        if a == b {
            vec![self.intra(a)]
        } else {
            vec![self.uplink(a), self.inter_index[a][b], self.downlink(b)]
        }
    }

    /// The startup latency (alpha) of a `from → to` transfer.
    pub fn alpha(&self, from: GpuId, to: GpuId) -> SimDuration {
        if from == to {
            return SimDuration::ZERO;
        }
        let a = self.node_of(from);
        let b = self.node_of(to);
        if a == b {
            self.intra_latency[a]
        } else {
            self.inter_latency[a][b]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_cluster::{ClusterBuilder, GpuModel};

    fn cluster() -> Cluster {
        ClusterBuilder::new()
            .node("a", GpuModel::A40, 2)
            .node("b", GpuModel::Rtx3090Ti, 2)
            .node("c", GpuModel::A5000, 1)
            .inter_link(0, 1, 5e9, SimDuration::from_micros(300))
            .inter_link(0, 2, 1e9, SimDuration::from_micros(400))
            .inter_link(1, 2, 2e9, SimDuration::from_micros(500))
            .build()
            .unwrap()
    }

    #[test]
    fn link_layout_and_capacities() {
        let t = FabricTopology::from_cluster(&cluster());
        // 3 uplinks + 3 downlinks + 3 buses + 3 node pairs.
        assert_eq!(t.capacities().len(), 12);
        // NIC capacity = fastest terminated ethernet link.
        assert_eq!(t.capacities()[t.uplink(0)], 5e9);
        assert_eq!(t.capacities()[t.downlink(1)], 5e9);
        assert_eq!(t.capacities()[t.uplink(2)], 2e9);
    }

    #[test]
    fn paths_cross_the_expected_links() {
        let t = FabricTopology::from_cluster(&cluster());
        // Loopback: no links.
        assert!(t.path(GpuId(0), GpuId(0)).is_empty());
        // Same node: just the bus.
        assert_eq!(t.path(GpuId(0), GpuId(1)), vec![t.intra(0)]);
        // Cross-node: uplink, fabric link, downlink — and the reverse
        // direction shares the fabric link but flips NIC roles.
        let fwd = t.path(GpuId(0), GpuId(2));
        let rev = t.path(GpuId(2), GpuId(0));
        assert_eq!(fwd.len(), 3);
        assert_eq!(fwd[0], t.uplink(0));
        assert_eq!(fwd[2], t.downlink(1));
        assert_eq!(rev[0], t.uplink(1));
        assert_eq!(rev[2], t.downlink(0));
        assert_eq!(fwd[1], rev[1]);
    }

    #[test]
    fn degradation_scales_and_heals_absolutely() {
        let mut t = FabricTopology::from_cluster(&cluster());
        let up0 = t.uplink(0);
        t.set_degradation(up0, 4.0);
        assert_eq!(t.capacities()[up0], 5e9 / 4.0);
        // Factors are absolute against healthy capacity, not cumulative.
        t.set_degradation(up0, 2.0);
        assert_eq!(t.capacities()[up0], 5e9 / 2.0);
        t.set_degradation(up0, 1.0);
        assert_eq!(t.capacities()[up0], 5e9);
    }

    #[test]
    #[should_panic]
    fn degradation_below_one_rejected() {
        let mut t = FabricTopology::from_cluster(&cluster());
        t.set_degradation(0, 0.5);
    }

    #[test]
    fn alpha_follows_link_class() {
        let t = FabricTopology::from_cluster(&cluster());
        assert_eq!(t.alpha(GpuId(0), GpuId(0)), SimDuration::ZERO);
        assert_eq!(t.alpha(GpuId(0), GpuId(4)), SimDuration::from_micros(400));
    }
}
