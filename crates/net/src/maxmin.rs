//! Progressive-filling max-min fair bandwidth allocation.
//!
//! Given a set of capacitated links and a set of flows, each crossing a
//! subset of the links, the max-min fair allocation is the unique rate
//! vector in which no flow's rate can be increased without decreasing the
//! rate of a flow that is no better off. Progressive filling computes it by
//! growing all rates together and freezing, at each step, every flow
//! crossing the *most contended* link (the one with the smallest fair
//! share of remaining capacity).

/// Computes the max-min fair rate for each flow.
///
/// `capacity[l]` is link `l`'s capacity in bytes/s; `flows[f]` lists the
/// link indices flow `f` crosses (duplicates are ignored — a flow crossing
/// a link "twice" still only gets one share of it). Links with infinite
/// capacity never constrain anyone; a flow crossing only such links (or no
/// links at all, e.g. a loopback transfer) is unconstrained and gets
/// `f64::INFINITY`.
///
/// Deterministic: links are scanned in index order and ties broken toward
/// the lowest index, so the result depends only on the inputs — never on
/// iteration order of some hash container. Reordering the `flows` slice
/// permutes the output the same way and changes no rate.
///
/// # Panics
/// Panics if any flow references a link index out of range, or any finite
/// capacity is not positive.
pub fn max_min_allocate(capacity: &[f64], flows: &[Vec<usize>]) -> Vec<f64> {
    for (l, &c) in capacity.iter().enumerate() {
        assert!(
            c > 0.0,
            "link {l} has non-positive capacity {c}; use f64::INFINITY for free links"
        );
    }
    for path in flows {
        for &l in path {
            assert!(l < capacity.len(), "flow references unknown link {l}");
        }
    }
    let mut rate = vec![f64::INFINITY; flows.len()];
    let mut remaining = capacity.to_vec();
    let mut frozen = vec![false; flows.len()];
    // A flow counts once per link even if its path lists the link twice.
    let crosses = |f: usize, l: usize| flows[f].contains(&l);
    loop {
        // Fair share of every still-constraining link.
        let mut bottleneck: Option<(usize, f64)> = None;
        for l in 0..capacity.len() {
            if remaining[l].is_infinite() {
                continue;
            }
            let users = (0..flows.len())
                .filter(|&f| !frozen[f] && crosses(f, l))
                .count();
            if users == 0 {
                continue;
            }
            let share = remaining[l] / users as f64;
            match bottleneck {
                Some((_, best)) if best <= share => {}
                _ => bottleneck = Some((l, share)),
            }
        }
        let Some((bl, fair)) = bottleneck else {
            // Every unfrozen flow crosses only unconstrained links.
            break;
        };
        // Freeze the bottleneck link's flows at the fair share and charge
        // their rate against every other link they cross.
        for f in 0..flows.len() {
            if frozen[f] || !crosses(f, bl) {
                continue;
            }
            rate[f] = fair;
            frozen[f] = true;
            let mut seen = Vec::new();
            for &l in &flows[f] {
                if l != bl && !remaining[l].is_infinite() && !seen.contains(&l) {
                    remaining[l] = (remaining[l] - fair).max(0.0);
                    seen.push(l);
                }
            }
        }
        remaining[bl] = 0.0;
        if frozen.iter().all(|&f| f) {
            break;
        }
    }
    rate
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-9;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() <= EPS * b.abs().max(1.0)
    }

    #[test]
    fn single_bottleneck_splits_evenly() {
        // Two flows through one 10 B/s link: 5 each.
        let rates = max_min_allocate(&[10.0], &[vec![0], vec![0]]);
        assert!(close(rates[0], 5.0), "{rates:?}");
        assert!(close(rates[1], 5.0), "{rates:?}");
    }

    #[test]
    fn shared_uplink_with_wide_downlinks() {
        // Links: 0 = shared uplink (10), 1 and 2 = wide downlinks (100).
        // Both flows bottleneck on the uplink; the downlinks never bind.
        let caps = [10.0, 100.0, 100.0];
        let rates = max_min_allocate(&caps, &[vec![0, 1], vec![0, 2]]);
        assert!(close(rates[0], 5.0), "{rates:?}");
        assert!(close(rates[1], 5.0), "{rates:?}");
    }

    #[test]
    fn asymmetric_up_and_down_caps() {
        // Flow A crosses uplink (10) then a narrow downlink (4); flow B
        // only the uplink. A is pinned to 4 by its downlink; B takes the
        // uplink's remainder, 6.
        let caps = [10.0, 4.0];
        let rates = max_min_allocate(&caps, &[vec![0, 1], vec![0]]);
        assert!(close(rates[0], 4.0), "{rates:?}");
        assert!(close(rates[1], 6.0), "{rates:?}");
    }

    #[test]
    fn textbook_three_flow_example() {
        // The classic max-min example: caps [10, 4]; f0 = both links,
        // f1 = link 0 only, f2 = link 1 only. Link 1's fair share (2) is
        // the first bottleneck: f0 = f2 = 2; link 0 then has 8 left for f1.
        let rates = max_min_allocate(&[10.0, 4.0], &[vec![0, 1], vec![0], vec![1]]);
        assert!(close(rates[0], 2.0), "{rates:?}");
        assert!(close(rates[1], 8.0), "{rates:?}");
        assert!(close(rates[2], 2.0), "{rates:?}");
    }

    #[test]
    fn unconstrained_flows_get_infinite_rate() {
        let rates = max_min_allocate(&[10.0, f64::INFINITY], &[vec![], vec![1], vec![0]]);
        assert!(rates[0].is_infinite());
        assert!(rates[1].is_infinite());
        assert!(close(rates[2], 10.0));
    }

    #[test]
    fn duplicate_links_in_a_path_count_once() {
        let rates = max_min_allocate(&[10.0], &[vec![0, 0], vec![0]]);
        assert!(close(rates[0], 5.0), "{rates:?}");
        assert!(close(rates[1], 5.0), "{rates:?}");
    }

    /// Property (seeded sweep, in lieu of proptest): for random topologies
    /// and flow sets, no link's summed allocation exceeds its capacity, and
    /// every flow crossing at least one finite link gets a positive finite
    /// rate.
    #[test]
    fn no_link_oversubscribed_property() {
        use rand::Rng;
        let mut rng = ts_common::seeded_rng(0xF10);
        for _case in 0..200 {
            let num_links = rng.gen_range(1..8usize);
            let caps: Vec<f64> = (0..num_links)
                .map(|_| rng.gen_range(1.0..1000.0f64))
                .collect();
            let num_flows = rng.gen_range(1..12usize);
            let flows: Vec<Vec<usize>> = (0..num_flows)
                .map(|_| {
                    let hops = rng.gen_range(0..=3.min(num_links));
                    (0..hops).map(|_| rng.gen_range(0..num_links)).collect()
                })
                .collect();
            let rates = max_min_allocate(&caps, &flows);
            for (l, &cap) in caps.iter().enumerate() {
                let used: f64 = (0..num_flows)
                    .filter(|&f| flows[f].contains(&l))
                    .map(|f| rates[f])
                    .sum();
                assert!(
                    used <= cap * (1.0 + 1e-9),
                    "link {l} oversubscribed: {used} > {cap} (caps {caps:?}, flows {flows:?})"
                );
            }
            for (f, path) in flows.iter().enumerate() {
                if path.is_empty() {
                    assert!(rates[f].is_infinite());
                } else {
                    assert!(
                        rates[f] > 0.0 && rates[f].is_finite(),
                        "flow {f}: {rates:?}"
                    );
                }
            }
        }
    }

    /// Permuting the flow order permutes the rates identically — the
    /// allocation itself is order-free.
    #[test]
    fn allocation_is_permutation_invariant() {
        let caps = [10.0, 4.0, 7.0];
        let flows = [vec![0, 1], vec![0], vec![1, 2], vec![2], vec![0, 2]];
        let base = max_min_allocate(&caps, &flows);
        let perm = [3usize, 0, 4, 1, 2];
        let shuffled: Vec<Vec<usize>> = perm.iter().map(|&i| flows[i].clone()).collect();
        let rates = max_min_allocate(&caps, &shuffled);
        for (pos, &orig) in perm.iter().enumerate() {
            assert_eq!(rates[pos].to_bits(), base[orig].to_bits(), "flow {orig}");
        }
    }
}
