//! vLLM-like baseline: colocated continuous batching.
//!
//! vLLM serves each model replica on a tensor-parallel GPU group within one
//! node and runs prefill and decode on the same replica with continuous
//! batching (PagedAttention provides the KV memory management, which our
//! simulator's admission logic models). The planner maximizes the replica
//! count: for each node it picks the smallest power-of-two TP degree whose
//! group can hold the weights, then tiles the node with such groups.
//!
//! The groups feed `ts_sim::colocated::ColocatedSimulation`, which runs on
//! the same execution core as the phase-split engine — so the baseline also
//! supports mid-flight fault injection with identical recovery accounting
//! (exercised by the failure experiment's colocated arm).

use ts_cluster::Cluster;
use ts_common::{Error, GpuId, GroupSpec, ModelSpec, ParallelConfig, Phase, Result, StageSpec};
use ts_costmodel::{replica::memory_feasible_with_headroom, ModelParams};

/// Memory headroom factor: a replica must fit the weights plus ~25% of its
/// memory for KV cache to serve meaningful batches.
const KV_HEADROOM: f64 = 4.0 / 3.0;

/// The vLLM-like deployment planner.
#[derive(Debug, Clone, Default)]
pub struct VllmPlanner {
    /// Cost-model parameters used for memory feasibility.
    pub params: ModelParams,
}

impl VllmPlanner {
    /// Creates a planner with default parameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Plans colocated replicas over the cluster's active GPUs. The groups'
    /// phase field is set to `Prefill` but ignored by the colocated engine.
    ///
    /// # Errors
    /// Returns [`Error::Infeasible`] if no node can host even one replica.
    pub fn plan(&self, cluster: &Cluster, model: &ModelSpec) -> Result<Vec<GroupSpec>> {
        let mut groups = Vec::new();
        for node in cluster.nodes() {
            let gpus: Vec<GpuId> = node
                .gpus
                .iter()
                .copied()
                .filter(|&g| cluster.is_active(g))
                .collect();
            if gpus.is_empty() {
                continue;
            }
            // smallest power-of-two TP that fits
            let mut tp = 1usize;
            let fitting_tp = loop {
                if tp > gpus.len() {
                    break None;
                }
                if memory_feasible_with_headroom(
                    cluster,
                    model,
                    &gpus[..tp],
                    &self.params,
                    KV_HEADROOM,
                ) {
                    break Some(tp);
                }
                tp *= 2;
            };
            let Some(tp) = fitting_tp else { continue };
            for chunk in gpus.chunks(tp) {
                if chunk.len() < tp {
                    break; // leftover GPUs idle, as vLLM would leave them
                }
                groups.push(GroupSpec::new(
                    Phase::Prefill,
                    ParallelConfig::new(tp, 1)?,
                    vec![StageSpec {
                        gpus: chunk.to_vec(),
                        layers: model.num_layers,
                    }],
                )?);
            }
        }
        if groups.is_empty() {
            return Err(Error::Infeasible("no node can host a vLLM replica".into()));
        }
        Ok(groups)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_cluster::presets;

    #[test]
    fn a100_box_hosts_four_tp2_replicas_of_30b() {
        // §5.3: the in-house 8xA100 server hosts 4 replicas.
        let cluster = presets::paper_inhouse_cluster();
        let model = ModelSpec::llama_30b();
        let groups = VllmPlanner::new().plan(&cluster, &model).unwrap();
        assert_eq!(groups.len(), 4);
        for g in &groups {
            assert_eq!(g.parallel.tp(), 2);
            assert_eq!(g.parallel.pp(), 1);
        }
    }

    #[test]
    fn small_model_gets_one_replica_per_gpu() {
        let cluster = presets::paper_inhouse_cluster();
        let model = ModelSpec::llama_7b();
        let groups = VllmPlanner::new().plan(&cluster, &model).unwrap();
        assert_eq!(groups.len(), 8);
    }

    #[test]
    fn skips_failed_gpus() {
        let mut cluster = presets::paper_inhouse_cluster();
        cluster.deactivate_gpus(&[GpuId(0), GpuId(1)]).unwrap();
        let model = ModelSpec::llama_30b();
        let groups = VllmPlanner::new().plan(&cluster, &model).unwrap();
        assert_eq!(groups.len(), 3);
    }

    #[test]
    fn infeasible_on_tiny_cluster() {
        let cluster = presets::a5000_pair_40gbps(); // 2x24GB, separate nodes
        let model = ModelSpec::llama_30b();
        assert!(VllmPlanner::new().plan(&cluster, &model).is_err());
    }
}
