//! DistServe-like baseline: homogeneous phase splitting.
//!
//! DistServe disaggregates prefill and decode onto separate homogeneous
//! replicas within one node (KV caches cross NVLink) and picks the
//! prefill:decode ratio by simulation-guided search. Our planner does the
//! same on a homogeneous cluster: it tiles the GPUs into equal TP groups
//! (smallest degree that fits the model), sweeps every prefill:decode split
//! with at least one replica per phase, orchestrates each split, and keeps
//! the split with the best estimated attainment. The resulting plan runs on
//! `ts_sim::engine::Simulation` — the phase-split facade over the shared
//! execution core in `ts_sim::exec`.

use ts_cluster::Cluster;
use ts_common::{
    DeploymentPlan, Error, GpuId, GroupSpec, ModelSpec, ParallelConfig, Phase, Result, SloSpec,
    StageSpec,
};
use ts_costmodel::ReplicaCostModel;
use ts_costmodel::{replica::memory_feasible_with_headroom, ModelParams};
use ts_kvcache::codec::KvWirePrecision;
use ts_sim::config::SimConfig;
use ts_sim::estimate::pair_estimates;
use ts_solver::transport::solve_orchestration;
use ts_workload::WorkloadSpec;

/// Memory headroom factor (weights + ~25% KV room), as in the vLLM planner.
const KV_HEADROOM: f64 = 4.0 / 3.0;

/// The DistServe-like planner.
#[derive(Debug, Clone)]
pub struct DistServePlanner {
    /// Cost-model parameters.
    pub params: ModelParams,
    /// KV wire precision (DistServe ships uncompressed fp16 over NVLink).
    pub kv_precision: KvWirePrecision,
}

impl Default for DistServePlanner {
    fn default() -> Self {
        DistServePlanner {
            params: ModelParams::default(),
            kv_precision: KvWirePrecision::F16,
        }
    }
}

impl DistServePlanner {
    /// Creates a planner with DistServe defaults (fp16 KV transfer).
    pub fn new() -> Self {
        Self::default()
    }

    /// Plans a phase-split deployment, sweeping the prefill:decode ratio.
    ///
    /// # Errors
    /// Returns [`Error::Infeasible`] if fewer than two replicas fit.
    pub fn plan(
        &self,
        cluster: &Cluster,
        model: &ModelSpec,
        workload: &WorkloadSpec,
        slo: &SloSpec,
    ) -> Result<DeploymentPlan> {
        // Tile into equal TP groups (vLLM-style, per node).
        let mut units: Vec<Vec<GpuId>> = Vec::new();
        for node in cluster.nodes() {
            let gpus: Vec<GpuId> = node
                .gpus
                .iter()
                .copied()
                .filter(|&g| cluster.is_active(g))
                .collect();
            let mut tp = 1usize;
            let fitting = loop {
                if tp > gpus.len() {
                    break None;
                }
                if memory_feasible_with_headroom(
                    cluster,
                    model,
                    &gpus[..tp],
                    &self.params,
                    KV_HEADROOM,
                ) {
                    break Some(tp);
                }
                tp *= 2;
            };
            let Some(tp) = fitting else { continue };
            for chunk in gpus.chunks(tp) {
                if chunk.len() == tp {
                    units.push(chunk.to_vec());
                }
            }
        }
        let k = units.len();
        if k < 2 {
            return Err(Error::Infeasible(format!(
                "DistServe needs >= 2 replicas, fits {k}"
            )));
        }

        let mut sim_cfg = SimConfig::new(model.clone());
        sim_cfg.params = self.params;
        sim_cfg.kv_precision = self.kv_precision;

        let make_group = |gpus: &[GpuId], phase: Phase| -> Result<GroupSpec> {
            GroupSpec::new(
                phase,
                ParallelConfig::new(gpus.len(), 1)?,
                vec![StageSpec {
                    gpus: gpus.to_vec(),
                    layers: model.num_layers,
                }],
            )
        };

        let mut best: Option<(f64, DeploymentPlan)> = None;
        for m in 1..k {
            // m prefill replicas, k-m decode replicas
            let mut groups = Vec::with_capacity(k);
            for (i, u) in units.iter().enumerate() {
                let phase = if i < m { Phase::Prefill } else { Phase::Decode };
                groups.push(make_group(u, phase)?);
            }
            let prefill: Vec<ReplicaCostModel> = groups[..m]
                .iter()
                .map(|g| ReplicaCostModel::new(cluster, model, g, &self.params))
                .collect::<Result<_>>()?;
            let decode: Vec<ReplicaCostModel> = groups[m..]
                .iter()
                .map(|g| ReplicaCostModel::new(cluster, model, g, &self.params))
                .collect::<Result<_>>()?;
            let est = pair_estimates(cluster, &sim_cfg, &prefill, &decode, workload, slo);
            let Ok(orch) = solve_orchestration(&est.d, &est.row_cap, &est.col_cap) else {
                continue;
            };
            if orch.mass <= 0.0 {
                continue;
            }
            let scale = 1.0 / orch.mass;
            let rates: Vec<Vec<f64>> = orch
                .rates
                .iter()
                .map(|r| r.iter().map(|&v| v * scale).collect())
                .collect();
            let plan = DeploymentPlan::new(groups, ts_common::RoutingMatrix::new(rates)?)?;
            if best.as_ref().map(|(s, _)| orch.value > *s).unwrap_or(true) {
                best = Some((orch.value, plan));
            }
        }
        best.map(|(_, p)| p)
            .ok_or_else(|| Error::Infeasible("no feasible phase split found".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_cluster::presets;
    use ts_common::SimDuration;
    use ts_workload::spec;

    fn slo() -> SloSpec {
        SloSpec::new(
            SimDuration::from_secs(3),
            SimDuration::from_millis(200),
            SimDuration::from_secs(40),
        )
    }

    #[test]
    fn splits_a100_box() {
        let cluster = presets::paper_inhouse_cluster();
        let model = ModelSpec::llama_30b();
        let plan = DistServePlanner::new()
            .plan(&cluster, &model, &spec::coding(2.0), &slo())
            .unwrap();
        let (p, d) = plan.phase_ratio();
        assert_eq!(p + d, 4, "8 A100s tile into 4 TP=2 replicas");
        assert!(p >= 1 && d >= 1);
    }

    #[test]
    fn coding_gets_more_prefill_than_conversation() {
        let cluster = presets::paper_inhouse_cluster();
        let model = ModelSpec::llama_30b();
        let planner = DistServePlanner::new();
        let coding = planner
            .plan(&cluster, &model, &spec::coding(4.0), &slo())
            .unwrap();
        let conv = planner
            .plan(&cluster, &model, &spec::conversation(4.0), &slo())
            .unwrap();
        assert!(
            coding.phase_ratio().0 >= conv.phase_ratio().0,
            "coding {:?} vs conversation {:?}",
            coding.phase_ratio(),
            conv.phase_ratio()
        );
    }

    #[test]
    fn infeasible_on_single_replica() {
        let cluster = presets::a5000_pair_40gbps();
        let model = ModelSpec::llama_30b();
        assert!(DistServePlanner::new()
            .plan(&cluster, &model, &spec::coding(1.0), &slo())
            .is_err());
    }
}
