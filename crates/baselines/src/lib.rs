//! # ts-baselines
//!
//! Reimplementations of the paper's baseline systems as *policies* over the
//! shared simulator, so every comparison runs on identical substrate:
//!
//! * [`vllm`] — a vLLM-like planner: colocated continuous batching on a
//!   homogeneous cluster, one replica per smallest TP group that fits the
//!   model, run with [`ts_sim::colocated::ColocatedSimulation`];
//! * [`distserve`] — a DistServe-like planner: homogeneous phase splitting
//!   with an exhaustive sweep over the prefill:decode replica ratio,
//!   assuming fast intra-node interconnect for KV transfer;
//! * [`hexgen`] — a HexGen-like planner: heterogeneity-aware asymmetric
//!   parallelism (groups formed by bandwidth clustering, per-group parallel
//!   configs) but **colocated** phases — heterogeneous scheduling without
//!   phase splitting, which is exactly the axis ThunderServe adds.

pub mod distserve;
pub mod hexgen;
pub mod vllm;

pub use distserve::DistServePlanner;
pub use hexgen::HexGenPlanner;
pub use vllm::VllmPlanner;
