//! HexGen-like baseline: heterogeneous colocated serving.
//!
//! HexGen schedules generative inference over heterogeneous, decentralized
//! GPUs with asymmetric parallelism, but colocates prefill and decode on the
//! same replicas. Our planner reproduces that policy: groups come from
//! bandwidth-based hierarchical clustering (merging until every group can
//! host the model), and each group gets its best parallel configuration from
//! the same Algorithm-2 machinery ThunderServe uses — minus the phase
//! designation axis. The result feeds the colocated engine, which shares
//! the phase-split engine's execution core — fault scripts and recovery
//! metrics work identically on these deployments.

use thunderserve_core::config::SchedulerConfig;
use thunderserve_core::parallel::deduce_parallel_config;
use ts_cluster::Cluster;
use ts_common::{Error, GpuId, GroupSpec, ModelSpec, Phase, Result};
use ts_costmodel::replica::memory_feasible_with_headroom;
use ts_solver::clustering::cluster_by_bandwidth;
use ts_workload::WorkloadSpec;

/// Memory headroom factor (weights + ~25% KV room).
const KV_HEADROOM: f64 = 4.0 / 3.0;

/// The HexGen-like planner.
#[derive(Debug, Clone, Default)]
pub struct HexGenPlanner {
    /// Parallel-config deduction knobs (shared with the core scheduler).
    pub cfg: SchedulerConfig,
}

impl HexGenPlanner {
    /// Creates a planner with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Plans colocated heterogeneous replicas.
    ///
    /// # Errors
    /// Returns [`Error::Infeasible`] if not even one replica fits.
    pub fn plan(
        &self,
        cluster: &Cluster,
        model: &ModelSpec,
        workload: &WorkloadSpec,
    ) -> Result<Vec<GroupSpec>> {
        let active = cluster.active_gpus();
        if active.is_empty() {
            return Err(Error::Infeasible("no active GPUs".into()));
        }
        let usable: u64 = active
            .iter()
            .map(|&g| (cluster.gpu(g).spec().memory_bytes as f64 * self.cfg.params.mem_util) as u64)
            .sum();
        let weight_budget = (model.weight_bytes() as f64 * KV_HEADROOM) as u64;
        let max_replicas = ((usable / weight_budget.max(1)) as usize).max(1);
        let k = max_replicas.min(active.len());
        let bw = cluster.bandwidth_matrix();
        let mut clusters = cluster_by_bandwidth(&bw, k)?;

        // Merge infeasible clusters until all can host the model.
        loop {
            let mut merged = false;
            let mut i = 0;
            while i < clusters.len() && clusters.len() > 1 {
                let gpus: Vec<GpuId> = clusters[i].iter().map(|&x| active[x]).collect();
                if !memory_feasible_with_headroom(
                    cluster,
                    model,
                    &gpus,
                    &self.cfg.params,
                    KV_HEADROOM,
                ) {
                    let take = clusters.remove(i);
                    let j = i % clusters.len();
                    clusters[j].extend(take);
                    merged = true;
                } else {
                    i += 1;
                }
            }
            if !merged {
                break;
            }
        }

        let mut groups = Vec::with_capacity(clusters.len());
        for idxs in clusters {
            let gpus: Vec<GpuId> = idxs.iter().map(|&x| active[x]).collect();
            // HexGen optimizes serving throughput; score configs as decode
            // (throughput-optimal), which is the colocated steady state.
            let group =
                deduce_parallel_config(cluster, model, &gpus, Phase::Decode, workload, &self.cfg)?;
            groups.push(GroupSpec {
                phase: Phase::Prefill, // ignored by the colocated engine
                ..group
            });
        }
        if groups.is_empty() {
            return Err(Error::Infeasible("no feasible HexGen replica".into()));
        }
        Ok(groups)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_cluster::presets;
    use ts_workload::spec;

    #[test]
    fn plans_many_replicas_on_cloud() {
        let cluster = presets::paper_cloud_cluster();
        let model = ModelSpec::llama_30b();
        let groups = HexGenPlanner::new()
            .plan(&cluster, &model, &spec::coding(4.0))
            .unwrap();
        assert!(groups.len() >= 4, "got {} replicas", groups.len());
        let total: usize = groups.iter().map(|g| g.num_gpus()).sum();
        assert!(total <= 32);
        // every group hosts the full model
        for g in &groups {
            assert_eq!(g.total_layers(), model.num_layers);
        }
    }

    #[test]
    fn groups_are_disjoint() {
        let cluster = presets::paper_cloud_cluster();
        let model = ModelSpec::llama_30b();
        let groups = HexGenPlanner::new()
            .plan(&cluster, &model, &spec::conversation(4.0))
            .unwrap();
        let mut seen = std::collections::BTreeSet::new();
        for g in &groups {
            for gpu in g.gpus() {
                assert!(seen.insert(gpu), "GPU {gpu} reused");
            }
        }
    }

    #[test]
    fn works_after_failures() {
        let mut cluster = presets::paper_cloud_cluster();
        cluster.deactivate_node(ts_common::NodeId(4)).unwrap(); // lose the A40 box
        let model = ModelSpec::llama_30b();
        let groups = HexGenPlanner::new()
            .plan(&cluster, &model, &spec::coding(4.0))
            .unwrap();
        for g in &groups {
            for gpu in g.gpus() {
                assert!(cluster.is_active(gpu));
            }
        }
    }
}
