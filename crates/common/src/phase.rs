//! Inference phases.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The two phases of autoregressive LLM inference.
///
/// The *prefill* phase processes the whole prompt in one compute-bound pass
/// and produces the KV cache plus the first token; the *decode* phase then
/// generates one token per step and is bound by memory bandwidth. Phase-split
/// serving assigns entire model replicas to one phase or the other.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Phase {
    /// Prompt processing: compute-bound, latency-sensitive (TTFT).
    Prefill,
    /// Token generation: memory-bandwidth-bound, throughput-oriented (TPOT).
    Decode,
}

impl Phase {
    /// The other phase; used by the "flip" tabu move and lightweight
    /// rescheduling.
    ///
    /// ```
    /// use ts_common::Phase;
    /// assert_eq!(Phase::Prefill.opposite(), Phase::Decode);
    /// assert_eq!(Phase::Decode.opposite(), Phase::Prefill);
    /// ```
    #[inline]
    pub const fn opposite(self) -> Phase {
        match self {
            Phase::Prefill => Phase::Decode,
            Phase::Decode => Phase::Prefill,
        }
    }

    /// Both phases, in prefill-first order.
    pub const ALL: [Phase; 2] = [Phase::Prefill, Phase::Decode];
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Phase::Prefill => f.write_str("prefill"),
            Phase::Decode => f.write_str("decode"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opposite_is_involutive() {
        for p in Phase::ALL {
            assert_eq!(p.opposite().opposite(), p);
            assert_ne!(p.opposite(), p);
        }
    }

    #[test]
    fn display_is_lowercase() {
        assert_eq!(Phase::Prefill.to_string(), "prefill");
        assert_eq!(Phase::Decode.to_string(), "decode");
    }
}
