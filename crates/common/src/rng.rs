//! Deterministic randomness helpers.
//!
//! Every stochastic component in the workspace (workload generation, tabu
//! search tie-breaking, synthetic KV tensors) accepts an explicit seed so all
//! experiments are exactly reproducible.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Creates a deterministic RNG from a 64-bit seed.
///
/// ```
/// use rand::Rng;
/// let mut a = ts_common::seeded_rng(7);
/// let mut b = ts_common::seeded_rng(7);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives a child seed from a parent seed and a stream index, so subsystems
/// can fork independent deterministic streams (SplitMix64 finalizer).
pub fn derive_seed(parent: u64, stream: u64) -> u64 {
    let mut z = parent.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let xs: Vec<u32> = {
            let mut r = seeded_rng(42);
            (0..8).map(|_| r.gen()).collect()
        };
        let ys: Vec<u32> = {
            let mut r = seeded_rng(42);
            (0..8).map(|_| r.gen()).collect()
        };
        assert_eq!(xs, ys);
    }

    #[test]
    fn derived_seeds_differ_by_stream() {
        let a = derive_seed(1, 0);
        let b = derive_seed(1, 1);
        let c = derive_seed(2, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}
