//! Simulated time.
//!
//! The discrete-event simulator needs totally ordered, exactly comparable
//! timestamps; floating point would make event ordering fragile. We therefore
//! represent simulated time as integer **microseconds** since the start of
//! the simulation.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// `x.round()` for non-negative `x`, without the libm call.
///
/// On baseline x86-64 (no SSE4.1 `roundsd`) `f64::round` compiles to a call
/// into libm, and the simulator converts floats to timestamps millions of
/// times per run — it shows up in profiles. For `x < 2^53` every integer in
/// play is exactly representable, so truncate-and-compare reproduces
/// round-half-away-from-zero bit-for-bit with three inline instructions;
/// larger values (285+ simulated years in microseconds) take the slow path.
#[inline]
fn round_nonneg(x: f64) -> u64 {
    const EXACT: f64 = 9_007_199_254_740_992.0; // 2^53
    if x < EXACT {
        let i = x as u64; // truncation; exact since x < 2^53
        i + (x - i as f64 >= 0.5) as u64
    } else {
        x.round() as u64
    }
}

/// An instant in simulated time (microseconds since simulation start).
///
/// ```
/// use ts_common::{SimTime, SimDuration};
/// let t = SimTime::ZERO + SimDuration::from_millis(3);
/// assert_eq!(t.as_micros(), 3_000);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time (microseconds).
///
/// ```
/// use ts_common::SimDuration;
/// let d = SimDuration::from_secs_f64(0.25) * 2;
/// assert_eq!(d.as_secs_f64(), 0.5);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from integer microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Creates an instant from (possibly fractional) seconds.
    ///
    /// # Panics
    /// Panics if `secs` is negative or not finite.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid time: {secs}");
        SimTime(round_nonneg(secs * 1e6))
    }

    /// Raw microsecond count.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This instant expressed in seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time elapsed since `earlier`, saturating to zero if `earlier` is later.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from integer microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Creates a duration from integer milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Creates a duration from integer seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Creates a duration from fractional seconds.
    ///
    /// # Panics
    /// Panics if `secs` is negative, NaN or infinite.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid duration: {secs}");
        SimDuration(round_nonneg(secs * 1e6))
    }

    /// Raw microsecond count.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This duration expressed in milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// This duration expressed in seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Whether this duration is exactly zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Duration scaled by a non-negative float, rounding to whole microseconds.
    ///
    /// # Panics
    /// Panics if `factor` is negative or not finite.
    #[inline]
    pub fn mul_f64(self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "invalid factor: {factor}"
        );
        SimDuration(round_nonneg(self.0 as f64 * factor))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Elapsed time between two instants.
    ///
    /// # Panics
    /// Panics in debug builds if `rhs` is later than `self`.
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self >= rhs, "time went backwards: {self:?} - {rhs:?}");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    /// # Panics
    /// Panics if `rhs` is zero.
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}us", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_nonneg_matches_libm_round() {
        // Adversarial cases: exact halves (round half away from zero), the
        // largest double below 0.5 (where the naive `floor(x + 0.5)` trick
        // breaks), values straddling the 2^53 exactness cliff, and a sweep
        // of awkward fractions at realistic microsecond magnitudes.
        let mut cases = vec![
            0.0,
            0.25,
            0.49999999999999994, // nextbelow(0.5): rounds to 0, x+0.5 would give 1
            0.5,
            0.75,
            1.5,
            2.5,
            9_007_199_254_740_991.0, // 2^53 - 1
            9_007_199_254_740_992.0, // 2^53 (slow path)
            9_007_199_254_740_994.0,
            1.8e16,
        ];
        let mut x = 0.1;
        while x < 1e12 {
            cases.push(x);
            cases.push(x + 0.5);
            x = x * 9.7 + 0.3;
        }
        for &c in &cases {
            assert_eq!(round_nonneg(c), c.round() as u64, "diverged at {c}");
        }
    }

    #[test]
    fn arithmetic_round_trips() {
        let t0 = SimTime::from_secs_f64(1.0);
        let d = SimDuration::from_millis(250);
        let t1 = t0 + d;
        assert_eq!(t1 - t0, d);
        assert_eq!(t1.as_micros(), 1_250_000);
    }

    #[test]
    fn saturating_behaviour() {
        let early = SimTime::from_micros(10);
        let late = SimTime::from_micros(20);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(
            SimDuration::MAX + SimDuration::from_secs(1),
            SimDuration::MAX
        );
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_micros(42).to_string(), "42us");
        assert_eq!(SimDuration::from_millis(5).to_string(), "5.000ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
    }

    #[test]
    fn mul_f64_rounds() {
        let d = SimDuration::from_micros(3);
        assert_eq!(d.mul_f64(0.5).as_micros(), 2); // 1.5 rounds to 2
        assert_eq!(d.mul_f64(2.0).as_micros(), 6);
    }

    #[test]
    #[should_panic]
    fn negative_duration_panics() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_micros).sum();
        assert_eq!(total.as_micros(), 10);
    }

    #[test]
    fn ordering_is_total() {
        let mut v = [
            SimTime::from_micros(3),
            SimTime::ZERO,
            SimTime::from_micros(1),
        ];
        v.sort();
        assert_eq!(v[0], SimTime::ZERO);
        assert_eq!(v[2], SimTime::from_micros(3));
    }
}
