//! A generational slab: dense, reusable storage indexed by small handles.
//!
//! The simulator keeps per-request state alive from arrival to completion
//! and touches it on every event. Keying that state by [`crate::RequestId`]
//! in a `HashMap` costs a hash and a probe per touch; a slab turns the same
//! lookup into one array index. Slots are recycled through a free list, and
//! every slot carries a *generation* so a stale handle (one outliving its
//! entry, e.g. carried by an event that fires after the request finished)
//! is detected instead of silently reading the slot's next tenant.
//!
//! ```
//! use ts_common::slab::Slab;
//! let mut slab = Slab::new();
//! let a = slab.insert("alpha");
//! let b = slab.insert("beta");
//! assert_eq!(slab[a], "alpha");
//! assert_eq!(slab.remove(a), Some("alpha"));
//! assert_eq!(slab.get(a), None); // stale handle, not `beta`'s slot
//! let c = slab.insert("gamma"); // recycles the slot under a new generation
//! assert_eq!(slab[c], "gamma");
//! assert_eq!(slab.get(a), None);
//! assert_eq!(slab.len(), 2);
//! let _ = b;
//! ```

use std::fmt;
use std::ops::{Index, IndexMut};

/// A handle into a [`Slab`]: slot index plus the generation it was issued
/// under. 8 bytes, `Copy`, order- and hash-friendly, and convertible to a
/// single `u64` for subsystems that key by integers (e.g. network-flow
/// tables).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SlabKey {
    index: u32,
    gen: u32,
}

impl SlabKey {
    /// Packs the handle into one integer (`index` in the high half).
    #[inline]
    pub fn as_u64(self) -> u64 {
        (u64::from(self.index) << 32) | u64::from(self.gen)
    }

    /// Unpacks a handle produced by [`SlabKey::as_u64`].
    #[inline]
    pub fn from_u64(v: u64) -> Self {
        SlabKey {
            index: (v >> 32) as u32,
            gen: v as u32,
        }
    }

    /// The slot index (dense, `<` the slab's capacity).
    #[inline]
    pub fn index(self) -> usize {
        self.index as usize
    }
}

impl fmt::Display for SlabKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}v{}", self.index, self.gen)
    }
}

#[derive(Debug, Clone)]
struct Slot<T> {
    gen: u32,
    value: Option<T>,
}

/// A generational slab allocator. See the module docs for the contract.
#[derive(Debug, Clone)]
pub struct Slab<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    len: usize,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Slab::new()
    }
}

impl<T> Slab<T> {
    /// An empty slab.
    pub fn new() -> Self {
        Slab {
            slots: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// An empty slab with room for `cap` entries before reallocating.
    pub fn with_capacity(cap: usize) -> Self {
        Slab {
            slots: Vec::with_capacity(cap),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Number of live entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the slab holds no live entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Stores `value`, returning its handle. Recycles the most recently
    /// freed slot if one exists.
    pub fn insert(&mut self, value: T) -> SlabKey {
        self.len += 1;
        if let Some(index) = self.free.pop() {
            let slot = &mut self.slots[index as usize];
            debug_assert!(slot.value.is_none(), "free list pointed at a live slot");
            slot.value = Some(value);
            SlabKey {
                index,
                gen: slot.gen,
            }
        } else {
            let index = u32::try_from(self.slots.len()).expect("slab capacity exceeds u32");
            self.slots.push(Slot {
                gen: 0,
                value: Some(value),
            });
            SlabKey { index, gen: 0 }
        }
    }

    #[inline]
    fn slot(&self, key: SlabKey) -> Option<&Slot<T>> {
        self.slots.get(key.index as usize).filter(|s| {
            // A generation match on a vacant slot cannot happen (removal
            // bumps the generation), so the gen check alone decides.
            debug_assert!(s.gen != key.gen || s.value.is_some());
            s.gen == key.gen
        })
    }

    /// The entry under `key`, or `None` if the handle is stale.
    #[inline]
    pub fn get(&self, key: SlabKey) -> Option<&T> {
        self.slot(key).and_then(|s| s.value.as_ref())
    }

    /// Mutable access to the entry under `key`, or `None` if stale.
    #[inline]
    pub fn get_mut(&mut self, key: SlabKey) -> Option<&mut T> {
        self.slots
            .get_mut(key.index as usize)
            .filter(|s| s.gen == key.gen)
            .and_then(|s| s.value.as_mut())
    }

    /// Whether `key` refers to a live entry.
    #[inline]
    pub fn contains(&self, key: SlabKey) -> bool {
        self.get(key).is_some()
    }

    /// Removes and returns the entry under `key`; `None` if stale. The slot
    /// is recycled under a new generation.
    pub fn remove(&mut self, key: SlabKey) -> Option<T> {
        let slot = self
            .slots
            .get_mut(key.index as usize)
            .filter(|s| s.gen == key.gen)?;
        let value = slot.value.take()?;
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(key.index);
        self.len -= 1;
        debug_assert!(self.free.len() + self.len == self.slots.len());
        Some(value)
    }

    /// Live entries in slot-index order (deterministic, *not* insertion
    /// order once slots recycle).
    pub fn iter(&self) -> impl Iterator<Item = (SlabKey, &T)> {
        self.slots.iter().enumerate().filter_map(|(i, s)| {
            s.value.as_ref().map(|v| {
                (
                    SlabKey {
                        index: i as u32,
                        gen: s.gen,
                    },
                    v,
                )
            })
        })
    }

    /// Drains every live entry in slot-index order, leaving the slab empty
    /// (generations keep advancing, so old handles stay stale).
    pub fn drain(&mut self) -> Vec<(SlabKey, T)> {
        let mut out = Vec::with_capacity(self.len);
        for (i, s) in self.slots.iter_mut().enumerate() {
            if let Some(v) = s.value.take() {
                out.push((
                    SlabKey {
                        index: i as u32,
                        gen: s.gen,
                    },
                    v,
                ));
                s.gen = s.gen.wrapping_add(1);
                self.free.push(i as u32);
            }
        }
        self.len = 0;
        out
    }
}

impl<T> Index<SlabKey> for Slab<T> {
    type Output = T;

    /// # Panics
    /// Panics on a stale handle — indexing asserts liveness.
    #[inline]
    fn index(&self, key: SlabKey) -> &T {
        self.get(key).expect("stale slab key")
    }
}

impl<T> IndexMut<SlabKey> for Slab<T> {
    #[inline]
    fn index_mut(&mut self, key: SlabKey) -> &mut T {
        self.get_mut(key).expect("stale slab key")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut s = Slab::new();
        let k = s.insert(42);
        assert_eq!(s.get(k), Some(&42));
        assert_eq!(s.len(), 1);
        *s.get_mut(k).unwrap() = 43;
        assert_eq!(s.remove(k), Some(43));
        assert!(s.is_empty());
        assert_eq!(s.remove(k), None, "double remove is a stale no-op");
    }

    #[test]
    fn stale_keys_never_alias_recycled_slots() {
        let mut s = Slab::new();
        let a = s.insert("a");
        s.remove(a).unwrap();
        let b = s.insert("b");
        assert_eq!(a.index(), b.index(), "slot must be recycled");
        assert_eq!(s.get(a), None);
        assert_eq!(s.get(b), Some(&"b"));
        assert!(!s.contains(a));
        assert!(s.contains(b));
    }

    #[test]
    fn u64_roundtrip_is_lossless_and_unique_per_generation() {
        let mut s = Slab::new();
        let a = s.insert(1);
        s.remove(a).unwrap();
        let b = s.insert(2);
        assert_eq!(SlabKey::from_u64(a.as_u64()), a);
        assert_eq!(SlabKey::from_u64(b.as_u64()), b);
        assert_ne!(a.as_u64(), b.as_u64());
    }

    #[test]
    fn iter_walks_index_order() {
        let mut s = Slab::new();
        let keys: Vec<_> = (0..5).map(|i| s.insert(i * 10)).collect();
        s.remove(keys[2]).unwrap();
        let seen: Vec<_> = s.iter().map(|(k, &v)| (k.index(), v)).collect();
        assert_eq!(seen, vec![(0, 0), (1, 10), (3, 30), (4, 40)]);
    }

    #[test]
    fn drain_empties_and_staleifies() {
        let mut s = Slab::new();
        let a = s.insert(1);
        let b = s.insert(2);
        let drained = s.drain();
        assert_eq!(drained, vec![(a, 1), (b, 2)]);
        assert!(s.is_empty());
        assert_eq!(s.get(a), None);
        assert_eq!(s.get(b), None);
        let c = s.insert(3);
        assert_eq!(s.get(c), Some(&3));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn interleaved_churn_conserves_len() {
        let mut s = Slab::new();
        let mut live = Vec::new();
        for round in 0u32..100 {
            let k = s.insert(round);
            live.push((k, round));
            if round % 3 == 0 {
                let (k, v) = live.remove((round as usize * 7) % live.len());
                assert_eq!(s.remove(k), Some(v));
            }
            assert_eq!(s.len(), live.len());
        }
        for (k, v) in &live {
            assert_eq!(s.get(*k), Some(v));
        }
        assert_eq!(s.iter().count(), live.len());
    }
}
