//! The served-model catalog: which models a deployment hosts, with their
//! per-tenant service objectives and traffic shares.
//!
//! A single-model deployment is the one-entry special case
//! ([`ServedModel::single`]); everything downstream (scheduler, simulator,
//! metrics) treats the catalog as the source of truth for per-model
//! [`ModelSpec`]s and [`SloSpec`]s.

use crate::ids::ModelId;
use crate::{Error, ModelSpec, Result, SimDuration, SloSpec};
use serde::{Deserialize, Serialize};

/// One entry of the served-model catalog: a model, its SLO, and its share of
/// the aggregate request stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServedModel {
    /// Identity threaded through plans, requests and metrics.
    pub id: ModelId,
    /// Architecture and precision of the served model.
    pub spec: ModelSpec,
    /// The tenant's service-level objective, evaluated per model by
    /// metrics consumers.
    pub slo: SloSpec,
    /// Fraction of aggregate traffic addressed to this model. Shares of a
    /// catalog sum to 1 (see [`validate_catalog`]).
    pub traffic_share: f64,
}

impl ServedModel {
    /// Creates a catalog entry, validating the traffic share.
    ///
    /// # Errors
    /// Returns [`Error::InvalidConfig`] if `traffic_share` is not a finite
    /// positive fraction.
    pub fn new(id: ModelId, spec: ModelSpec, slo: SloSpec, traffic_share: f64) -> Result<Self> {
        if !traffic_share.is_finite() || traffic_share <= 0.0 || traffic_share > 1.0 {
            return Err(Error::InvalidConfig(format!(
                "traffic share {traffic_share} for {id} must be in (0, 1]"
            )));
        }
        Ok(ServedModel {
            id,
            spec,
            slo,
            traffic_share,
        })
    }

    /// The one-entry catalog of a single-model deployment: the default
    /// identity `ModelId(0)` owning the whole request stream.
    pub fn single(spec: ModelSpec, slo: SloSpec) -> Self {
        ServedModel {
            id: ModelId(0),
            spec,
            slo,
            traffic_share: 1.0,
        }
    }

    /// A LLaMA-7B chat tenant with the paper's interactive SLO flavour
    /// (tight TTFT/TPOT). Deduplicates the ad-hoc preset + SLO pairing in
    /// benches, tests and examples.
    pub fn llama_7b_chat(id: ModelId, traffic_share: f64) -> Result<Self> {
        ServedModel::new(
            id,
            ModelSpec::llama_7b(),
            SloSpec::new(
                SimDuration::from_millis(1000),
                SimDuration::from_millis(100),
                SimDuration::from_secs(20),
            ),
            traffic_share,
        )
    }

    /// A LLaMA-13B chat tenant (interactive SLO, mid-size model).
    pub fn llama_13b_chat(id: ModelId, traffic_share: f64) -> Result<Self> {
        ServedModel::new(
            id,
            ModelSpec::llama_13b(),
            SloSpec::new(
                SimDuration::from_millis(1600),
                SimDuration::from_millis(120),
                SimDuration::from_secs(24),
            ),
            traffic_share,
        )
    }

    /// A LLaMA-30B coding tenant with the paper's relaxed long-form SLO
    /// (coding prompts are long; deadlines scale accordingly).
    pub fn llama_30b_coding(id: ModelId, traffic_share: f64) -> Result<Self> {
        ServedModel::new(
            id,
            ModelSpec::llama_30b(),
            SloSpec::new(
                SimDuration::from_millis(3200),
                SimDuration::from_millis(240),
                SimDuration::from_secs(48),
            ),
            traffic_share,
        )
    }
}

/// Validates a catalog: non-empty, distinct ids, shares summing to 1 (±1e-6).
///
/// # Errors
/// Returns [`Error::InvalidConfig`] when any of those fails.
pub fn validate_catalog(models: &[ServedModel]) -> Result<()> {
    if models.is_empty() {
        return Err(Error::InvalidConfig("empty model catalog".into()));
    }
    let mut total = 0.0;
    for (i, m) in models.iter().enumerate() {
        if models[..i].iter().any(|o| o.id == m.id) {
            return Err(Error::InvalidConfig(format!(
                "duplicate catalog entry for {}",
                m.id
            )));
        }
        total += m.traffic_share;
    }
    if (total - 1.0).abs() > 1e-6 {
        return Err(Error::InvalidConfig(format!(
            "catalog traffic shares sum to {total}, expected 1"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_owns_the_stream() {
        let m = ServedModel::single(
            ModelSpec::llama_13b(),
            SloSpec::new(
                SimDuration::from_millis(500),
                SimDuration::from_millis(50),
                SimDuration::from_secs(5),
            ),
        );
        assert_eq!(m.id, ModelId(0));
        assert_eq!(m.traffic_share, 1.0);
        assert!(validate_catalog(&[m]).is_ok());
    }

    #[test]
    fn share_must_be_a_positive_fraction() {
        for bad in [0.0, -0.5, 1.5, f64::NAN] {
            assert!(ServedModel::llama_7b_chat(ModelId(1), bad).is_err());
        }
    }

    #[test]
    fn catalog_rejects_duplicate_ids_and_bad_shares() {
        let a = ServedModel::llama_7b_chat(ModelId(1), 0.5).unwrap();
        let b = ServedModel::llama_30b_coding(ModelId(2), 0.5).unwrap();
        assert!(validate_catalog(&[a.clone(), b.clone()]).is_ok());
        assert!(validate_catalog(&[]).is_err());
        assert!(validate_catalog(&[a.clone(), a.clone()]).is_err());
        let short = ServedModel::llama_30b_coding(ModelId(2), 0.25).unwrap();
        assert!(validate_catalog(&[a, short]).is_err());
        assert!(b.spec.num_layers > 32, "presets carry distinct specs");
    }
}
