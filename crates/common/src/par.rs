//! Deterministic parallelism helpers.
//!
//! The two-level scheduler evaluates many independent candidate deployments
//! per tabu step; this module provides the small, dependency-light building
//! blocks it uses to spread that work across threads **without changing any
//! observable result**:
//!
//! * [`parallel_map`] — a chunked work-queue map over a slice whose output
//!   vector is always in input order, so reductions over it are
//!   deterministic regardless of thread scheduling;
//! * [`ShardedCache`] — a concurrent insert-only map keyed by precomputed
//!   `u64` hashes, sharded to keep lock contention off the hot path;
//! * [`resolve_threads`] — the `0 = auto, 1 = serial, N = N` convention used
//!   by every `num_threads` knob in the workspace.
//!
//! Everything here is built on `std::thread::scope` and the workspace's
//! `parking_lot` shim — no external dependencies.

use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Resolves a `num_threads` knob to a concrete worker count: `0` means one
/// worker per available CPU, any other value is taken literally.
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        requested
    }
}

/// Maps `f` over `items` using up to `num_threads` workers (`0` = auto, see
/// [`resolve_threads`]) and returns the results **in input order**.
///
/// Workers pull indices from a shared atomic counter (a chunk size of one:
/// candidate evaluations are coarse enough that queue overhead is noise), so
/// load balances across uneven item costs. With one worker — or one item —
/// this degrades to a plain serial loop with no thread spawned, which is the
/// reference path parallel callers must match bit-for-bit.
///
/// # Panics
/// Propagates a panic from `f` (via `std::thread::scope`).
pub fn parallel_map<T, R, F>(num_threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = resolve_threads(num_threads).min(items.len());
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let run = |next: &AtomicUsize| loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= items.len() {
            break;
        }
        let r = f(i, &items[i]);
        *slots[i].lock() = Some(r);
    };
    std::thread::scope(|scope| {
        // The calling thread acts as one worker, so `workers == 2` costs a
        // single spawn — the per-step overhead matters when evaluations are
        // cheap (small clusters, warm caches).
        for _ in 1..workers {
            scope.spawn(|| run(&next));
        }
        run(&next);
    });
    slots
        .into_iter()
        .map(|m| m.into_inner().expect("every slot filled by a worker"))
        .collect()
}

/// Runs `body` with a batch evaluator backed by a pool of worker threads
/// that lives for the **whole** call — unlike [`parallel_map`], which
/// spawns per invocation. An iterative search that evaluates one batch per
/// step amortizes thread startup over all steps instead of paying it per
/// step (with 100 steps and 8 workers that is 8 spawns instead of 800).
///
/// `body` receives a `run` function: `run(jobs)` evaluates the owned jobs
/// with `eval` on up to `num_threads` workers (`0` = auto, see
/// [`resolve_threads`]) and returns results **in input order**, so
/// reductions over them are deterministic regardless of thread scheduling.
/// With one worker no thread is spawned and `run` degrades to a serial
/// in-order loop — the reference path parallel callers must match
/// bit-for-bit.
///
/// Jobs are distributed one at a time through a shared queue, so uneven
/// per-job costs load-balance. A panic in `eval` is forwarded to the caller
/// when the batch's results are collected.
///
/// # Panics
/// Re-raises panics from `eval` (and propagates panics from `body`).
pub fn with_worker_pool<T, R, Out>(
    num_threads: usize,
    eval: &(dyn Fn(&T) -> R + Sync),
    body: impl FnOnce(&mut dyn FnMut(Vec<T>) -> Vec<R>) -> Out,
) -> Out
where
    T: Send,
    R: Send,
{
    let workers = resolve_threads(num_threads);
    if workers <= 1 {
        let mut run = |jobs: Vec<T>| -> Vec<R> { jobs.into_iter().map(|t| eval(&t)).collect() };
        return body(&mut run);
    }

    type Caught = Box<dyn std::any::Any + Send + 'static>;
    let (job_tx, job_rx) = std::sync::mpsc::channel::<(usize, T)>();
    let (res_tx, res_rx) = std::sync::mpsc::channel::<(usize, Result<R, Caught>)>();
    // The workspace's mpsc-backed channel shim has a single-consumer
    // receiver; sharing it behind a mutex turns it into the work queue
    // (workers take turns blocking on `recv`, releasing the lock as soon as
    // they pick up a job).
    let job_rx = Mutex::new(job_rx);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let res_tx = res_tx.clone();
            let job_rx = &job_rx;
            scope.spawn(move || loop {
                let job = job_rx.lock().recv();
                let Ok((i, t)) = job else { break };
                let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| eval(&t)));
                if res_tx.send((i, r)).is_err() {
                    break;
                }
            });
        }
        drop(res_tx);
        let mut run = |jobs: Vec<T>| -> Vec<R> {
            let n = jobs.len();
            for (i, t) in jobs.into_iter().enumerate() {
                job_tx.send((i, t)).expect("worker pool alive");
            }
            let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
            for _ in 0..n {
                let (i, r) = res_rx.recv().expect("worker pool alive");
                match r {
                    Ok(v) => slots[i] = Some(v),
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
            slots
                .into_iter()
                .map(|r| r.expect("every job answered"))
                .collect()
        };
        let out = body(&mut run);
        // Closing the job queue lets the workers exit before scope join.
        drop(job_tx);
        out
    })
}

/// A concurrent map keyed by precomputed `u64` hashes, split into
/// power-of-two shards each behind its own `RwLock`.
///
/// Designed for memoizing deterministic computations under [`parallel_map`]:
/// if two workers race on the same miss they both compute the same value and
/// the first insert wins, so every reader observes one consistent value and
/// results stay independent of thread scheduling. Keys are expected to
/// already be well-mixed hashes (e.g. `DefaultHasher` output); the low bits
/// pick the shard directly.
#[derive(Debug)]
pub struct ShardedCache<V> {
    shards: Vec<RwLock<HashMap<u64, V>>>,
    // Observability only (relaxed ordering): lookup outcomes never influence
    // cached values, so racing updates cannot perturb results — exact counts
    // may differ across thread counts, the values themselves never do.
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<V: Clone> ShardedCache<V> {
    /// Creates a cache with `num_shards` shards (rounded up to a power of
    /// two, minimum 1).
    pub fn new(num_shards: usize) -> Self {
        let n = num_shards.max(1).next_power_of_two();
        ShardedCache {
            shards: (0..n).map(|_| RwLock::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: u64) -> &RwLock<HashMap<u64, V>> {
        &self.shards[(key as usize) & (self.shards.len() - 1)]
    }

    fn lookup(&self, key: u64) -> Option<V> {
        let v = self.shard(key).read().get(&key).cloned();
        if v.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        v
    }

    /// Returns a clone of the cached value for `key`, if present.
    pub fn get(&self, key: u64) -> Option<V> {
        self.lookup(key)
    }

    /// Returns the cached value for `key`, computing and inserting it with
    /// `compute` on a miss. `compute` runs **outside** any lock, so it may
    /// run redundantly under a race; the first inserted value wins and is
    /// what every caller receives.
    pub fn get_or_insert_with<F: FnOnce() -> V>(&self, key: u64, compute: F) -> V {
        if let Some(v) = self.lookup(key) {
            return v;
        }
        let computed = compute();
        self.shard(key)
            .write()
            .entry(key)
            .or_insert(computed)
            .clone()
    }

    /// Lookups that found a cached value. Counts are approximate under
    /// concurrent races (a redundant recompute records an extra miss) but
    /// exact for serial use.
    pub fn hit_count(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that found nothing cached.
    pub fn miss_count(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Fraction of lookups answered from the cache (`0.0` before any
    /// lookup).
    pub fn hit_rate(&self) -> f64 {
        let h = self.hit_count();
        let m = self.miss_count();
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }

    /// Total number of cached entries across shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<V: Clone> Default for ShardedCache<V> {
    /// A cache with 16 shards — plenty for the scheduler's thread counts.
    fn default() -> Self {
        ShardedCache::new(16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_zero_is_at_least_one() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(1), 1);
        assert_eq!(resolve_threads(7), 7);
    }

    #[test]
    fn map_preserves_input_order() {
        let items: Vec<usize> = (0..100).collect();
        for threads in [1, 2, 8] {
            let out = parallel_map(threads, &items, |i, &x| {
                assert_eq!(i, x);
                x * 3
            });
            assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_handles_empty_and_single() {
        let empty: Vec<u32> = vec![];
        assert!(parallel_map(4, &empty, |_, &x| x).is_empty());
        assert_eq!(parallel_map(4, &[9u32], |_, &x| x + 1), vec![10]);
    }

    #[test]
    fn parallel_matches_serial_on_uneven_work() {
        let items: Vec<u64> = (0..64).collect();
        let f = |_: usize, &x: &u64| -> u64 {
            // uneven per-item cost
            (0..(x % 7) * 100).fold(x, |a, b| a.wrapping_add(b))
        };
        let serial = parallel_map(1, &items, f);
        let par = parallel_map(4, &items, f);
        assert_eq!(serial, par);
    }

    #[test]
    fn worker_pool_preserves_order_across_batches() {
        for threads in [1usize, 2, 8] {
            let eval = |x: &u64| x * 2;
            let (a, b) = with_worker_pool(threads, &eval, |run| {
                let a = run((0..50u64).collect());
                let b = run((50..60u64).rev().collect());
                (a, b)
            });
            assert_eq!(a, (0..50u64).map(|x| x * 2).collect::<Vec<_>>());
            assert_eq!(b, (50..60u64).rev().map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn worker_pool_handles_empty_batches() {
        let eval = |x: &u64| *x;
        let out = with_worker_pool(4, &eval, |run| {
            assert!(run(vec![]).is_empty());
            run(vec![7])
        });
        assert_eq!(out, vec![7]);
    }

    #[test]
    fn worker_pool_forwards_eval_panics() {
        let eval = |x: &u64| {
            assert!(*x < 5, "boom");
            *x
        };
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            with_worker_pool(2, &eval, |run| run(vec![1, 2, 9]))
        }));
        assert!(res.is_err());
    }

    #[test]
    fn cache_get_or_insert_memoizes() {
        let c: ShardedCache<u64> = ShardedCache::default();
        assert!(c.is_empty());
        assert_eq!(c.get(42), None);
        assert_eq!(c.get_or_insert_with(42, || 7), 7);
        // second compute must not replace the first value
        assert_eq!(c.get_or_insert_with(42, || 9), 7);
        assert_eq!(c.get(42), Some(7));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn cache_counts_hits_and_misses() {
        let c: ShardedCache<u64> = ShardedCache::default();
        assert_eq!(c.hit_rate(), 0.0);
        assert_eq!(c.get(1), None); // miss
        c.get_or_insert_with(1, || 10); // miss + insert
        c.get_or_insert_with(1, || 99); // hit
        assert_eq!(c.get(1), Some(10)); // hit
        assert_eq!(c.hit_count(), 2);
        assert_eq!(c.miss_count(), 2);
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cache_is_safe_under_concurrent_inserts() {
        let c: ShardedCache<u64> = ShardedCache::new(4);
        let keys: Vec<u64> = (0..256).collect();
        parallel_map(8, &keys, |_, &k| c.get_or_insert_with(k % 32, || k % 32));
        assert_eq!(c.len(), 32);
        for k in 0..32 {
            assert_eq!(c.get(k), Some(k));
        }
    }
}
