//! Small statistics helpers shared by metrics and benchmark tables.

use crate::time::SimDuration;

/// `p`-quantile of `values` by nearest-rank over a sorted copy, or `None`
/// for an empty slice. `p` is clamped to `[0, 1]`; the selected index is
/// `round((len - 1) * p)`, matching the quantile convention used throughout
/// the workspace's metric tables (e.g. `p99` of 100 evenly spaced samples is
/// the 99th larger one, not an interpolation).
pub fn percentile(values: &[SimDuration], p: f64) -> Option<SimDuration> {
    if values.is_empty() {
        return None;
    }
    let mut v = values.to_vec();
    v.sort_unstable();
    let idx = ((v.len() as f64 - 1.0) * p.clamp(0.0, 1.0)).round() as usize;
    Some(v[idx])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_none() {
        assert_eq!(percentile(&[], 0.5), None);
    }

    #[test]
    fn nearest_rank_selection() {
        let v: Vec<SimDuration> = (1..=100).map(SimDuration::from_millis).collect();
        assert_eq!(percentile(&v, 0.0), Some(SimDuration::from_millis(1)));
        assert_eq!(percentile(&v, 0.99), Some(SimDuration::from_millis(99)));
        assert_eq!(percentile(&v, 1.0), Some(SimDuration::from_millis(100)));
        // out-of-range p clamps rather than panicking
        assert_eq!(percentile(&v, -3.0), Some(SimDuration::from_millis(1)));
        assert_eq!(percentile(&v, 7.0), Some(SimDuration::from_millis(100)));
    }

    #[test]
    fn unsorted_input_is_handled() {
        let v = vec![
            SimDuration::from_millis(30),
            SimDuration::from_millis(10),
            SimDuration::from_millis(20),
        ];
        assert_eq!(percentile(&v, 0.5), Some(SimDuration::from_millis(20)));
    }
}
