//! The deployment-plan data model.
//!
//! A [`DeploymentPlan`] is the scheduler's output and the simulator/runtime's
//! input. It captures the four components of §3.1 of the paper:
//!
//! 1. **Group construction** — which GPUs form each model serving group;
//! 2. **Phase designation** — whether each group serves prefill or decode;
//! 3. **Parallel configuration** — the `(TP, PP)` layout, the per-stage GPU
//!    assignment and the (possibly non-uniform) pipeline layer partition;
//! 4. **Orchestration** — the routing matrix dispatching request flow across
//!    (prefill, decode) replica pairs.

use crate::ids::ModelId;
use crate::{Error, GpuId, ParallelConfig, Phase, Result};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

// Referenced by `#[serde(skip_serializing_if)]`; the offline serde shim
// ignores serde attributes, so the compiler cannot see that use.
#[allow(dead_code)]
fn is_default_model(m: &ModelId) -> bool {
    *m == ModelId(0)
}

/// One pipeline stage: the tensor-parallel set of GPUs executing a contiguous
/// slice of layers.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StageSpec {
    /// GPUs sharding this stage's layers (length == TP degree).
    pub gpus: Vec<GpuId>,
    /// Number of transformer layers assigned to this stage.
    pub layers: usize,
}

/// One model serving group: a model replica with a designated phase.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GroupSpec {
    /// The phase this replica serves.
    pub phase: Phase,
    /// Parallel configuration summary.
    pub parallel: ParallelConfig,
    /// Pipeline stages in execution order. `stages.len() == parallel.pp()`
    /// and each stage holds `parallel.tp()` GPUs.
    pub stages: Vec<StageSpec>,
    /// The model this replica serves. [`ModelId`]`(0)` — the default — is
    /// the single-model identity, kept implicit in serialized form so plans
    /// written before multi-model support round-trip unchanged.
    #[serde(default, skip_serializing_if = "is_default_model")]
    pub model: ModelId,
}

impl GroupSpec {
    /// Creates a group and validates its internal consistency.
    ///
    /// # Errors
    /// Returns [`Error::InvalidConfig`] if the stage shape does not match the
    /// parallel configuration, a GPU appears twice, or any stage has zero
    /// layers.
    pub fn new(phase: Phase, parallel: ParallelConfig, stages: Vec<StageSpec>) -> Result<Self> {
        if stages.len() != parallel.pp() {
            return Err(Error::InvalidConfig(format!(
                "expected {} stages, got {}",
                parallel.pp(),
                stages.len()
            )));
        }
        let mut seen = BTreeSet::new();
        for (i, st) in stages.iter().enumerate() {
            if st.gpus.len() != parallel.tp() {
                return Err(Error::InvalidConfig(format!(
                    "stage {i} has {} GPUs, expected TP={}",
                    st.gpus.len(),
                    parallel.tp()
                )));
            }
            if st.layers == 0 {
                return Err(Error::InvalidConfig(format!("stage {i} has zero layers")));
            }
            for &g in &st.gpus {
                if !seen.insert(g) {
                    return Err(Error::InvalidConfig(format!("GPU {g} appears twice")));
                }
            }
        }
        Ok(GroupSpec {
            phase,
            parallel,
            stages,
            model: ModelId(0),
        })
    }

    /// The same group serving `model` (builder style; `new` defaults to the
    /// single-model identity `ModelId(0)`).
    pub fn with_model(mut self, model: ModelId) -> Self {
        self.model = model;
        self
    }

    /// All GPUs of the group, stage by stage.
    pub fn gpus(&self) -> impl Iterator<Item = GpuId> + '_ {
        self.stages.iter().flat_map(|s| s.gpus.iter().copied())
    }

    /// Number of GPUs in the group.
    #[inline]
    pub fn num_gpus(&self) -> usize {
        self.parallel.world_size()
    }

    /// Total layers across stages.
    #[inline]
    pub fn total_layers(&self) -> usize {
        self.stages.iter().map(|s| s.layers).sum()
    }

    /// Returns a copy with the opposite phase designation (the tabu "flip"
    /// move and the core of lightweight rescheduling).
    pub fn flipped(&self) -> GroupSpec {
        GroupSpec {
            phase: self.phase.opposite(),
            ..self.clone()
        }
    }
}

/// Routing fractions between prefill and decode replicas.
///
/// `rates[i][j]` is the fraction of the total incoming request stream that is
/// prefilled by prefill replica `i` and decoded by decode replica `j`; all
/// entries are non-negative and sum to 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoutingMatrix {
    rates: Vec<Vec<f64>>,
}

impl RoutingMatrix {
    /// Builds a routing matrix, validating shape and mass.
    ///
    /// # Errors
    /// Returns [`Error::InvalidConfig`] if the matrix is empty or ragged, any
    /// entry is negative/non-finite, or the entries do not sum to 1 (±1e-6).
    pub fn new(rates: Vec<Vec<f64>>) -> Result<Self> {
        if rates.is_empty() || rates[0].is_empty() {
            return Err(Error::InvalidConfig("empty routing matrix".into()));
        }
        let cols = rates[0].len();
        let mut total = 0.0;
        for row in &rates {
            if row.len() != cols {
                return Err(Error::InvalidConfig("ragged routing matrix".into()));
            }
            for &v in row {
                if !v.is_finite() || v < -1e-12 {
                    return Err(Error::InvalidConfig(format!("bad routing rate {v}")));
                }
                total += v;
            }
        }
        if (total - 1.0).abs() > 1e-6 {
            return Err(Error::InvalidConfig(format!(
                "routing rates sum to {total}, expected 1"
            )));
        }
        Ok(RoutingMatrix { rates })
    }

    /// Uniform routing over `m` prefill and `n` decode replicas.
    ///
    /// # Panics
    /// Panics if `m` or `n` is zero.
    pub fn uniform(m: usize, n: usize) -> Self {
        assert!(
            m > 0 && n > 0,
            "uniform routing needs at least one replica per phase"
        );
        let v = 1.0 / (m * n) as f64;
        RoutingMatrix {
            rates: vec![vec![v; n]; m],
        }
    }

    /// Number of prefill replicas (rows).
    #[inline]
    pub fn num_prefill(&self) -> usize {
        self.rates.len()
    }

    /// Number of decode replicas (columns).
    #[inline]
    pub fn num_decode(&self) -> usize {
        self.rates[0].len()
    }

    /// Routing fraction for the pair `(i, j)`.
    ///
    /// # Panics
    /// Panics if `i` or `j` is out of bounds.
    #[inline]
    pub fn rate(&self, i: usize, j: usize) -> f64 {
        self.rates[i][j]
    }

    /// Total fraction handled by prefill replica `i` (the paper's `X_i`).
    pub fn prefill_share(&self, i: usize) -> f64 {
        self.rates[i].iter().sum()
    }

    /// Total fraction handled by decode replica `j`.
    pub fn decode_share(&self, j: usize) -> f64 {
        self.rates.iter().map(|r| r[j]).sum()
    }

    /// The raw matrix.
    pub fn rates(&self) -> &[Vec<f64>] {
        &self.rates
    }
}

/// Per-model orchestration inside a multi-model plan: one model's routing
/// over *its own* (prefill, decode) groups, plus its share of the aggregate
/// request stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelRouting {
    /// The model this routing belongs to.
    pub model: ModelId,
    /// Routing over the model's own replicas: row `i` / column `j` follow
    /// [`DeploymentPlan::prefill_indices_for`] /
    /// [`DeploymentPlan::decode_indices_for`] for this model.
    pub routing: RoutingMatrix,
    /// Fraction of the aggregate request stream addressed to this model
    /// (the tenant's traffic share); shares sum to 1 across the plan.
    pub share: f64,
}

/// A complete deployment plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeploymentPlan {
    /// All model serving groups (both phases).
    pub groups: Vec<GroupSpec>,
    /// Orchestration across (prefill, decode) pairs. Row/column order follows
    /// [`DeploymentPlan::prefill_indices`] / [`DeploymentPlan::decode_indices`].
    ///
    /// For a multi-model plan this is the *aggregate* matrix: cell `(i, j)`
    /// is `share_m * routing_m[i_m][j_m]` when prefill group `i` and decode
    /// group `j` both belong to model `m`, and 0 across models — a
    /// block-diagonal layout (up to group interleaving) that still sums to 1,
    /// so every consumer of the aggregate view keeps working.
    pub routing: RoutingMatrix,
    /// Per-model routing for multi-model plans. Empty — and omitted from
    /// serialized form — for single-model plans, which therefore serialize
    /// byte-identically to plans written before multi-model support.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub model_routing: Vec<ModelRouting>,
}

impl DeploymentPlan {
    /// Builds a plan, checking that routing dimensions match the phase
    /// designation and no GPU is used by two groups.
    ///
    /// # Errors
    /// Returns [`Error::InvalidConfig`] on dimension mismatch or GPU reuse,
    /// and [`Error::Infeasible`] if either phase has no replicas.
    pub fn new(groups: Vec<GroupSpec>, routing: RoutingMatrix) -> Result<Self> {
        let m = groups.iter().filter(|g| g.phase == Phase::Prefill).count();
        let n = groups.iter().filter(|g| g.phase == Phase::Decode).count();
        if m == 0 || n == 0 {
            return Err(Error::Infeasible(format!(
                "plan needs both phases, got {m} prefill / {n} decode groups"
            )));
        }
        if routing.num_prefill() != m || routing.num_decode() != n {
            return Err(Error::InvalidConfig(format!(
                "routing is {}x{}, phases are {m}x{n}",
                routing.num_prefill(),
                routing.num_decode()
            )));
        }
        let mut seen = BTreeSet::new();
        for g in &groups {
            for gpu in g.gpus() {
                if !seen.insert(gpu) {
                    return Err(Error::InvalidConfig(format!(
                        "GPU {gpu} assigned to multiple groups"
                    )));
                }
            }
        }
        Ok(DeploymentPlan {
            groups,
            routing,
            model_routing: Vec::new(),
        })
    }

    /// Builds a multi-model plan from model-tagged groups and one
    /// [`ModelRouting`] per served model. The aggregate
    /// [`DeploymentPlan::routing`] is derived block-wise
    /// (`share_m * routing_m`, zero across models).
    ///
    /// A single entry for the default model `ModelId(0)` collapses to the
    /// legacy single-model representation (empty `model_routing`), so the
    /// one-model case stays bit- and byte-identical to [`DeploymentPlan::new`].
    ///
    /// # Errors
    /// Returns [`Error::InvalidConfig`] on GPU reuse, duplicate/unknown
    /// models, mismatched per-model routing dimensions, or shares not
    /// summing to 1 (±1e-6); [`Error::Infeasible`] if any model lacks a
    /// phase.
    pub fn new_multi(groups: Vec<GroupSpec>, per_model: Vec<ModelRouting>) -> Result<Self> {
        if per_model.is_empty() {
            return Err(Error::InvalidConfig("no model routing entries".into()));
        }
        if per_model.len() == 1 && per_model[0].model == ModelId(0) {
            let entry = per_model.into_iter().next().expect("one entry");
            if (entry.share - 1.0).abs() > 1e-6 {
                return Err(Error::InvalidConfig(format!(
                    "single-model share is {}, expected 1",
                    entry.share
                )));
            }
            return DeploymentPlan::new(groups, entry.routing);
        }
        let mut share_total = 0.0;
        let mut models = BTreeSet::new();
        for mr in &per_model {
            if !models.insert(mr.model) {
                return Err(Error::InvalidConfig(format!(
                    "duplicate routing entry for {}",
                    mr.model
                )));
            }
            if !mr.share.is_finite() || mr.share < 0.0 {
                return Err(Error::InvalidConfig(format!(
                    "bad traffic share {} for {}",
                    mr.share, mr.model
                )));
            }
            share_total += mr.share;
        }
        if (share_total - 1.0).abs() > 1e-6 {
            return Err(Error::InvalidConfig(format!(
                "traffic shares sum to {share_total}, expected 1"
            )));
        }
        for g in &groups {
            if !models.contains(&g.model) {
                return Err(Error::InvalidConfig(format!(
                    "group serves {} which has no routing entry",
                    g.model
                )));
            }
        }
        // Per-model local (prefill, decode) orders within the global group
        // list, then the block-diagonal aggregate.
        let phase_indices = |phase: Phase, model: ModelId| -> Vec<usize> {
            groups
                .iter()
                .enumerate()
                .filter(|(_, g)| g.phase == phase && g.model == model)
                .map(|(i, _)| i)
                .collect()
        };
        let global_prefill: Vec<usize> = groups
            .iter()
            .enumerate()
            .filter(|(_, g)| g.phase == Phase::Prefill)
            .map(|(i, _)| i)
            .collect();
        let global_decode: Vec<usize> = groups
            .iter()
            .enumerate()
            .filter(|(_, g)| g.phase == Phase::Decode)
            .map(|(i, _)| i)
            .collect();
        let mut rates = vec![vec![0.0f64; global_decode.len().max(1)]; global_prefill.len().max(1)];
        for mr in &per_model {
            let pre = phase_indices(Phase::Prefill, mr.model);
            let dec = phase_indices(Phase::Decode, mr.model);
            if pre.is_empty() || dec.is_empty() {
                return Err(Error::Infeasible(format!(
                    "{} needs both phases, got {} prefill / {} decode groups",
                    mr.model,
                    pre.len(),
                    dec.len()
                )));
            }
            if mr.routing.num_prefill() != pre.len() || mr.routing.num_decode() != dec.len() {
                return Err(Error::InvalidConfig(format!(
                    "routing for {} is {}x{}, its phases are {}x{}",
                    mr.model,
                    mr.routing.num_prefill(),
                    mr.routing.num_decode(),
                    pre.len(),
                    dec.len()
                )));
            }
            for (li, &gi) in pre.iter().enumerate() {
                let row = global_prefill.iter().position(|&x| x == gi).expect("row");
                for (lj, &gj) in dec.iter().enumerate() {
                    let col = global_decode.iter().position(|&x| x == gj).expect("col");
                    rates[row][col] = mr.share * mr.routing.rate(li, lj);
                }
            }
        }
        let routing = RoutingMatrix::new(rates)?;
        let mut plan = DeploymentPlan::new(groups, routing)?;
        plan.model_routing = per_model;
        Ok(plan)
    }

    /// Whether this plan serves more than the single default model.
    pub fn is_multi_model(&self) -> bool {
        !self.model_routing.is_empty()
    }

    /// The served models: entries of `model_routing`, or the single-model
    /// identity `[ModelId(0)]` for a legacy plan.
    pub fn models(&self) -> Vec<ModelId> {
        if self.model_routing.is_empty() {
            vec![ModelId(0)]
        } else {
            self.model_routing.iter().map(|mr| mr.model).collect()
        }
    }

    /// The routing of `model` over its own groups: its `model_routing` entry,
    /// or the aggregate matrix for `ModelId(0)` on a legacy plan.
    pub fn routing_for(&self, model: ModelId) -> Option<&RoutingMatrix> {
        if self.model_routing.is_empty() {
            return (model == ModelId(0)).then_some(&self.routing);
        }
        self.model_routing
            .iter()
            .find(|mr| mr.model == model)
            .map(|mr| &mr.routing)
    }

    /// `model`'s share of the aggregate request stream (1 for the single
    /// model of a legacy plan, 0 for models the plan does not serve).
    pub fn share_for(&self, model: ModelId) -> f64 {
        if self.model_routing.is_empty() {
            return if model == ModelId(0) { 1.0 } else { 0.0 };
        }
        self.model_routing
            .iter()
            .find(|mr| mr.model == model)
            .map_or(0.0, |mr| mr.share)
    }

    /// Indices (into `groups`) of `model`'s prefill replicas, in the row
    /// order of [`DeploymentPlan::routing_for`]`(model)`.
    pub fn prefill_indices_for(&self, model: ModelId) -> Vec<usize> {
        self.indices_of_model(Phase::Prefill, model)
    }

    /// Indices (into `groups`) of `model`'s decode replicas, in the column
    /// order of [`DeploymentPlan::routing_for`]`(model)`.
    pub fn decode_indices_for(&self, model: ModelId) -> Vec<usize> {
        self.indices_of_model(Phase::Decode, model)
    }

    fn indices_of_model(&self, phase: Phase, model: ModelId) -> Vec<usize> {
        self.groups
            .iter()
            .enumerate()
            .filter(|(_, g)| g.phase == phase && g.model == model)
            .map(|(i, _)| i)
            .collect()
    }

    /// Indices (into `groups`) of the prefill replicas, in routing-row order.
    pub fn prefill_indices(&self) -> Vec<usize> {
        self.indices_of(Phase::Prefill)
    }

    /// Indices (into `groups`) of the decode replicas, in routing-column order.
    pub fn decode_indices(&self) -> Vec<usize> {
        self.indices_of(Phase::Decode)
    }

    fn indices_of(&self, phase: Phase) -> Vec<usize> {
        self.groups
            .iter()
            .enumerate()
            .filter(|(_, g)| g.phase == phase)
            .map(|(i, _)| i)
            .collect()
    }

    /// Total number of GPUs used by the plan.
    pub fn num_gpus(&self) -> usize {
        self.groups.iter().map(GroupSpec::num_gpus).sum()
    }

    /// The prefill-to-decode replica ratio, e.g. `(8, 4)` for Table 3's
    /// coding plan.
    pub fn phase_ratio(&self) -> (usize, usize) {
        (self.prefill_indices().len(), self.decode_indices().len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stage(ids: &[u32], layers: usize) -> StageSpec {
        StageSpec {
            gpus: ids.iter().map(|&i| GpuId(i)).collect(),
            layers,
        }
    }

    fn group(phase: Phase, tp: usize, pp: usize, first_gpu: u32, layers: usize) -> GroupSpec {
        let stages = (0..pp)
            .map(|s| {
                let base = first_gpu + (s * tp) as u32;
                stage(&(base..base + tp as u32).collect::<Vec<_>>(), layers / pp)
            })
            .collect();
        GroupSpec::new(phase, ParallelConfig::new(tp, pp).unwrap(), stages).unwrap()
    }

    #[test]
    fn group_rejects_shape_mismatch() {
        let err = GroupSpec::new(
            Phase::Prefill,
            ParallelConfig::new(2, 1).unwrap(),
            vec![stage(&[0], 32)],
        );
        assert!(err.is_err());
    }

    #[test]
    fn group_rejects_duplicate_gpu() {
        let err = GroupSpec::new(
            Phase::Prefill,
            ParallelConfig::new(2, 1).unwrap(),
            vec![stage(&[0, 0], 32)],
        );
        assert!(err.is_err());
    }

    #[test]
    fn group_rejects_zero_layers() {
        let err = GroupSpec::new(
            Phase::Prefill,
            ParallelConfig::new(1, 1).unwrap(),
            vec![stage(&[0], 0)],
        );
        assert!(err.is_err());
    }

    #[test]
    fn flipped_changes_only_phase() {
        let g = group(Phase::Prefill, 2, 2, 0, 32);
        let f = g.flipped();
        assert_eq!(f.phase, Phase::Decode);
        assert_eq!(f.stages, g.stages);
    }

    #[test]
    fn routing_must_sum_to_one() {
        assert!(RoutingMatrix::new(vec![vec![0.5, 0.4]]).is_err());
        assert!(RoutingMatrix::new(vec![vec![0.5, 0.5]]).is_ok());
    }

    #[test]
    fn uniform_routing_shares() {
        let r = RoutingMatrix::uniform(2, 4);
        assert!((r.prefill_share(0) - 0.5).abs() < 1e-12);
        assert!((r.decode_share(3) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn plan_requires_both_phases() {
        let groups = vec![group(Phase::Prefill, 1, 1, 0, 32)];
        let err = DeploymentPlan::new(groups, RoutingMatrix::uniform(1, 1));
        assert!(matches!(err, Err(Error::Infeasible(_))));
    }

    #[test]
    fn plan_detects_gpu_reuse() {
        let groups = vec![
            group(Phase::Prefill, 1, 1, 0, 32),
            group(Phase::Decode, 1, 1, 0, 32), // same GPU 0
        ];
        let err = DeploymentPlan::new(groups, RoutingMatrix::uniform(1, 1));
        assert!(err.is_err());
    }

    #[test]
    fn multi_model_plan_builds_block_diagonal_aggregate() {
        let groups = vec![
            group(Phase::Prefill, 1, 1, 0, 32).with_model(ModelId(1)),
            group(Phase::Decode, 1, 1, 1, 32).with_model(ModelId(1)),
            group(Phase::Prefill, 1, 1, 2, 48).with_model(ModelId(2)),
            group(Phase::Decode, 1, 1, 3, 48).with_model(ModelId(2)),
            group(Phase::Decode, 1, 1, 4, 48).with_model(ModelId(2)),
        ];
        let per_model = vec![
            ModelRouting {
                model: ModelId(1),
                routing: RoutingMatrix::uniform(1, 1),
                share: 0.25,
            },
            ModelRouting {
                model: ModelId(2),
                routing: RoutingMatrix::new(vec![vec![0.5, 0.5]]).unwrap(),
                share: 0.75,
            },
        ];
        let plan = DeploymentPlan::new_multi(groups, per_model).unwrap();
        assert!(plan.is_multi_model());
        assert_eq!(plan.models(), vec![ModelId(1), ModelId(2)]);
        assert_eq!(plan.prefill_indices_for(ModelId(1)), vec![0]);
        assert_eq!(plan.decode_indices_for(ModelId(2)), vec![3, 4]);
        // aggregate: rows = prefill groups [0, 2], cols = decode groups [1, 3, 4]
        assert!((plan.routing.rate(0, 0) - 0.25).abs() < 1e-12);
        assert_eq!(plan.routing.rate(0, 1), 0.0); // cross-model cell
        assert!((plan.routing.rate(1, 1) - 0.375).abs() < 1e-12);
        assert!((plan.routing.rate(1, 2) - 0.375).abs() < 1e-12);
        assert!((plan.share_for(ModelId(2)) - 0.75).abs() < 1e-12);
        assert_eq!(plan.share_for(ModelId(9)), 0.0);
        assert_eq!(
            plan.routing_for(ModelId(2)).unwrap().rate(0, 0),
            0.5,
            "per-model routing is over the model's own groups"
        );
    }

    #[test]
    fn single_default_model_collapses_to_legacy_plan() {
        let groups = vec![
            group(Phase::Prefill, 1, 1, 0, 32),
            group(Phase::Decode, 1, 1, 1, 32),
        ];
        let plan = DeploymentPlan::new_multi(
            groups.clone(),
            vec![ModelRouting {
                model: ModelId(0),
                routing: RoutingMatrix::uniform(1, 1),
                share: 1.0,
            }],
        )
        .unwrap();
        let legacy = DeploymentPlan::new(groups, RoutingMatrix::uniform(1, 1)).unwrap();
        assert_eq!(plan, legacy);
        assert!(!plan.is_multi_model());
        assert_eq!(plan.models(), vec![ModelId(0)]);
        assert_eq!(plan.routing_for(ModelId(0)).unwrap(), &plan.routing);
        assert_eq!(plan.share_for(ModelId(0)), 1.0);
    }

    #[test]
    fn multi_model_plan_requires_both_phases_per_model() {
        let groups = vec![
            group(Phase::Prefill, 1, 1, 0, 32).with_model(ModelId(1)),
            group(Phase::Decode, 1, 1, 1, 32).with_model(ModelId(1)),
            group(Phase::Prefill, 1, 1, 2, 48).with_model(ModelId(2)),
        ];
        let mk = |m: u32, p: usize, d: usize, share| ModelRouting {
            model: ModelId(m),
            routing: RoutingMatrix::uniform(p.max(1), d.max(1)),
            share,
        };
        let err = DeploymentPlan::new_multi(groups, vec![mk(1, 1, 1, 0.5), mk(2, 1, 1, 0.5)]);
        assert!(matches!(err, Err(Error::Infeasible(_))));
    }

    #[test]
    fn multi_model_plan_validates_shares() {
        let groups = vec![
            group(Phase::Prefill, 1, 1, 0, 32).with_model(ModelId(1)),
            group(Phase::Decode, 1, 1, 1, 32).with_model(ModelId(1)),
            group(Phase::Prefill, 1, 1, 2, 48).with_model(ModelId(2)),
            group(Phase::Decode, 1, 1, 3, 48).with_model(ModelId(2)),
        ];
        let mk = |share_a: f64, share_b: f64| {
            vec![
                ModelRouting {
                    model: ModelId(1),
                    routing: RoutingMatrix::uniform(1, 1),
                    share: share_a,
                },
                ModelRouting {
                    model: ModelId(2),
                    routing: RoutingMatrix::uniform(1, 1),
                    share: share_b,
                },
            ]
        };
        assert!(DeploymentPlan::new_multi(groups.clone(), mk(0.6, 0.6)).is_err());
        assert!(DeploymentPlan::new_multi(groups, mk(0.6, 0.4)).is_ok());
    }

    #[test]
    fn plan_exposes_phase_indices() {
        let groups = vec![
            group(Phase::Decode, 1, 1, 0, 32),
            group(Phase::Prefill, 1, 1, 1, 32),
            group(Phase::Decode, 1, 1, 2, 32),
        ];
        let plan = DeploymentPlan::new(groups, RoutingMatrix::uniform(1, 2)).unwrap();
        assert_eq!(plan.prefill_indices(), vec![1]);
        assert_eq!(plan.decode_indices(), vec![0, 2]);
        assert_eq!(plan.phase_ratio(), (1, 2));
        assert_eq!(plan.num_gpus(), 3);
    }
}
