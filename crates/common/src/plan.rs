//! The deployment-plan data model.
//!
//! A [`DeploymentPlan`] is the scheduler's output and the simulator/runtime's
//! input. It captures the four components of §3.1 of the paper:
//!
//! 1. **Group construction** — which GPUs form each model serving group;
//! 2. **Phase designation** — whether each group serves prefill or decode;
//! 3. **Parallel configuration** — the `(TP, PP)` layout, the per-stage GPU
//!    assignment and the (possibly non-uniform) pipeline layer partition;
//! 4. **Orchestration** — the routing matrix dispatching request flow across
//!    (prefill, decode) replica pairs.

use crate::{Error, GpuId, ParallelConfig, Phase, Result};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// One pipeline stage: the tensor-parallel set of GPUs executing a contiguous
/// slice of layers.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StageSpec {
    /// GPUs sharding this stage's layers (length == TP degree).
    pub gpus: Vec<GpuId>,
    /// Number of transformer layers assigned to this stage.
    pub layers: usize,
}

/// One model serving group: a model replica with a designated phase.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GroupSpec {
    /// The phase this replica serves.
    pub phase: Phase,
    /// Parallel configuration summary.
    pub parallel: ParallelConfig,
    /// Pipeline stages in execution order. `stages.len() == parallel.pp()`
    /// and each stage holds `parallel.tp()` GPUs.
    pub stages: Vec<StageSpec>,
}

impl GroupSpec {
    /// Creates a group and validates its internal consistency.
    ///
    /// # Errors
    /// Returns [`Error::InvalidConfig`] if the stage shape does not match the
    /// parallel configuration, a GPU appears twice, or any stage has zero
    /// layers.
    pub fn new(phase: Phase, parallel: ParallelConfig, stages: Vec<StageSpec>) -> Result<Self> {
        if stages.len() != parallel.pp() {
            return Err(Error::InvalidConfig(format!(
                "expected {} stages, got {}",
                parallel.pp(),
                stages.len()
            )));
        }
        let mut seen = BTreeSet::new();
        for (i, st) in stages.iter().enumerate() {
            if st.gpus.len() != parallel.tp() {
                return Err(Error::InvalidConfig(format!(
                    "stage {i} has {} GPUs, expected TP={}",
                    st.gpus.len(),
                    parallel.tp()
                )));
            }
            if st.layers == 0 {
                return Err(Error::InvalidConfig(format!("stage {i} has zero layers")));
            }
            for &g in &st.gpus {
                if !seen.insert(g) {
                    return Err(Error::InvalidConfig(format!("GPU {g} appears twice")));
                }
            }
        }
        Ok(GroupSpec {
            phase,
            parallel,
            stages,
        })
    }

    /// All GPUs of the group, stage by stage.
    pub fn gpus(&self) -> impl Iterator<Item = GpuId> + '_ {
        self.stages.iter().flat_map(|s| s.gpus.iter().copied())
    }

    /// Number of GPUs in the group.
    #[inline]
    pub fn num_gpus(&self) -> usize {
        self.parallel.world_size()
    }

    /// Total layers across stages.
    #[inline]
    pub fn total_layers(&self) -> usize {
        self.stages.iter().map(|s| s.layers).sum()
    }

    /// Returns a copy with the opposite phase designation (the tabu "flip"
    /// move and the core of lightweight rescheduling).
    pub fn flipped(&self) -> GroupSpec {
        GroupSpec {
            phase: self.phase.opposite(),
            ..self.clone()
        }
    }
}

/// Routing fractions between prefill and decode replicas.
///
/// `rates[i][j]` is the fraction of the total incoming request stream that is
/// prefilled by prefill replica `i` and decoded by decode replica `j`; all
/// entries are non-negative and sum to 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoutingMatrix {
    rates: Vec<Vec<f64>>,
}

impl RoutingMatrix {
    /// Builds a routing matrix, validating shape and mass.
    ///
    /// # Errors
    /// Returns [`Error::InvalidConfig`] if the matrix is empty or ragged, any
    /// entry is negative/non-finite, or the entries do not sum to 1 (±1e-6).
    pub fn new(rates: Vec<Vec<f64>>) -> Result<Self> {
        if rates.is_empty() || rates[0].is_empty() {
            return Err(Error::InvalidConfig("empty routing matrix".into()));
        }
        let cols = rates[0].len();
        let mut total = 0.0;
        for row in &rates {
            if row.len() != cols {
                return Err(Error::InvalidConfig("ragged routing matrix".into()));
            }
            for &v in row {
                if !v.is_finite() || v < -1e-12 {
                    return Err(Error::InvalidConfig(format!("bad routing rate {v}")));
                }
                total += v;
            }
        }
        if (total - 1.0).abs() > 1e-6 {
            return Err(Error::InvalidConfig(format!(
                "routing rates sum to {total}, expected 1"
            )));
        }
        Ok(RoutingMatrix { rates })
    }

    /// Uniform routing over `m` prefill and `n` decode replicas.
    ///
    /// # Panics
    /// Panics if `m` or `n` is zero.
    pub fn uniform(m: usize, n: usize) -> Self {
        assert!(
            m > 0 && n > 0,
            "uniform routing needs at least one replica per phase"
        );
        let v = 1.0 / (m * n) as f64;
        RoutingMatrix {
            rates: vec![vec![v; n]; m],
        }
    }

    /// Number of prefill replicas (rows).
    #[inline]
    pub fn num_prefill(&self) -> usize {
        self.rates.len()
    }

    /// Number of decode replicas (columns).
    #[inline]
    pub fn num_decode(&self) -> usize {
        self.rates[0].len()
    }

    /// Routing fraction for the pair `(i, j)`.
    ///
    /// # Panics
    /// Panics if `i` or `j` is out of bounds.
    #[inline]
    pub fn rate(&self, i: usize, j: usize) -> f64 {
        self.rates[i][j]
    }

    /// Total fraction handled by prefill replica `i` (the paper's `X_i`).
    pub fn prefill_share(&self, i: usize) -> f64 {
        self.rates[i].iter().sum()
    }

    /// Total fraction handled by decode replica `j`.
    pub fn decode_share(&self, j: usize) -> f64 {
        self.rates.iter().map(|r| r[j]).sum()
    }

    /// The raw matrix.
    pub fn rates(&self) -> &[Vec<f64>] {
        &self.rates
    }
}

/// A complete deployment plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeploymentPlan {
    /// All model serving groups (both phases).
    pub groups: Vec<GroupSpec>,
    /// Orchestration across (prefill, decode) pairs. Row/column order follows
    /// [`DeploymentPlan::prefill_indices`] / [`DeploymentPlan::decode_indices`].
    pub routing: RoutingMatrix,
}

impl DeploymentPlan {
    /// Builds a plan, checking that routing dimensions match the phase
    /// designation and no GPU is used by two groups.
    ///
    /// # Errors
    /// Returns [`Error::InvalidConfig`] on dimension mismatch or GPU reuse,
    /// and [`Error::Infeasible`] if either phase has no replicas.
    pub fn new(groups: Vec<GroupSpec>, routing: RoutingMatrix) -> Result<Self> {
        let m = groups.iter().filter(|g| g.phase == Phase::Prefill).count();
        let n = groups.iter().filter(|g| g.phase == Phase::Decode).count();
        if m == 0 || n == 0 {
            return Err(Error::Infeasible(format!(
                "plan needs both phases, got {m} prefill / {n} decode groups"
            )));
        }
        if routing.num_prefill() != m || routing.num_decode() != n {
            return Err(Error::InvalidConfig(format!(
                "routing is {}x{}, phases are {m}x{n}",
                routing.num_prefill(),
                routing.num_decode()
            )));
        }
        let mut seen = BTreeSet::new();
        for g in &groups {
            for gpu in g.gpus() {
                if !seen.insert(gpu) {
                    return Err(Error::InvalidConfig(format!(
                        "GPU {gpu} assigned to multiple groups"
                    )));
                }
            }
        }
        Ok(DeploymentPlan { groups, routing })
    }

    /// Indices (into `groups`) of the prefill replicas, in routing-row order.
    pub fn prefill_indices(&self) -> Vec<usize> {
        self.indices_of(Phase::Prefill)
    }

    /// Indices (into `groups`) of the decode replicas, in routing-column order.
    pub fn decode_indices(&self) -> Vec<usize> {
        self.indices_of(Phase::Decode)
    }

    fn indices_of(&self, phase: Phase) -> Vec<usize> {
        self.groups
            .iter()
            .enumerate()
            .filter(|(_, g)| g.phase == phase)
            .map(|(i, _)| i)
            .collect()
    }

    /// Total number of GPUs used by the plan.
    pub fn num_gpus(&self) -> usize {
        self.groups.iter().map(GroupSpec::num_gpus).sum()
    }

    /// The prefill-to-decode replica ratio, e.g. `(8, 4)` for Table 3's
    /// coding plan.
    pub fn phase_ratio(&self) -> (usize, usize) {
        (self.prefill_indices().len(), self.decode_indices().len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stage(ids: &[u32], layers: usize) -> StageSpec {
        StageSpec {
            gpus: ids.iter().map(|&i| GpuId(i)).collect(),
            layers,
        }
    }

    fn group(phase: Phase, tp: usize, pp: usize, first_gpu: u32, layers: usize) -> GroupSpec {
        let stages = (0..pp)
            .map(|s| {
                let base = first_gpu + (s * tp) as u32;
                stage(&(base..base + tp as u32).collect::<Vec<_>>(), layers / pp)
            })
            .collect();
        GroupSpec::new(phase, ParallelConfig::new(tp, pp).unwrap(), stages).unwrap()
    }

    #[test]
    fn group_rejects_shape_mismatch() {
        let err = GroupSpec::new(
            Phase::Prefill,
            ParallelConfig::new(2, 1).unwrap(),
            vec![stage(&[0], 32)],
        );
        assert!(err.is_err());
    }

    #[test]
    fn group_rejects_duplicate_gpu() {
        let err = GroupSpec::new(
            Phase::Prefill,
            ParallelConfig::new(2, 1).unwrap(),
            vec![stage(&[0, 0], 32)],
        );
        assert!(err.is_err());
    }

    #[test]
    fn group_rejects_zero_layers() {
        let err = GroupSpec::new(
            Phase::Prefill,
            ParallelConfig::new(1, 1).unwrap(),
            vec![stage(&[0], 0)],
        );
        assert!(err.is_err());
    }

    #[test]
    fn flipped_changes_only_phase() {
        let g = group(Phase::Prefill, 2, 2, 0, 32);
        let f = g.flipped();
        assert_eq!(f.phase, Phase::Decode);
        assert_eq!(f.stages, g.stages);
    }

    #[test]
    fn routing_must_sum_to_one() {
        assert!(RoutingMatrix::new(vec![vec![0.5, 0.4]]).is_err());
        assert!(RoutingMatrix::new(vec![vec![0.5, 0.5]]).is_ok());
    }

    #[test]
    fn uniform_routing_shares() {
        let r = RoutingMatrix::uniform(2, 4);
        assert!((r.prefill_share(0) - 0.5).abs() < 1e-12);
        assert!((r.decode_share(3) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn plan_requires_both_phases() {
        let groups = vec![group(Phase::Prefill, 1, 1, 0, 32)];
        let err = DeploymentPlan::new(groups, RoutingMatrix::uniform(1, 1));
        assert!(matches!(err, Err(Error::Infeasible(_))));
    }

    #[test]
    fn plan_detects_gpu_reuse() {
        let groups = vec![
            group(Phase::Prefill, 1, 1, 0, 32),
            group(Phase::Decode, 1, 1, 0, 32), // same GPU 0
        ];
        let err = DeploymentPlan::new(groups, RoutingMatrix::uniform(1, 1));
        assert!(err.is_err());
    }

    #[test]
    fn plan_exposes_phase_indices() {
        let groups = vec![
            group(Phase::Decode, 1, 1, 0, 32),
            group(Phase::Prefill, 1, 1, 1, 32),
            group(Phase::Decode, 1, 1, 2, 32),
        ];
        let plan = DeploymentPlan::new(groups, RoutingMatrix::uniform(1, 2)).unwrap();
        assert_eq!(plan.prefill_indices(), vec![1]);
        assert_eq!(plan.decode_indices(), vec![0, 2]);
        assert_eq!(plan.phase_ratio(), (1, 2));
        assert_eq!(plan.num_gpus(), 3);
    }
}
