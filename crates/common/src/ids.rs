//! Strongly-typed identifiers.
//!
//! Newtypes keep GPU indices, node indices, serving-group indices and request
//! ids from being confused with one another (C-NEWTYPE).

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $inner:ty) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
            Serialize, Deserialize,
        )]
        pub struct $name(pub $inner);

        impl $name {
            /// Returns the raw index value.
            ///
            /// ```
            /// # use ts_common::ids::*;
            #[doc = concat!("assert_eq!(", stringify!($name), "(3).index(), 3);")]
            /// ```
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }

        impl From<$inner> for $name {
            fn from(v: $inner) -> Self {
                $name(v)
            }
        }
    };
}

id_type!(
    /// Identifies a single physical GPU within a [`crate::plan::DeploymentPlan`]'s cluster.
    GpuId,
    u32
);
id_type!(
    /// Identifies a node (machine / cloud instance) hosting one or more GPUs.
    NodeId,
    u32
);
id_type!(
    /// Identifies a model serving group (one model replica) within a plan.
    GroupId,
    u32
);
id_type!(
    /// Identifies an inference request.
    RequestId,
    u64
);
id_type!(
    /// Identifies a served model within a multi-model deployment.
    ///
    /// `ModelId(0)` is the default identity: every pre-multi-model artifact
    /// (plans, requests, records) deserializes to it, and single-model
    /// deployments leave it implicit everywhere.
    ModelId,
    u32
);

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_are_ordered_and_hashable() {
        let a = GpuId(1);
        let b = GpuId(2);
        assert!(a < b);
        let set: HashSet<GpuId> = [a, b, a].into_iter().collect();
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn display_contains_type_and_value() {
        assert_eq!(NodeId(7).to_string(), "NodeId(7)");
        assert_eq!(RequestId(42).to_string(), "RequestId(42)");
    }

    #[test]
    fn index_round_trips() {
        assert_eq!(GroupId::from(5u32).index(), 5);
    }
}
