//! Human-readable (de)serialization of deployment plans.
//!
//! The runtime hands plans between the scheduler, operators and tools; this
//! module defines a stable line-oriented text format so plans can be saved,
//! inspected, diffed and replayed without a JSON dependency:
//!
//! ```text
//! thunderserve-plan v1
//! group prefill tp=2 pp=2
//! stage layers=20 gpus=0,1
//! stage layers=20 gpus=2,3
//! group decode tp=4 pp=1
//! stage layers=40 gpus=4,5,6,7
//! routing 1x1
//! 1
//! ```

use crate::ids::ModelId;
use crate::plan::ModelRouting;
use crate::{
    DeploymentPlan, Error, GpuId, GroupSpec, ParallelConfig, Phase, Result, RoutingMatrix,
    StageSpec,
};
use std::fmt::Write as _;

/// Magic first line of the format.
pub const HEADER: &str = "thunderserve-plan v1";

/// Renders a plan to the text format.
///
/// Single-model plans render exactly as before multi-model support: the
/// `model=<id>` group token and the trailing per-model `model … routing`
/// sections only appear on multi-model plans, so legacy plans stay
/// byte-stable and legacy files parse unchanged.
pub fn to_text(plan: &DeploymentPlan) -> String {
    let mut out = String::new();
    out.push_str(HEADER);
    out.push('\n');
    for g in &plan.groups {
        let _ = write!(
            out,
            "group {} tp={} pp={}",
            g.phase,
            g.parallel.tp(),
            g.parallel.pp()
        );
        if g.model != ModelId(0) {
            let _ = write!(out, " model={}", g.model.0);
        }
        out.push('\n');
        for st in &g.stages {
            let gpus = st
                .gpus
                .iter()
                .map(|g| g.0.to_string())
                .collect::<Vec<_>>()
                .join(",");
            let _ = writeln!(out, "stage layers={} gpus={}", st.layers, gpus);
        }
    }
    write_matrix(&mut out, "routing", &plan.routing);
    for mr in &plan.model_routing {
        let header = format!("model {} share={:.12} routing", mr.model.0, mr.share);
        write_matrix(&mut out, &header, &mr.routing);
    }
    out
}

fn write_matrix(out: &mut String, header: &str, r: &RoutingMatrix) {
    let _ = writeln!(out, "{header} {}x{}", r.num_prefill(), r.num_decode());
    for i in 0..r.num_prefill() {
        let row = (0..r.num_decode())
            .map(|j| format!("{:.12}", r.rate(i, j)))
            .collect::<Vec<_>>()
            .join(" ");
        out.push_str(&row);
        out.push('\n');
    }
}

/// Parses a plan from the text format.
///
/// # Errors
/// Returns [`Error::InvalidConfig`] describing the first malformed line, and
/// propagates the structural validation of [`DeploymentPlan::new`].
pub fn from_text(text: &str) -> Result<DeploymentPlan> {
    let mut lines = text.lines().map(str::trim).filter(|l| !l.is_empty());
    let bad = |msg: String| Error::InvalidConfig(format!("plan parse: {msg}"));

    if lines.next() != Some(HEADER) {
        return Err(bad(format!("missing header {HEADER:?}")));
    }

    let mut groups: Vec<GroupSpec> = Vec::new();
    let mut current: Option<(Phase, usize, usize, ModelId, Vec<StageSpec>)> = None;
    let mut routing: Option<RoutingMatrix> = None;
    // (model, share) whose matrix rows are currently being collected, and
    // finished per-model entries.
    let mut pending_model: Option<(ModelId, f64)> = None;
    let mut model_routing: Vec<ModelRouting> = Vec::new();

    let finish_group = |g: Option<(Phase, usize, usize, ModelId, Vec<StageSpec>)>,
                        groups: &mut Vec<GroupSpec>|
     -> Result<()> {
        if let Some((phase, tp, pp, model, stages)) = g {
            groups.push(
                GroupSpec::new(phase, ParallelConfig::new(tp, pp)?, stages)?.with_model(model),
            );
        }
        Ok(())
    };

    let mut rows_needed = 0usize;
    let mut cols = 0usize;
    let mut rows: Vec<Vec<f64>> = Vec::new();

    for line in lines {
        if rows_needed > 0 {
            let row: Vec<f64> = line
                .split_whitespace()
                .map(|v| v.parse().map_err(|_| bad(format!("bad rate {v:?}"))))
                .collect::<Result<_>>()?;
            if row.len() != cols {
                return Err(bad(format!(
                    "routing row has {} cells, want {cols}",
                    row.len()
                )));
            }
            rows.push(row);
            rows_needed -= 1;
            if rows_needed == 0 {
                let matrix = RoutingMatrix::new(std::mem::take(&mut rows))?;
                match pending_model.take() {
                    Some((model, share)) => model_routing.push(ModelRouting {
                        model,
                        routing: matrix,
                        share,
                    }),
                    None => routing = Some(matrix),
                }
            }
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("group") => {
                finish_group(current.take(), &mut groups)?;
                let phase = match parts.next() {
                    Some("prefill") => Phase::Prefill,
                    Some("decode") => Phase::Decode,
                    other => return Err(bad(format!("bad phase {other:?}"))),
                };
                let tp = parse_kv(parts.next(), "tp").map_err(bad)?;
                let pp = parse_kv(parts.next(), "pp").map_err(bad)?;
                // Optional model tag; absent on (and before) single-model
                // plans, where the default identity ModelId(0) applies.
                let model = match parts.next() {
                    Some(tok) => ModelId(
                        tok.strip_prefix("model=")
                            .and_then(|v| v.parse().ok())
                            .ok_or_else(|| bad(format!("expected model=<n>, got {tok:?}")))?,
                    ),
                    None => ModelId(0),
                };
                current = Some((phase, tp, pp, model, Vec::new()));
            }
            Some("stage") => {
                let (_, _, _, _, stages) = current
                    .as_mut()
                    .ok_or_else(|| bad("stage before any group".into()))?;
                let layers = parse_kv(parts.next(), "layers").map_err(bad)?;
                let gpus_str = parts
                    .next()
                    .and_then(|s| s.strip_prefix("gpus="))
                    .ok_or_else(|| bad("stage missing gpus=".into()))?;
                let gpus: Vec<GpuId> = gpus_str
                    .split(',')
                    .map(|v| {
                        v.parse::<u32>()
                            .map(GpuId)
                            .map_err(|_| bad(format!("bad gpu id {v:?}")))
                    })
                    .collect::<Result<_>>()?;
                stages.push(StageSpec { gpus, layers });
            }
            Some("routing") => {
                finish_group(current.take(), &mut groups)?;
                if routing.is_some() {
                    return Err(bad("duplicate aggregate routing section".into()));
                }
                (rows_needed, cols) = parse_dims(parts.next()).map_err(bad)?;
            }
            Some("model") => {
                if routing.is_none() {
                    return Err(bad("model routing before aggregate routing".into()));
                }
                let id: u32 = parts
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| bad("model missing id".into()))?;
                let share: f64 = parts
                    .next()
                    .and_then(|t| t.strip_prefix("share="))
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| bad("model missing share=".into()))?;
                if parts.next() != Some("routing") {
                    return Err(bad("model line missing routing section".into()));
                }
                pending_model = Some((ModelId(id), share));
                (rows_needed, cols) = parse_dims(parts.next()).map_err(bad)?;
            }
            other => return Err(bad(format!("unexpected token {other:?}"))),
        }
    }
    if rows_needed > 0 {
        return Err(bad("truncated routing matrix".into()));
    }
    let routing = routing.ok_or_else(|| bad("missing routing section".into()))?;
    let mut plan = DeploymentPlan::new(groups, routing)?;
    for mr in &model_routing {
        let pre = plan.prefill_indices_for(mr.model).len();
        let dec = plan.decode_indices_for(mr.model).len();
        if mr.routing.num_prefill() != pre || mr.routing.num_decode() != dec {
            return Err(bad(format!(
                "routing for {} is {}x{}, its phases are {pre}x{dec}",
                mr.model,
                mr.routing.num_prefill(),
                mr.routing.num_decode()
            )));
        }
    }
    plan.model_routing = model_routing;
    Ok(plan)
}

fn parse_dims(token: Option<&str>) -> std::result::Result<(usize, usize), String> {
    let dims = token.ok_or("routing missing dims")?;
    let (m, n) = dims
        .split_once('x')
        .ok_or_else(|| format!("bad routing dims {dims:?}"))?;
    let rows: usize = m.parse().map_err(|_| format!("bad rows {m:?}"))?;
    let cols: usize = n.parse().map_err(|_| format!("bad cols {n:?}"))?;
    if rows == 0 || cols == 0 {
        return Err("routing dims must be positive".into());
    }
    Ok((rows, cols))
}

fn parse_kv(token: Option<&str>, key: &str) -> std::result::Result<usize, String> {
    token
        .and_then(|t| t.strip_prefix(key))
        .and_then(|t| t.strip_prefix('='))
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| format!("expected {key}=<n>, got {token:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_plan() -> DeploymentPlan {
        let stage = |ids: &[u32], layers: usize| StageSpec {
            gpus: ids.iter().map(|&i| GpuId(i)).collect(),
            layers,
        };
        let groups = vec![
            GroupSpec::new(
                Phase::Prefill,
                ParallelConfig::new(2, 2).unwrap(),
                vec![stage(&[0, 1], 25), stage(&[2, 3], 15)],
            )
            .unwrap(),
            GroupSpec::new(
                Phase::Decode,
                ParallelConfig::new(4, 1).unwrap(),
                vec![stage(&[4, 5, 6, 7], 40)],
            )
            .unwrap(),
        ];
        let routing = RoutingMatrix::new(vec![vec![1.0]]).unwrap();
        DeploymentPlan::new(groups, routing).unwrap()
    }

    #[test]
    fn round_trips() {
        let plan = sample_plan();
        let text = to_text(&plan);
        let back = from_text(&text).unwrap();
        assert_eq!(plan, back);
    }

    #[test]
    fn round_trips_fractional_routing() {
        let stage = |id: u32| StageSpec {
            gpus: vec![GpuId(id)],
            layers: 40,
        };
        let g = |phase, id| GroupSpec::new(phase, ParallelConfig::SINGLE, vec![stage(id)]).unwrap();
        let plan = DeploymentPlan::new(
            vec![
                g(Phase::Prefill, 0),
                g(Phase::Decode, 1),
                g(Phase::Decode, 2),
            ],
            RoutingMatrix::new(vec![vec![0.125, 0.875]]).unwrap(),
        )
        .unwrap();
        let back = from_text(&to_text(&plan)).unwrap();
        assert_eq!(plan, back);
    }

    #[test]
    fn rejects_malformed_inputs() {
        assert!(from_text("").is_err());
        assert!(from_text("not a plan").is_err());
        let good = to_text(&sample_plan());
        // corrupt the header
        assert!(from_text(&good.replace("v1", "v9")).is_err());
        // truncate the routing matrix
        let truncated: String = good
            .lines()
            .take(good.lines().count() - 1)
            .collect::<Vec<_>>()
            .join("\n");
        assert!(from_text(&truncated).is_err());
        // bad gpu id
        assert!(from_text(&good.replace("gpus=0,1", "gpus=0,x")).is_err());
        // stage before group
        assert!(from_text(&format!("{HEADER}\nstage layers=1 gpus=0")).is_err());
    }

    #[test]
    fn text_is_stable_and_readable() {
        let text = to_text(&sample_plan());
        assert!(text.starts_with(HEADER));
        assert!(text.contains("group prefill tp=2 pp=2"));
        assert!(text.contains("stage layers=25 gpus=0,1"));
        assert!(text.contains("routing 1x1"));
    }

    /// A plan file written before multi-model support (no `model=` tokens,
    /// no per-model sections) must parse with every group on the default
    /// `ModelId(0)` — and single-model plans must keep writing that exact
    /// shape.
    #[test]
    fn legacy_fixture_parses_to_default_model() {
        let fixture = "thunderserve-plan v1\n\
            group prefill tp=2 pp=2\n\
            stage layers=25 gpus=0,1\n\
            stage layers=15 gpus=2,3\n\
            group decode tp=4 pp=1\n\
            stage layers=40 gpus=4,5,6,7\n\
            routing 1x1\n\
            1.000000000000\n";
        let plan = from_text(fixture).unwrap();
        assert!(!plan.is_multi_model());
        assert!(plan.groups.iter().all(|g| g.model == ModelId(0)));
        assert_eq!(plan.models(), vec![ModelId(0)]);
        // The legacy byte shape is also what we still write for this plan.
        assert_eq!(to_text(&plan), fixture);
    }

    fn multi_plan() -> DeploymentPlan {
        let stage = |id: u32| StageSpec {
            gpus: vec![GpuId(id)],
            layers: 40,
        };
        let g = |phase, id, model| {
            GroupSpec::new(phase, ParallelConfig::SINGLE, vec![stage(id)])
                .unwrap()
                .with_model(ModelId(model))
        };
        DeploymentPlan::new_multi(
            vec![
                g(Phase::Prefill, 0, 1),
                g(Phase::Decode, 1, 1),
                g(Phase::Prefill, 2, 2),
                g(Phase::Decode, 3, 2),
                g(Phase::Decode, 4, 2),
            ],
            vec![
                ModelRouting {
                    model: ModelId(1),
                    routing: RoutingMatrix::uniform(1, 1),
                    share: 0.25,
                },
                ModelRouting {
                    model: ModelId(2),
                    routing: RoutingMatrix::new(vec![vec![0.125, 0.875]]).unwrap(),
                    share: 0.75,
                },
            ],
        )
        .unwrap()
    }

    #[test]
    fn multi_model_plan_round_trips() {
        let plan = multi_plan();
        let text = to_text(&plan);
        assert!(text.contains("group prefill tp=1 pp=1 model=1"));
        assert!(text.contains("model 2 share=0.750000000000 routing 1x2"));
        let back = from_text(&text).unwrap();
        assert_eq!(plan.groups, back.groups);
        assert_eq!(plan.model_routing.len(), back.model_routing.len());
        for (a, b) in plan.model_routing.iter().zip(&back.model_routing) {
            assert_eq!(a.model, b.model);
            assert!((a.share - b.share).abs() < 1e-9);
            for i in 0..a.routing.num_prefill() {
                for j in 0..a.routing.num_decode() {
                    assert!((a.routing.rate(i, j) - b.routing.rate(i, j)).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn rejects_malformed_model_sections() {
        let good = to_text(&multi_plan());
        // bad model token on a group line
        assert!(from_text(&good.replace("model=1", "model=x")).is_err());
        // per-model section with wrong dimensions
        assert!(from_text(&good.replace(
            "share=0.750000000000 routing 1x2",
            "share=0.750000000000 routing 2x2\n0.5 0.5"
        ))
        .is_err());
        // per-model section before the aggregate routing
        assert!(from_text(&format!(
            "{HEADER}\ngroup prefill tp=1 pp=1\nstage layers=1 gpus=0\nmodel 1 share=1.0 routing 1x1\n1\n"
        ))
        .is_err());
    }
}
