//! Human-readable (de)serialization of deployment plans.
//!
//! The runtime hands plans between the scheduler, operators and tools; this
//! module defines a stable line-oriented text format so plans can be saved,
//! inspected, diffed and replayed without a JSON dependency:
//!
//! ```text
//! thunderserve-plan v1
//! group prefill tp=2 pp=2
//! stage layers=20 gpus=0,1
//! stage layers=20 gpus=2,3
//! group decode tp=4 pp=1
//! stage layers=40 gpus=4,5,6,7
//! routing 1x1
//! 1
//! ```

use crate::{
    DeploymentPlan, Error, GpuId, GroupSpec, ParallelConfig, Phase, Result, RoutingMatrix,
    StageSpec,
};
use std::fmt::Write as _;

/// Magic first line of the format.
pub const HEADER: &str = "thunderserve-plan v1";

/// Renders a plan to the text format.
pub fn to_text(plan: &DeploymentPlan) -> String {
    let mut out = String::new();
    out.push_str(HEADER);
    out.push('\n');
    for g in &plan.groups {
        let _ = writeln!(
            out,
            "group {} tp={} pp={}",
            g.phase,
            g.parallel.tp(),
            g.parallel.pp()
        );
        for st in &g.stages {
            let gpus = st
                .gpus
                .iter()
                .map(|g| g.0.to_string())
                .collect::<Vec<_>>()
                .join(",");
            let _ = writeln!(out, "stage layers={} gpus={}", st.layers, gpus);
        }
    }
    let r = &plan.routing;
    let _ = writeln!(out, "routing {}x{}", r.num_prefill(), r.num_decode());
    for i in 0..r.num_prefill() {
        let row = (0..r.num_decode())
            .map(|j| format!("{:.12}", r.rate(i, j)))
            .collect::<Vec<_>>()
            .join(" ");
        out.push_str(&row);
        out.push('\n');
    }
    out
}

/// Parses a plan from the text format.
///
/// # Errors
/// Returns [`Error::InvalidConfig`] describing the first malformed line, and
/// propagates the structural validation of [`DeploymentPlan::new`].
pub fn from_text(text: &str) -> Result<DeploymentPlan> {
    let mut lines = text.lines().map(str::trim).filter(|l| !l.is_empty());
    let bad = |msg: String| Error::InvalidConfig(format!("plan parse: {msg}"));

    if lines.next() != Some(HEADER) {
        return Err(bad(format!("missing header {HEADER:?}")));
    }

    let mut groups: Vec<GroupSpec> = Vec::new();
    let mut current: Option<(Phase, usize, usize, Vec<StageSpec>)> = None;
    let mut routing: Option<RoutingMatrix> = None;

    let finish_group = |g: Option<(Phase, usize, usize, Vec<StageSpec>)>,
                        groups: &mut Vec<GroupSpec>|
     -> Result<()> {
        if let Some((phase, tp, pp, stages)) = g {
            groups.push(GroupSpec::new(phase, ParallelConfig::new(tp, pp)?, stages)?);
        }
        Ok(())
    };

    let mut rows_needed = 0usize;
    let mut cols = 0usize;
    let mut rows: Vec<Vec<f64>> = Vec::new();

    for line in lines {
        if rows_needed > 0 {
            let row: Vec<f64> = line
                .split_whitespace()
                .map(|v| v.parse().map_err(|_| bad(format!("bad rate {v:?}"))))
                .collect::<Result<_>>()?;
            if row.len() != cols {
                return Err(bad(format!(
                    "routing row has {} cells, want {cols}",
                    row.len()
                )));
            }
            rows.push(row);
            rows_needed -= 1;
            if rows_needed == 0 {
                routing = Some(RoutingMatrix::new(std::mem::take(&mut rows))?);
            }
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("group") => {
                finish_group(current.take(), &mut groups)?;
                let phase = match parts.next() {
                    Some("prefill") => Phase::Prefill,
                    Some("decode") => Phase::Decode,
                    other => return Err(bad(format!("bad phase {other:?}"))),
                };
                let tp = parse_kv(parts.next(), "tp").map_err(bad)?;
                let pp = parse_kv(parts.next(), "pp").map_err(bad)?;
                current = Some((phase, tp, pp, Vec::new()));
            }
            Some("stage") => {
                let (_, _, _, stages) = current
                    .as_mut()
                    .ok_or_else(|| bad("stage before any group".into()))?;
                let layers = parse_kv(parts.next(), "layers").map_err(bad)?;
                let gpus_str = parts
                    .next()
                    .and_then(|s| s.strip_prefix("gpus="))
                    .ok_or_else(|| bad("stage missing gpus=".into()))?;
                let gpus: Vec<GpuId> = gpus_str
                    .split(',')
                    .map(|v| {
                        v.parse::<u32>()
                            .map(GpuId)
                            .map_err(|_| bad(format!("bad gpu id {v:?}")))
                    })
                    .collect::<Result<_>>()?;
                stages.push(StageSpec { gpus, layers });
            }
            Some("routing") => {
                finish_group(current.take(), &mut groups)?;
                let dims = parts
                    .next()
                    .ok_or_else(|| bad("routing missing dims".into()))?;
                let (m, n) = dims
                    .split_once('x')
                    .ok_or_else(|| bad(format!("bad routing dims {dims:?}")))?;
                rows_needed = m.parse().map_err(|_| bad(format!("bad rows {m:?}")))?;
                cols = n.parse().map_err(|_| bad(format!("bad cols {n:?}")))?;
                if rows_needed == 0 || cols == 0 {
                    return Err(bad("routing dims must be positive".into()));
                }
            }
            other => return Err(bad(format!("unexpected token {other:?}"))),
        }
    }
    if rows_needed > 0 {
        return Err(bad("truncated routing matrix".into()));
    }
    let routing = routing.ok_or_else(|| bad("missing routing section".into()))?;
    DeploymentPlan::new(groups, routing)
}

fn parse_kv(token: Option<&str>, key: &str) -> std::result::Result<usize, String> {
    token
        .and_then(|t| t.strip_prefix(key))
        .and_then(|t| t.strip_prefix('='))
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| format!("expected {key}=<n>, got {token:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_plan() -> DeploymentPlan {
        let stage = |ids: &[u32], layers: usize| StageSpec {
            gpus: ids.iter().map(|&i| GpuId(i)).collect(),
            layers,
        };
        let groups = vec![
            GroupSpec::new(
                Phase::Prefill,
                ParallelConfig::new(2, 2).unwrap(),
                vec![stage(&[0, 1], 25), stage(&[2, 3], 15)],
            )
            .unwrap(),
            GroupSpec::new(
                Phase::Decode,
                ParallelConfig::new(4, 1).unwrap(),
                vec![stage(&[4, 5, 6, 7], 40)],
            )
            .unwrap(),
        ];
        let routing = RoutingMatrix::new(vec![vec![1.0]]).unwrap();
        DeploymentPlan::new(groups, routing).unwrap()
    }

    #[test]
    fn round_trips() {
        let plan = sample_plan();
        let text = to_text(&plan);
        let back = from_text(&text).unwrap();
        assert_eq!(plan, back);
    }

    #[test]
    fn round_trips_fractional_routing() {
        let stage = |id: u32| StageSpec {
            gpus: vec![GpuId(id)],
            layers: 40,
        };
        let g = |phase, id| GroupSpec::new(phase, ParallelConfig::SINGLE, vec![stage(id)]).unwrap();
        let plan = DeploymentPlan::new(
            vec![
                g(Phase::Prefill, 0),
                g(Phase::Decode, 1),
                g(Phase::Decode, 2),
            ],
            RoutingMatrix::new(vec![vec![0.125, 0.875]]).unwrap(),
        )
        .unwrap();
        let back = from_text(&to_text(&plan)).unwrap();
        assert_eq!(plan, back);
    }

    #[test]
    fn rejects_malformed_inputs() {
        assert!(from_text("").is_err());
        assert!(from_text("not a plan").is_err());
        let good = to_text(&sample_plan());
        // corrupt the header
        assert!(from_text(&good.replace("v1", "v9")).is_err());
        // truncate the routing matrix
        let truncated: String = good
            .lines()
            .take(good.lines().count() - 1)
            .collect::<Vec<_>>()
            .join("\n");
        assert!(from_text(&truncated).is_err());
        // bad gpu id
        assert!(from_text(&good.replace("gpus=0,1", "gpus=0,x")).is_err());
        // stage before group
        assert!(from_text(&format!("{HEADER}\nstage layers=1 gpus=0")).is_err());
    }

    #[test]
    fn text_is_stable_and_readable() {
        let text = to_text(&sample_plan());
        assert!(text.starts_with(HEADER));
        assert!(text.contains("group prefill tp=2 pp=2"));
        assert!(text.contains("stage layers=25 gpus=0,1"));
        assert!(text.contains("routing 1x1"));
    }
}
