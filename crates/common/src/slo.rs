//! Service-level objectives.
//!
//! Following the paper (§2, §5.1), a request is "good" under three latency
//! criteria: time-to-first-token (TTFT), time-per-output-token (TPOT) and
//! end-to-end latency (E2E). SLO deadlines are expressed as *multiples* of a
//! reference single-device execution latency ("SLO scale"), which lets the
//! evaluation sweep stringency levels.

use crate::SimDuration;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which latency criterion an SLO refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SloKind {
    /// Time to first token: arrival → first token emitted.
    Ttft,
    /// Average time per output token during decoding.
    Tpot,
    /// End-to-end latency: arrival → last token emitted.
    E2e,
}

impl SloKind {
    /// All three criteria in TTFT, TPOT, E2E order.
    pub const ALL: [SloKind; 3] = [SloKind::Ttft, SloKind::Tpot, SloKind::E2e];
}

impl fmt::Display for SloKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SloKind::Ttft => f.write_str("TTFT"),
            SloKind::Tpot => f.write_str("TPOT"),
            SloKind::E2e => f.write_str("E2E"),
        }
    }
}

/// Absolute SLO deadlines for one workload.
///
/// ```
/// use ts_common::{SloSpec, SimDuration, SloKind};
/// let base = SloSpec::new(
///     SimDuration::from_millis(500),
///     SimDuration::from_millis(50),
///     SimDuration::from_secs(5),
/// );
/// let relaxed = base.scaled(2.0);
/// assert_eq!(relaxed.deadline(SloKind::Tpot), SimDuration::from_millis(100));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SloSpec {
    /// TTFT deadline.
    pub ttft: SimDuration,
    /// TPOT deadline (average per generated token).
    pub tpot: SimDuration,
    /// End-to-end deadline.
    pub e2e: SimDuration,
}

impl SloSpec {
    /// Creates an SLO from the three deadlines.
    pub fn new(ttft: SimDuration, tpot: SimDuration, e2e: SimDuration) -> Self {
        SloSpec { ttft, tpot, e2e }
    }

    /// The deadline for one criterion.
    #[inline]
    pub fn deadline(&self, kind: SloKind) -> SimDuration {
        match kind {
            SloKind::Ttft => self.ttft,
            SloKind::Tpot => self.tpot,
            SloKind::E2e => self.e2e,
        }
    }

    /// All three deadlines multiplied by `scale` (the paper's "SLO scale").
    ///
    /// # Panics
    /// Panics if `scale` is negative or not finite.
    pub fn scaled(&self, scale: f64) -> SloSpec {
        SloSpec {
            ttft: self.ttft.mul_f64(scale),
            tpot: self.tpot.mul_f64(scale),
            e2e: self.e2e.mul_f64(scale),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> SloSpec {
        SloSpec::new(
            SimDuration::from_millis(400),
            SimDuration::from_millis(40),
            SimDuration::from_secs(4),
        )
    }

    #[test]
    fn scaled_multiplies_all_deadlines() {
        let s = base().scaled(1.5);
        assert_eq!(s.ttft, SimDuration::from_millis(600));
        assert_eq!(s.tpot, SimDuration::from_millis(60));
        assert_eq!(s.e2e, SimDuration::from_millis(6000));
    }

    #[test]
    fn deadline_selects_kind() {
        let s = base();
        for kind in SloKind::ALL {
            assert!(!s.deadline(kind).is_zero());
        }
        assert_eq!(s.deadline(SloKind::Ttft), s.ttft);
    }

    #[test]
    fn kind_display_matches_paper() {
        assert_eq!(SloKind::Ttft.to_string(), "TTFT");
        assert_eq!(SloKind::E2e.to_string(), "E2E");
    }
}
