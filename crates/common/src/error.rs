//! Workspace-wide error type.

use std::fmt;

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by the ThunderServe stack.
///
/// The variants are deliberately coarse: each one carries a human-readable
/// message describing the exact failure, and the variant itself tells the
/// caller which subsystem rejected the operation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A configuration value was structurally invalid (zero degree, empty
    /// group, inconsistent dimensions, ...).
    InvalidConfig(String),
    /// A deployment plan referenced resources that do not exist or violated
    /// a feasibility constraint (e.g. insufficient aggregate GPU memory).
    Infeasible(String),
    /// An optimization routine failed to find a solution (e.g. an unbounded
    /// or infeasible linear program).
    SolverFailed(String),
    /// The simulator was driven with inconsistent inputs (e.g. a plan with
    /// no decode replicas while requests demand decoding).
    Simulation(String),
    /// A capacity limit was exceeded (KV-cache blocks, queue bounds, ...).
    CapacityExceeded(String),
    /// The runtime could not complete an operation (channel closed, replica
    /// missing, double shutdown, ...).
    Runtime(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidConfig(m) => write!(f, "invalid configuration: {m}"),
            Error::Infeasible(m) => write!(f, "infeasible deployment: {m}"),
            Error::SolverFailed(m) => write!(f, "solver failed: {m}"),
            Error::Simulation(m) => write!(f, "simulation error: {m}"),
            Error::CapacityExceeded(m) => write!(f, "capacity exceeded: {m}"),
            Error::Runtime(m) => write!(f, "runtime error: {m}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = Error::InvalidConfig("tp must be positive".into());
        let s = e.to_string();
        assert!(s.starts_with("invalid configuration"));
        assert!(s.contains("tp must be positive"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }

    #[test]
    fn implements_std_error() {
        let e: Box<dyn std::error::Error> = Box::new(Error::SolverFailed("lp unbounded".into()));
        assert!(e.to_string().contains("unbounded"));
    }
}
