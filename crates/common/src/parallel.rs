//! Model-parallelism configuration.

use crate::{Error, Result};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A tensor-parallel × pipeline-parallel configuration for one model replica.
///
/// Following the paper's notation, a configuration `(TP, PP)` shards every
/// layer across `TP` GPUs and splits the layer stack into `PP` pipeline
/// stages, for a total of `TP·PP` GPUs.
///
/// ```
/// use ts_common::ParallelConfig;
/// let pc = ParallelConfig::new(2, 2)?;
/// assert_eq!(pc.world_size(), 4);
/// assert_eq!(pc.to_string(), "(TP=2, PP=2)");
/// # Ok::<(), ts_common::Error>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ParallelConfig {
    tp: usize,
    pp: usize,
}

impl ParallelConfig {
    /// Creates a configuration with tensor-parallel degree `tp` and pipeline
    /// depth `pp`.
    ///
    /// # Errors
    /// Returns [`Error::InvalidConfig`] if either degree is zero.
    pub fn new(tp: usize, pp: usize) -> Result<Self> {
        if tp == 0 || pp == 0 {
            return Err(Error::InvalidConfig(format!(
                "parallel degrees must be positive, got tp={tp}, pp={pp}"
            )));
        }
        Ok(ParallelConfig { tp, pp })
    }

    /// The single-GPU configuration `(TP=1, PP=1)`.
    pub const SINGLE: ParallelConfig = ParallelConfig { tp: 1, pp: 1 };

    /// Tensor-parallel degree.
    #[inline]
    pub fn tp(&self) -> usize {
        self.tp
    }

    /// Pipeline-parallel degree (number of stages).
    #[inline]
    pub fn pp(&self) -> usize {
        self.pp
    }

    /// Total number of GPUs used by the replica.
    #[inline]
    pub fn world_size(&self) -> usize {
        self.tp * self.pp
    }
}

impl Default for ParallelConfig {
    fn default() -> Self {
        Self::SINGLE
    }
}

impl fmt::Display for ParallelConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(TP={}, PP={})", self.tp, self.pp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_zero_degrees() {
        assert!(ParallelConfig::new(0, 1).is_err());
        assert!(ParallelConfig::new(1, 0).is_err());
    }

    #[test]
    fn world_size_is_product() {
        let pc = ParallelConfig::new(4, 3).unwrap();
        assert_eq!(pc.world_size(), 12);
    }

    #[test]
    fn default_is_single() {
        assert_eq!(ParallelConfig::default(), ParallelConfig::SINGLE);
        assert_eq!(ParallelConfig::SINGLE.world_size(), 1);
    }
}
