//! # ts-common
//!
//! Shared vocabulary types for the ThunderServe serving stack.
//!
//! This crate defines the small, dependency-free data model that every other
//! crate in the workspace builds on: identifiers ([`GpuId`], [`RequestId`]),
//! simulated time ([`SimTime`], [`SimDuration`]), model descriptions
//! ([`ModelSpec`]), inference phases ([`Phase`]), parallelism configurations
//! ([`ParallelConfig`]), serving requests ([`Request`]), service-level
//! objectives ([`SloSpec`]) and the deployment-plan data model
//! ([`DeploymentPlan`]) produced by the scheduler and consumed by the
//! simulator and runtime.
//!
//! # Examples
//!
//! ```
//! use ts_common::{ModelSpec, ParallelConfig, Phase};
//!
//! let model = ModelSpec::llama_30b();
//! assert!(model.param_count() > 30_000_000_000 / 2); // ~32.5B params
//! let pc = ParallelConfig::new(2, 2).unwrap();
//! assert_eq!(pc.world_size(), 4);
//! assert_eq!(Phase::Prefill.opposite(), Phase::Decode);
//! ```

pub mod catalog;
pub mod error;
pub mod ids;
pub mod model;
pub mod par;
pub mod parallel;
pub mod phase;
pub mod plan;
pub mod plan_io;
pub mod request;
pub mod rng;
pub mod slab;
pub mod slo;
pub mod stats;
pub mod time;

pub use catalog::{validate_catalog, ServedModel};
pub use error::{Error, Result};
pub use ids::{GpuId, GroupId, ModelId, NodeId, RequestId};
pub use model::{DType, ModelSpec};
pub use par::{parallel_map, resolve_threads, with_worker_pool, ShardedCache};
pub use parallel::ParallelConfig;
pub use phase::Phase;
pub use plan::{DeploymentPlan, GroupSpec, ModelRouting, RoutingMatrix, StageSpec};
pub use request::Request;
pub use rng::{derive_seed, seeded_rng};
pub use slab::{Slab, SlabKey};
pub use slo::{SloKind, SloSpec};
pub use stats::percentile;
pub use time::{SimDuration, SimTime};
