//! Inference requests.

use crate::ids::ModelId;
use crate::{RequestId, SimTime};
use serde::{Deserialize, Serialize};

// Referenced by `#[serde(skip_serializing_if)]`; the offline serde shim
// ignores serde attributes, so the compiler cannot see that use.
#[allow(dead_code)]
fn is_default_model(m: &ModelId) -> bool {
    *m == ModelId(0)
}

/// A single serving request: a prompt of `prompt_len` tokens arriving at
/// `arrival`, for which `output_len` tokens must be generated.
///
/// The output length is carried with the request because the simulator (like
/// the paper's DistServe-derived simulator) replays workloads whose response
/// lengths are drawn up front from the workload distribution.
///
/// ```
/// use ts_common::{Request, RequestId, SimTime};
/// let r = Request::new(RequestId(1), SimTime::ZERO, 512, 16);
/// assert_eq!(r.total_tokens(), 528);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Request {
    /// Unique id.
    pub id: RequestId,
    /// Arrival instant.
    pub arrival: SimTime,
    /// Prompt (input) length in tokens. Always at least 1.
    pub prompt_len: u32,
    /// Number of tokens to generate. Always at least 1 (the first token is
    /// produced by prefill; subsequent ones by decode).
    pub output_len: u32,
    /// The model this request is addressed to. Defaults to [`ModelId`]`(0)`
    /// (the single-model identity) so requests serialized before multi-model
    /// support deserialize unchanged, and single-model requests serialize
    /// byte-identically to before.
    #[serde(default, skip_serializing_if = "is_default_model")]
    pub model: ModelId,
}

impl Request {
    /// Creates a request, clamping lengths up to 1 token each.
    pub fn new(id: RequestId, arrival: SimTime, prompt_len: u32, output_len: u32) -> Self {
        Request {
            id,
            arrival,
            prompt_len: prompt_len.max(1),
            output_len: output_len.max(1),
            model: ModelId(0),
        }
    }

    /// The same request addressed to `model` (builder style).
    pub fn with_model(mut self, model: ModelId) -> Self {
        self.model = model;
        self
    }

    /// Prompt plus generated tokens.
    #[inline]
    pub fn total_tokens(&self) -> u64 {
        self.prompt_len as u64 + self.output_len as u64
    }

    /// Number of decode *steps* this request needs after prefill (the first
    /// output token comes out of prefill itself).
    #[inline]
    pub fn decode_steps(&self) -> u32 {
        self.output_len.saturating_sub(1)
    }

    /// Context length at the final decode step.
    #[inline]
    pub fn final_context(&self) -> u64 {
        self.prompt_len as u64 + self.output_len as u64 - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_clamped_to_one() {
        let r = Request::new(RequestId(0), SimTime::ZERO, 0, 0);
        assert_eq!(r.prompt_len, 1);
        assert_eq!(r.output_len, 1);
        assert_eq!(r.decode_steps(), 0);
    }

    #[test]
    fn decode_steps_excludes_first_token() {
        let r = Request::new(RequestId(0), SimTime::ZERO, 100, 10);
        assert_eq!(r.decode_steps(), 9);
        assert_eq!(r.final_context(), 109);
    }
}
