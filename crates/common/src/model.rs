//! Transformer model descriptions.
//!
//! [`ModelSpec`] captures the architectural parameters the cost model and the
//! KV-cache manager need: layer count, hidden size, attention geometry, MLP
//! width, vocabulary size and element width. Presets are provided for the
//! LLaMA family sizes used throughout the paper (7B, 13B, 30B).

use serde::{Deserialize, Serialize};

/// Numeric element type used for weights, activations and KV cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DType {
    /// 16-bit floating point (fp16/bf16); the serving default.
    F16,
    /// 32-bit floating point.
    F32,
    /// 8-bit integer (quantized storage).
    I8,
    /// 4-bit integer (quantized storage; two elements per byte).
    I4,
}

impl DType {
    /// Storage size of one element in **bits**.
    ///
    /// ```
    /// use ts_common::DType;
    /// assert_eq!(DType::F16.bits(), 16);
    /// assert_eq!(DType::I4.bits(), 4);
    /// ```
    #[inline]
    pub const fn bits(self) -> u64 {
        match self {
            DType::F16 => 16,
            DType::F32 => 32,
            DType::I8 => 8,
            DType::I4 => 4,
        }
    }

    /// Storage size of `n` elements in bytes, rounding up to whole bytes.
    #[inline]
    pub const fn bytes_for(self, n: u64) -> u64 {
        (n * self.bits()).div_ceil(8)
    }
}

/// Architecture description of a decoder-only transformer.
///
/// All sizes are in *elements*, not bytes; use [`ModelSpec::weight_bytes`] and
/// friends for storage estimates.
///
/// ```
/// use ts_common::ModelSpec;
/// let m = ModelSpec::llama_7b();
/// assert_eq!(m.num_layers, 32);
/// // KV per token = 2 (K and V) * layers * hidden * 2 bytes
/// assert_eq!(m.kv_bytes_per_token(), 2 * 32 * 4096 * 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ModelSpec {
    /// Human-readable model name, e.g. `"llama-30b"`.
    pub name: String,
    /// Number of transformer layers.
    pub num_layers: usize,
    /// Model (embedding) dimension.
    pub hidden_size: usize,
    /// Number of attention heads.
    pub num_heads: usize,
    /// Number of KV heads (== `num_heads` unless grouped-query attention).
    pub num_kv_heads: usize,
    /// Feed-forward intermediate dimension.
    pub intermediate_size: usize,
    /// Vocabulary size.
    pub vocab_size: usize,
    /// Whether the MLP is gated (SwiGLU-style, 3 projections) like the
    /// LLaMA family, or classic 2-projection (OPT, Falcon).
    pub mlp_gated: bool,
    /// Element type of the served weights and KV cache.
    pub dtype: DType,
}

impl ModelSpec {
    /// LLaMA-7B: 32 layers, hidden 4096, 32 heads, FFN 11008.
    pub fn llama_7b() -> Self {
        Self::llama("llama-7b", 32, 4096, 32, 11008)
    }

    /// LLaMA-13B: 40 layers, hidden 5120, 40 heads, FFN 13824.
    pub fn llama_13b() -> Self {
        Self::llama("llama-13b", 40, 5120, 40, 13824)
    }

    /// LLaMA-30B: 60 layers, hidden 6656, 52 heads, FFN 17920.
    pub fn llama_30b() -> Self {
        Self::llama("llama-30b", 60, 6656, 52, 17920)
    }

    /// OPT-30B: 48 layers, hidden 7168, 56 heads, classic non-gated 4x FFN.
    pub fn opt_30b() -> Self {
        ModelSpec {
            name: "opt-30b".to_owned(),
            num_layers: 48,
            hidden_size: 7168,
            num_heads: 56,
            num_kv_heads: 56,
            intermediate_size: 28672,
            vocab_size: 50_272,
            mlp_gated: false,
            dtype: DType::F16,
        }
    }

    /// Falcon-40B: 60 layers, hidden 8192, 128 query heads but only 8 KV
    /// heads (multi-query attention) — its KV cache is 16x smaller per
    /// token than a same-width MHA model, which changes both transfer and
    /// capacity math.
    pub fn falcon_40b() -> Self {
        ModelSpec {
            name: "falcon-40b".to_owned(),
            num_layers: 60,
            num_heads: 128,
            num_kv_heads: 8,
            hidden_size: 8192,
            intermediate_size: 32768,
            vocab_size: 65_024,
            mlp_gated: false,
            dtype: DType::F16,
        }
    }

    fn llama(
        name: &str,
        num_layers: usize,
        hidden_size: usize,
        num_heads: usize,
        intermediate_size: usize,
    ) -> Self {
        ModelSpec {
            name: name.to_owned(),
            num_layers,
            hidden_size,
            num_heads,
            num_kv_heads: num_heads,
            intermediate_size,
            vocab_size: 32_000,
            mlp_gated: true,
            dtype: DType::F16,
        }
    }

    /// Dimension of a single attention head.
    #[inline]
    pub fn head_dim(&self) -> usize {
        self.hidden_size / self.num_heads
    }

    /// Approximate total parameter count.
    ///
    /// Counts per layer: QKV + output projections
    /// (`2*h*h + 2*h*kv_dim`) and a gated MLP (`3*h*ffn` for the LLaMA
    /// SwiGLU family), plus embedding and LM head (`2*vocab*h`).
    pub fn param_count(&self) -> u64 {
        let embed = 2 * (self.vocab_size as u64) * (self.hidden_size as u64);
        self.per_layer_params() * self.num_layers as u64 + embed
    }

    /// Parameters of one transformer layer (attention + MLP projections).
    fn per_layer_params(&self) -> u64 {
        let h = self.hidden_size as u64;
        let kv = (self.num_kv_heads * self.head_dim()) as u64;
        let ffn = self.intermediate_size as u64;
        let mlp = if self.mlp_gated {
            3 * h * ffn
        } else {
            2 * h * ffn
        };
        2 * h * h + 2 * h * kv + mlp
    }

    /// Bytes needed to store the full weights at the serving dtype.
    #[inline]
    pub fn weight_bytes(&self) -> u64 {
        self.dtype.bytes_for(self.param_count())
    }

    /// Bytes needed to store the weights of `layers` transformer layers
    /// (excluding embeddings), used for non-uniform pipeline partitioning.
    pub fn layer_weight_bytes(&self, layers: usize) -> u64 {
        self.dtype
            .bytes_for(self.per_layer_params() * layers as u64)
    }

    /// KV-cache bytes per token across **all** layers (both K and V).
    ///
    /// This is the `2·s·h·N_bytes`-per-token quantity of the paper's Eq. (1).
    #[inline]
    pub fn kv_bytes_per_token(&self) -> u64 {
        let kv_dim = (self.num_kv_heads * self.head_dim()) as u64;
        self.dtype.bytes_for(2 * kv_dim) * self.num_layers as u64
    }

    /// KV-cache bytes per token for a contiguous slice of `layers` layers.
    #[inline]
    pub fn kv_bytes_per_token_layers(&self, layers: usize) -> u64 {
        let kv_dim = (self.num_kv_heads * self.head_dim()) as u64;
        self.dtype.bytes_for(2 * kv_dim) * layers as u64
    }

    /// FLOPs for one forward pass over `tokens` new tokens whose attention
    /// context is `context` tokens long (per-request averages are fine; the
    /// cost model multiplies by batch composition).
    ///
    /// Uses the standard `2·P` matmul estimate per token plus the quadratic
    /// attention term `2·tokens·context·kv_dim·2` (QKᵀ and AV per layer).
    pub fn forward_flops(&self, tokens: u64, context: u64) -> u64 {
        let matmul = 2 * self.param_count() * tokens;
        let attn_per_layer = 4 * tokens * context * (self.num_kv_heads * self.head_dim()) as u64;
        matmul + attn_per_layer * self.num_layers as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_counts_are_in_expected_ballpark() {
        // Within 15% of the nominal sizes.
        let cases = [
            (ModelSpec::llama_7b(), 6.7e9),
            (ModelSpec::llama_13b(), 13.0e9),
            (ModelSpec::llama_30b(), 32.5e9),
        ];
        for (m, nominal) in cases {
            let p = m.param_count() as f64;
            assert!(
                (p / nominal - 1.0).abs() < 0.15,
                "{}: {p} vs nominal {nominal}",
                m.name
            );
        }
    }

    #[test]
    fn weight_bytes_matches_dtype() {
        let mut m = ModelSpec::llama_7b();
        let f16 = m.weight_bytes();
        m.dtype = DType::F32;
        assert_eq!(m.weight_bytes(), f16 * 2);
    }

    #[test]
    fn kv_bytes_scale_with_layers() {
        let m = ModelSpec::llama_13b();
        assert_eq!(
            m.kv_bytes_per_token(),
            m.kv_bytes_per_token_layers(m.num_layers)
        );
        assert_eq!(
            m.kv_bytes_per_token_layers(10) * 4,
            m.kv_bytes_per_token_layers(40)
        );
    }

    #[test]
    fn prefill_flops_exceed_decode_flops() {
        let m = ModelSpec::llama_7b();
        let prefill = m.forward_flops(1024, 1024);
        let decode_step = m.forward_flops(1, 1024);
        assert!(prefill > 500 * decode_step);
    }

    #[test]
    fn i4_rounds_up_to_whole_bytes() {
        assert_eq!(DType::I4.bytes_for(3), 2);
        assert_eq!(DType::I4.bytes_for(4), 2);
        assert_eq!(DType::I8.bytes_for(3), 3);
    }

    #[test]
    fn gqa_shrinks_kv_not_weights() {
        // Falcon-40B's multi-query attention: 8 of 128 KV heads.
        let f = ModelSpec::falcon_40b();
        let mut mha = f.clone();
        mha.num_kv_heads = mha.num_heads;
        assert_eq!(
            f.kv_bytes_per_token() * (f.num_heads / f.num_kv_heads) as u64,
            mha.kv_bytes_per_token()
        );
        // weights move modestly (only the K/V projections shrink)
        let ratio = f.param_count() as f64 / mha.param_count() as f64;
        assert!(ratio > 0.8 && ratio < 1.0, "ratio {ratio}");
    }

    #[test]
    fn extra_presets_are_plausible() {
        let opt = ModelSpec::opt_30b();
        assert!((opt.param_count() as f64 / 30e9 - 1.0).abs() < 0.35);
        let falcon = ModelSpec::falcon_40b();
        assert!((falcon.param_count() as f64 / 41e9 - 1.0).abs() < 0.35);
    }

    #[test]
    fn head_dim_divides_hidden() {
        for m in [
            ModelSpec::llama_7b(),
            ModelSpec::llama_13b(),
            ModelSpec::llama_30b(),
        ] {
            assert_eq!(m.head_dim() * m.num_heads, m.hidden_size);
        }
    }
}
