//! Qualitative reproductions of the paper's cross-cutting claims, asserted
//! across crate boundaries.

use thunderserve::baselines::HexGenPlanner;
use thunderserve::prelude::*;
use thunderserve::sim::colocated::ColocatedSimulation;
use thunderserve::workload::generator::generate;
use thunderserve::workload::spec;

fn slo() -> SloSpec {
    // The catalog's LLaMA-30B coding preset is the paper's long-form SLO.
    ServedModel::llama_30b_coding(ModelId(0), 1.0).unwrap().slo
}

/// §5.2/Appendix H: with adequate inter-instance bandwidth, phase splitting
/// across heterogeneous instances beats a colocated deployment of the same
/// hardware on TPOT (no prefill/decode interference).
#[test]
fn phase_splitting_removes_interference() {
    let cluster = thunderserve::cluster::presets::network_case_cluster(
        thunderserve::cluster::presets::ETH_40GBPS,
    );
    let model = ModelSpec::llama_30b();
    let workload = spec::fixed(1024, 64, 1.6);
    let reqs = generate(&workload, SimDuration::from_secs(120), 1);

    // ThunderServe-style split: A40s prefill, 3090Tis decode.
    let mut cfg = SchedulerConfig::fast();
    cfg.seed = 2;
    let plan = Scheduler::new(cfg)
        .schedule(&cluster, &model, &workload, &slo())
        .unwrap()
        .plan;
    let split = Simulation::new(&cluster, &plan, SimConfig::new(model.clone()))
        .unwrap()
        .run(&reqs)
        .unwrap();

    // Colocated on the same hardware.
    let groups = HexGenPlanner::new()
        .plan(&cluster, &model, &workload)
        .unwrap();
    let colocated = ColocatedSimulation::new(&cluster, &groups, SimConfig::new(model))
        .unwrap()
        .run(&reqs)
        .unwrap();

    let tpot_split = split.latency_percentile(SloKind::Tpot, 0.9).unwrap();
    let tpot_colo = colocated.latency_percentile(SloKind::Tpot, 0.9).unwrap();
    assert!(
        tpot_split <= tpot_colo,
        "split p90 TPOT {tpot_split} should not exceed colocated {tpot_colo}"
    );
}

/// §5.3: the scheduler routes compute-rich GPUs to prefill and
/// bandwidth-rich GPUs to decode. Tested as an aggregate: across seeds, the
/// GPUs designated decode have at least the memory bandwidth of those
/// designated prefill, and prefill GPUs have at least the compute intensity
/// of decode GPUs (conversation workload, where both phases get replicas).
#[test]
fn hardware_affinity_is_stable_across_seeds() {
    let cluster = thunderserve::cluster::presets::paper_cloud_cluster();
    let model = ModelSpec::llama_30b();
    let workload = spec::conversation(3.0);
    let mut prefill_bw = Vec::new();
    let mut decode_bw = Vec::new();
    let mut prefill_ci = Vec::new();
    let mut decode_ci = Vec::new();
    for seed in [1u64, 2, 3] {
        let mut cfg = SchedulerConfig::default();
        cfg.n_step = 80;
        cfg.seed = seed;
        let plan = Scheduler::new(cfg)
            .schedule(&cluster, &model, &workload, &slo())
            .unwrap()
            .plan;
        for g in &plan.groups {
            for gpu in g.gpus() {
                let spec = cluster.gpu(gpu).spec();
                match g.phase {
                    Phase::Prefill => {
                        prefill_bw.push(spec.mem_bandwidth);
                        prefill_ci.push(spec.compute_intensity());
                    }
                    Phase::Decode => {
                        decode_bw.push(spec.mem_bandwidth);
                        decode_ci.push(spec.compute_intensity());
                    }
                }
            }
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    assert!(!prefill_bw.is_empty() && !decode_bw.is_empty());
    assert!(
        mean(&decode_bw) >= mean(&prefill_bw) * 0.95,
        "decode GPUs should be bandwidth-rich: {:.0} vs {:.0} GB/s",
        mean(&decode_bw) / 1e9,
        mean(&prefill_bw) / 1e9
    );
    assert!(
        mean(&prefill_ci) >= mean(&decode_ci) * 0.95,
        "prefill GPUs should be compute-rich: {:.0} vs {:.0} FLOPs/byte",
        mean(&prefill_ci),
        mean(&decode_ci)
    );
}

/// §5.3: the cloud rig serves more model replicas than the A100 box at a
/// comparable budget (the paper reports up to 3x; our scheduler opens as
/// many replicas as the load calls for, so we assert a strict win).
#[test]
fn cloud_hosts_more_replicas_per_budget() {
    let cloud = thunderserve::cluster::presets::paper_cloud_cluster();
    let inhouse = thunderserve::cluster::presets::paper_inhouse_cluster();
    assert!(cloud.price_per_hour() <= inhouse.price_per_hour());

    let model = ModelSpec::llama_30b();
    let mut cfg = SchedulerConfig::fast();
    cfg.seed = 3;
    let cloud_plan = Scheduler::new(cfg)
        .schedule(&cloud, &model, &spec::coding(3.0), &slo())
        .unwrap()
        .plan;
    let inhouse_replicas = thunderserve::baselines::VllmPlanner::new()
        .plan(&inhouse, &model)
        .unwrap()
        .len();
    assert_eq!(inhouse_replicas, 4);
    assert!(
        cloud_plan.groups.len() > inhouse_replicas,
        "cloud replicas {} should exceed in-house {}",
        cloud_plan.groups.len(),
        inhouse_replicas
    );
}

/// §3.4 / Table 4: lightweight rescheduling takes a small fraction of full
/// rescheduling's time and incurs zero reload.
#[test]
fn lightweight_rescheduling_is_cheap() {
    use thunderserve::scheduler::reschedule::{full_reschedule, lightweight_reschedule};

    let cluster = thunderserve::cluster::presets::paper_cloud_cluster();
    let model = ModelSpec::llama_30b();
    let workload = spec::coding(2.0);
    let mut cfg = SchedulerConfig::default();
    cfg.n_step = 60;
    cfg.seed = 8;
    let plan = Scheduler::new(cfg.clone())
        .schedule(&cluster, &model, &workload, &slo())
        .unwrap()
        .plan;

    let light = lightweight_reschedule(&cluster, &model, &plan, &workload, &slo(), &cfg).unwrap();
    let full = full_reschedule(&cluster, &model, &workload, &slo(), &cfg).unwrap();
    assert!(light.reload_time.is_zero());
    assert!(!full.reload_time.is_zero());
    // Overall interruption: search + reload. Lightweight must win big.
    let light_total = light.search_time + light.reload_time.as_secs_f64();
    let full_total = full.search_time + full.reload_time.as_secs_f64();
    assert!(
        light_total * 5.0 < full_total,
        "lightweight {light_total:.2}s vs full {full_total:.2}s"
    );
}

/// §4: 4-bit KV compression preserves what computation sees — because both
/// phases compute on dequantized 16-bit values, downstream quality is
/// bounded by reconstruction error, which is tiny.
#[test]
fn compression_pipeline_preserves_kv() {
    use thunderserve::kvcache::codec::{KvCodec, KvWirePrecision};
    use thunderserve::kvcache::fidelity::compare;
    use thunderserve::kvcache::synthetic::generate_kv;

    let model = ModelSpec::llama_7b();
    let kv = generate_kv(&model, 32, &mut thunderserve::common::seeded_rng(1));
    let codec = KvCodec::new(model, KvWirePrecision::DEFAULT_COMPRESSED);
    let wire = codec.encode(&kv.values);
    assert!((wire.len() as f64) < 0.35 * (kv.values.len() * 2) as f64);
    let back = codec.decode(&wire).unwrap();
    let rep = compare(&kv.values, &back);
    assert!(rep.cosine > 0.98, "cosine {}", rep.cosine);
}
