//! Telemetry contract tests: tracing observes the simulation without
//! perturbing it, and what it records reconciles exactly with the metrics.
//!
//! Three properties are pinned here:
//! 1. **Bit-identity off↔on** — enabling telemetry changes no `Metrics`
//!    output, on the legacy KV path, under the flow-level fabric, under
//!    faults, and on the colocated engine.
//! 2. **Span reconciliation** — per-request landmarks derived from the
//!    event log (TTFT, E2E, KV queue wait / wire time / overhead) equal the
//!    corresponding `RequestRecord` fields exactly, and fault counters sum
//!    to the run's `RecoveryCounters`.
//! 3. **Well-formed spans** — each completed request's events are monotone
//!    in time, start with its arrival, end with its finish, and keep
//!    prefill start/end balanced and properly nested.

use thunderserve::prelude::*;
use thunderserve::sim::{ColocatedSimulation, FaultKind, FaultScript, TimedFault, TraceLog};
use thunderserve::telemetry::TraceKind;
use thunderserve::workload::{generator::generate, spec};
use ts_cluster::presets;
use ts_common::{
    GpuId, GroupSpec, ParallelConfig, Phase, Request, RoutingMatrix, SimTime, StageSpec,
};

/// 4xA40 prefill + two 2x3090Ti decode replicas (the engine fault testbed).
fn testbed() -> (ts_cluster::Cluster, DeploymentPlan, SimConfig) {
    let cluster = presets::network_case_cluster(presets::ETH_40GBPS);
    let model = ModelSpec::llama_13b();
    let group = |phase, ids: &[u32], tp: usize| {
        GroupSpec::new(
            phase,
            ParallelConfig::new(tp, 1).unwrap(),
            vec![StageSpec {
                gpus: ids.iter().map(|&i| GpuId(i)).collect(),
                layers: model.num_layers,
            }],
        )
        .unwrap()
    };
    let plan = DeploymentPlan::new(
        vec![
            group(Phase::Prefill, &[0, 1, 2, 3], 4),
            group(Phase::Decode, &[4, 5], 2),
            group(Phase::Decode, &[6, 7], 2),
        ],
        RoutingMatrix::uniform(1, 2),
    )
    .unwrap();
    (cluster, plan, SimConfig::new(model))
}

fn link_blip_script() -> FaultScript {
    let fault = |at_s: f64, kind| TimedFault {
        at: SimTime::from_secs_f64(at_s),
        kind,
    };
    FaultScript::new(
        vec![
            fault(
                10.0,
                FaultKind::LinkDown {
                    prefill: 0,
                    decode: 0,
                },
            ),
            fault(
                14.0,
                FaultKind::LinkUp {
                    prefill: 0,
                    decode: 0,
                },
            ),
        ],
        SimDuration::from_millis(100),
    )
}

fn run_traced(
    cfg: SimConfig,
    reqs: &[Request],
    script: &FaultScript,
) -> (Metrics, Option<TraceLog>) {
    let (cluster, plan, _) = testbed();
    let mut sim = Simulation::new(&cluster, &plan, cfg).unwrap();
    let m = sim.run_with_faults(reqs, script).unwrap();
    (m, sim.take_trace())
}

#[test]
fn metrics_are_bit_identical_with_tracing_on() {
    let (_, _, cfg) = testbed();
    let reqs = generate(&spec::coding(1.5), SimDuration::from_secs(40), 51);
    let none = FaultScript::none();
    let blip = link_blip_script();
    for (label, cfg, script) in [
        ("legacy", cfg.clone(), &none),
        ("fabric", cfg.clone().with_network_contention(true), &none),
        ("legacy+fault", cfg.clone(), &blip),
        (
            "fabric+fault",
            cfg.clone().with_network_contention(true),
            &blip,
        ),
    ] {
        let (off, trace_off) = run_traced(cfg.clone(), &reqs, script);
        let (on, trace_on) = run_traced(cfg.with_telemetry(true), &reqs, script);
        assert!(trace_off.is_none(), "{label}: telemetry defaults off");
        assert!(trace_on.is_some(), "{label}: telemetry requested");
        assert_eq!(off, on, "{label}: tracing must not perturb metrics");
    }
}

#[test]
fn colocated_metrics_are_bit_identical_and_traced() {
    let cluster = presets::paper_inhouse_cluster();
    let model = ModelSpec::llama_30b();
    let group = |ids: [u32; 2]| {
        GroupSpec::new(
            Phase::Prefill,
            ParallelConfig::new(2, 1).unwrap(),
            vec![StageSpec {
                gpus: ids.iter().map(|&i| GpuId(i)).collect(),
                layers: model.num_layers,
            }],
        )
        .unwrap()
    };
    let groups = vec![group([0, 1]), group([2, 3])];
    let cfg = SimConfig::new(model);
    let reqs = generate(&spec::conversation(1.0), SimDuration::from_secs(40), 52);
    let run = |cfg: SimConfig| {
        let mut sim = ColocatedSimulation::new(&cluster, &groups, cfg).unwrap();
        let m = sim.run(&reqs).unwrap();
        (m, sim.take_trace())
    };
    let (off, trace_off) = run(cfg.clone());
    let (on, trace_on) = run(cfg.with_telemetry(true));
    assert!(trace_off.is_none());
    let log = trace_on.expect("telemetry requested");
    assert_eq!(off, on, "tracing must not perturb colocated metrics");
    assert_eq!(
        log.completed_requests().len(),
        on.num_completed(),
        "every completion must be traced"
    );
    // Colocated replicas appear under their own role.
    assert!(log
        .replicas()
        .iter()
        .all(|&(role, _)| role == thunderserve::telemetry::Role::Colocated));
}

#[test]
fn spans_reconcile_exactly_with_request_records() {
    let (_, _, cfg) = testbed();
    let reqs = generate(&spec::fixed(1024, 32, 1.5), SimDuration::from_secs(40), 53);
    let blip = link_blip_script();
    for (label, cfg, script) in [
        (
            "plain",
            cfg.clone().with_telemetry(true),
            FaultScript::none(),
        ),
        (
            "fabric+fault",
            cfg.with_telemetry(true).with_network_contention(true),
            blip,
        ),
    ] {
        let (m, trace) = run_traced(cfg, &reqs, &script);
        let log = trace.expect("telemetry requested");
        assert_eq!(m.num_completed(), reqs.len(), "{label}");
        let mut retries = 0usize;
        for r in m.records() {
            let span = log
                .request_span(r.request.id)
                .unwrap_or_else(|| panic!("{label}: no span for {}", r.request.id));
            assert_eq!(span.arrived, r.request.arrival, "{label}");
            assert_eq!(span.ttft(), Some(r.ttft()), "{label}: {}", r.request.id);
            assert_eq!(span.e2e(), Some(r.e2e()), "{label}: {}", r.request.id);
            assert_eq!(
                span.kv_queue_wait(),
                r.kv_queue_wait,
                "{label}: {}",
                r.request.id
            );
            assert_eq!(
                span.kv_wire_time(),
                r.kv_wire_time,
                "{label}: {}",
                r.request.id
            );
            assert_eq!(
                span.kv_overhead(),
                r.kv_overhead(),
                "{label}: {}",
                r.request.id
            );
            assert_eq!(span.kv_done, r.kv_done_at, "{label}: {}", r.request.id);
            retries += span.kv_retries as usize;
        }
        assert_eq!(
            retries,
            m.recovery().kv_transfer_retries,
            "{label}: span retries must sum to the recovery counter"
        );
        if label == "fabric+fault" {
            assert!(retries > 0, "the link blip must force retries");
        }
    }
}

/// Gray-failure mitigation events reconcile with the metrics and nest
/// inside the request spans they concern: every `HedgeLaunched` lands
/// between its request's arrival and finish (and sums to the recovery
/// counter), every `DeadlineShed` terminates its request's span, and
/// `Quarantined`/`Readmitted` pair up per replica — while telemetry stays
/// a pure observer (bit-identical metrics off↔on) even with the whole
/// mitigation layer armed.
#[test]
fn gray_mitigation_events_nest_inside_request_spans() {
    // Two tp=2 prefill replicas so a stuck prefill has somewhere to hedge.
    let cluster = presets::network_case_cluster(presets::ETH_40GBPS);
    let model = ModelSpec::llama_13b();
    let group = |phase, ids: &[u32], tp: usize| {
        GroupSpec::new(
            phase,
            ParallelConfig::new(tp, 1).unwrap(),
            vec![StageSpec {
                gpus: ids.iter().map(|&i| GpuId(i)).collect(),
                layers: model.num_layers,
            }],
        )
        .unwrap()
    };
    let plan = DeploymentPlan::new(
        vec![
            group(Phase::Prefill, &[0, 1], 2),
            group(Phase::Prefill, &[2, 3], 2),
            group(Phase::Decode, &[4, 5], 2),
            group(Phase::Decode, &[6, 7], 2),
        ],
        RoutingMatrix::uniform(2, 2),
    )
    .unwrap();
    let cfg = SimConfig::new(model)
        .with_hedging(SimDuration::from_millis(400))
        .with_straggler_detection(2.0)
        .with_straggler_readmit_after(SimDuration::from_secs(4));
    let reqs = generate(&spec::coding(1.5), SimDuration::from_secs(60), 55);
    let fault = |at_s: f64, kind| TimedFault {
        at: SimTime::from_secs_f64(at_s),
        kind,
    };
    // Prefill 0 stalls (hedging kicks in) and decode 0 drags (quarantine
    // trips, then the heal at t=30 lets the probe readmit it).
    let script = FaultScript::new(
        vec![
            fault(5.0, FaultKind::PrefillSlow(0, 40.0)),
            fault(5.0, FaultKind::DecodeSlow(0, 6.0)),
            fault(30.0, FaultKind::DecodeSlow(0, 1.0)),
        ],
        SimDuration::from_millis(500),
    );
    let run = |cfg: SimConfig| {
        let mut sim = Simulation::new(&cluster, &plan, cfg).unwrap();
        let m = sim.run_with_faults(&reqs, &script).unwrap();
        (m, sim.take_trace())
    };
    let (off, trace_off) = run(cfg.clone());
    let (m, trace) = run(cfg.with_telemetry(true));
    assert!(trace_off.is_none());
    assert_eq!(off, m, "tracing must not perturb mitigated runs");
    let log = trace.expect("telemetry requested");

    // Hedge launches nest inside their request's span and sum to the
    // recovery counter.
    let mut hedges = 0usize;
    for r in m.records() {
        let span = log.request_span(r.request.id).expect("span exists");
        hedges += span.hedges as usize;
        let events = log.request_events(r.request.id);
        for e in &events {
            if let TraceKind::HedgeLaunched { .. } = e.kind {
                assert!(e.at >= r.request.arrival, "hedge before arrival");
                assert!(e.at <= r.finished_at, "hedge after finish");
            }
        }
    }
    assert!(
        m.recovery().hedges_launched > 0,
        "the stalled prefill must force hedges: {:?}",
        m.recovery()
    );
    assert_eq!(
        hedges,
        m.recovery().hedges_launched,
        "span hedges must sum to the recovery counter"
    );

    // Quarantine/readmission events reconcile with their counters, and no
    // replica is readmitted before it was ever quarantined.
    let mut quarantined = 0usize;
    let mut readmitted = 0usize;
    let mut out = std::collections::BTreeSet::new();
    for e in log.events() {
        match e.kind {
            TraceKind::Quarantined { role, replica } => {
                quarantined += 1;
                out.insert((role, replica));
            }
            TraceKind::Readmitted { role, replica } => {
                readmitted += 1;
                assert!(
                    out.contains(&(role, replica)),
                    "{role} replica {replica} readmitted without quarantine"
                );
            }
            _ => {}
        }
    }
    assert_eq!(quarantined, m.recovery().quarantines);
    assert_eq!(readmitted, m.recovery().readmissions);
    assert!(quarantined > 0, "the decode straggler must be quarantined");
    assert!(readmitted > 0, "the healed straggler must be readmitted");
}

/// Deadline sheds terminate the request's span: the `DeadlineShed` event is
/// the last one recorded for the request, and shed requests never produce
/// a first token.
#[test]
fn deadline_shed_terminates_the_span() {
    let (_, _, cfg) = testbed();
    let slo = SloSpec::new(
        SimDuration::from_millis(800),
        SimDuration::from_millis(80),
        SimDuration::from_secs(8),
    );
    let cfg = cfg.with_deadlines(slo, 1.0).with_telemetry(true);
    let reqs = generate(&spec::coding(1.0), SimDuration::from_secs(60), 56);
    let fault = |at_s: f64, kind| TimedFault {
        at: SimTime::from_secs_f64(at_s),
        kind,
    };
    // A pause holds arrivals past their TTFT deadline; they shed at resume.
    let script = FaultScript::new(
        vec![fault(
            20.0,
            FaultKind::Pause {
                until: SimTime::from_secs_f64(28.0),
            },
        )],
        SimDuration::ZERO,
    );
    let (m, trace) = run_traced(cfg, &reqs, &script);
    let log = trace.expect("telemetry requested");
    assert!(m.recovery().deadline_shed > 0, "{:?}", m.recovery());
    let mut shed_seen = 0usize;
    for e in log.events() {
        if let TraceKind::DeadlineShed { request } = e.kind {
            shed_seen += 1;
            let events = log.request_events(request);
            assert!(
                matches!(events.last().unwrap().kind, TraceKind::DeadlineShed { .. }),
                "shed must be the request's final event"
            );
            assert!(
                !events
                    .iter()
                    .any(|e| matches!(e.kind, TraceKind::FirstToken { .. })),
                "a shed request must not have produced tokens"
            );
        }
    }
    assert_eq!(shed_seen, m.recovery().deadline_shed);
}

#[test]
fn completed_request_spans_are_monotone_and_nested() {
    let (_, _, cfg) = testbed();
    let reqs = generate(&spec::coding(1.5), SimDuration::from_secs(40), 54);
    let (m, trace) = run_traced(cfg.with_telemetry(true), &reqs, &FaultScript::none());
    let log = trace.expect("telemetry requested");
    assert_eq!(m.num_completed(), reqs.len());
    for r in m.records() {
        let events = log.request_events(r.request.id);
        assert!(
            matches!(events.first().unwrap().kind, TraceKind::Arrived { .. }),
            "first event must be the arrival"
        );
        assert!(
            matches!(events.last().unwrap().kind, TraceKind::Finished { .. }),
            "last event must be the finish"
        );
        let mut prev = SimTime::ZERO;
        let mut open_prefills = 0i64;
        let mut first_tokens = 0usize;
        for e in &events {
            assert!(e.at >= prev, "events must be monotone in time");
            prev = e.at;
            match e.kind {
                TraceKind::PrefillStart { .. } => open_prefills += 1,
                TraceKind::PrefillEnd { .. } => {
                    open_prefills -= 1;
                    assert!(open_prefills >= 0, "prefill end without a start");
                }
                TraceKind::FirstToken { .. } => first_tokens += 1,
                TraceKind::KvDone { .. } => {
                    assert_eq!(open_prefills, 0, "KV delivered mid-prefill")
                }
                _ => {}
            }
        }
        assert_eq!(open_prefills, 0, "prefill spans must close");
        assert_eq!(first_tokens, 1, "exactly one first token per completion");
    }
}
