//! End-to-end integration tests: the whole pipeline from cluster description
//! through scheduling to simulated serving.

use thunderserve::prelude::*;
use thunderserve::workload::generator::generate;
use thunderserve::workload::spec;

fn slo() -> SloSpec {
    // The catalog's LLaMA-30B coding preset is the paper's long-form SLO.
    ServedModel::llama_30b_coding(ModelId(0), 1.0).unwrap().slo
}

#[test]
fn schedule_and_serve_on_paper_cloud() {
    let cluster = thunderserve::cluster::presets::paper_cloud_cluster();
    let model = ModelSpec::llama_30b();
    let workload = spec::coding(2.0);
    let mut cfg = SchedulerConfig::fast();
    cfg.seed = 1;
    let result = Scheduler::new(cfg)
        .schedule(&cluster, &model, &workload, &slo())
        .unwrap();

    // Plan sanity: valid phases, disjoint GPUs, full layer coverage.
    let (p, d) = result.plan.phase_ratio();
    assert!(p >= 1 && d >= 1);
    for g in &result.plan.groups {
        assert_eq!(g.total_layers(), model.num_layers);
    }

    // Serve and check conservation.
    let reqs = generate(&workload, SimDuration::from_secs(90), 2);
    let metrics = Simulation::new(&cluster, &result.plan, SimConfig::new(model))
        .unwrap()
        .run(&reqs)
        .unwrap();
    assert_eq!(metrics.num_completed() + metrics.num_dropped(), reqs.len());
    assert!(metrics.num_completed() > reqs.len() * 9 / 10);
}

#[test]
fn whole_stack_is_deterministic() {
    let cluster = thunderserve::cluster::presets::paper_cloud_cluster();
    let model = ModelSpec::llama_30b();
    let workload = spec::conversation(1.5);
    let run = || {
        let mut cfg = SchedulerConfig::fast();
        cfg.seed = 33;
        let plan = Scheduler::new(cfg)
            .schedule(&cluster, &model, &workload, &slo())
            .unwrap()
            .plan;
        let reqs = generate(&workload, SimDuration::from_secs(60), 5);
        let m = Simulation::new(&cluster, &plan, SimConfig::new(model.clone()))
            .unwrap()
            .run(&reqs)
            .unwrap();
        (plan, m)
    };
    let (p1, m1) = run();
    let (p2, m2) = run();
    assert_eq!(p1, p2, "plans must be identical for identical seeds");
    assert_eq!(m1, m2, "metrics must be identical for identical inputs");
}

#[test]
fn scheduler_respects_failed_gpus_end_to_end() {
    let mut cluster = thunderserve::cluster::presets::paper_cloud_cluster();
    cluster
        .deactivate_node(thunderserve::common::NodeId(5))
        .unwrap();
    let model = ModelSpec::llama_30b();
    let workload = spec::coding(1.5);
    let mut cfg = SchedulerConfig::fast();
    cfg.seed = 4;
    let plan = Scheduler::new(cfg)
        .schedule(&cluster, &model, &workload, &slo())
        .unwrap()
        .plan;
    assert!(plan.num_gpus() <= 28);
    for g in &plan.groups {
        for gpu in g.gpus() {
            assert!(cluster.is_active(gpu));
        }
    }
    // And the plan still serves.
    let reqs = generate(&workload, SimDuration::from_secs(45), 6);
    let m = Simulation::new(&cluster, &plan, SimConfig::new(model))
        .unwrap()
        .run(&reqs)
        .unwrap();
    assert!(m.num_completed() > 0);
}

#[test]
fn tighter_slo_never_increases_attainment() {
    let cluster = thunderserve::cluster::presets::network_case_cluster(
        thunderserve::cluster::presets::ETH_40GBPS,
    );
    let model = ModelSpec::llama_13b();
    let workload = spec::coding(1.5);
    let mut cfg = SchedulerConfig::fast();
    cfg.seed = 9;
    let base = ServedModel::llama_13b_chat(ModelId(0), 1.0).unwrap().slo;
    let plan = Scheduler::new(cfg)
        .schedule(&cluster, &model, &workload, &base)
        .unwrap()
        .plan;
    let reqs = generate(&workload, SimDuration::from_secs(60), 7);
    let m = Simulation::new(&cluster, &plan, SimConfig::new(model))
        .unwrap()
        .run(&reqs)
        .unwrap();
    let mut prev = 1.0 + 1e-12;
    for scale in [8.0, 4.0, 2.0, 1.0, 0.5] {
        let a = m.joint_attainment(&base.scaled(scale));
        assert!(a <= prev, "attainment should shrink as the SLO tightens");
        prev = a;
    }
}
