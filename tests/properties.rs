//! Invariant tests over the core data structures and algorithms.
//!
//! These were originally property-based (proptest); the offline build
//! environment only carries a placeholder proptest crate, so each property is
//! exercised as a deterministic sweep over seeded random cases instead. The
//! invariants checked are unchanged; the case generators mirror the old
//! strategies.

use rand::Rng;
use thunderserve::common::{
    derive_seed, seeded_rng, GpuId, Phase, Request, RequestId, SimDuration, SimTime,
};
use thunderserve::kvcache::quant::{decode_wire, encode_wire, quantize, QuantBits};
use thunderserve::kvcache::BlockAllocator;
use thunderserve::scheduler::candidate::{Candidate, CandidateGroup};
use thunderserve::solver::cluster_by_bandwidth;
use thunderserve::solver::routing_dp::best_stage_order;
use thunderserve::solver::simplex::{LinearProgram, Relation};
use thunderserve::solver::transport::solve_orchestration;

const CASES: u64 = 24;

/// Quantization round-trip error is bounded by half a quantization step per
/// group, for any finite input.
#[test]
fn quant_round_trip_bounded() {
    for case in 0..CASES {
        let mut rng = seeded_rng(derive_seed(0xA11CE, case));
        let len = rng.gen_range(1..300);
        let values: Vec<f32> = (0..len)
            .map(|_| rng.gen_range(-1000.0f32..1000.0))
            .collect();
        let group_size = rng.gen_range(1usize..64);
        let bits = if rng.gen_bool(0.5) {
            QuantBits::Int4
        } else {
            QuantBits::Int8
        };
        let q = quantize(&values, bits, group_size);
        let back = q.dequantize();
        assert_eq!(back.len(), values.len());
        for (chunk, rchunk) in values.chunks(group_size).zip(back.chunks(group_size)) {
            let lo = chunk.iter().cloned().fold(f32::INFINITY, f32::min);
            let hi = chunk.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let step = (hi - lo) / bits.max_code() as f32;
            for (a, b) in chunk.iter().zip(rchunk) {
                assert!(
                    (a - b).abs() <= step / 2.0 + 1e-3,
                    "err {} exceeds half-step {}",
                    (a - b).abs(),
                    step / 2.0
                );
            }
        }
    }
}

/// Wire encode/decode is the identity on quantized tensors.
#[test]
fn quant_wire_round_trip() {
    for case in 0..CASES {
        let mut rng = seeded_rng(derive_seed(0xB0B, case));
        let len = rng.gen_range(0..200);
        let values: Vec<f32> = (0..len).map(|_| rng.gen_range(-50.0f32..50.0)).collect();
        let group_size = rng.gen_range(1usize..40);
        let q = quantize(&values, QuantBits::Int4, group_size);
        let decoded = decode_wire(&encode_wire(&q)).unwrap();
        assert_eq!(q, decoded);
    }
}

/// Tabu moves preserve the GPU partition.
#[test]
fn candidate_moves_preserve_partition() {
    let cluster = thunderserve::cluster::ClusterBuilder::new()
        .node("a", thunderserve::cluster::GpuModel::A40, 4)
        .node("b", thunderserve::cluster::GpuModel::Rtx3090Ti, 4)
        .build()
        .unwrap();
    let all: Vec<GpuId> = (0..8).map(GpuId).collect();
    let base = Candidate::new(vec![
        CandidateGroup::new(all[..4].to_vec(), Phase::Prefill),
        CandidateGroup::new(all[4..].to_vec(), Phase::Decode),
    ]);
    for case in 0..CASES {
        let seed = derive_seed(0xCAFE, case);
        let mut rng = seeded_rng(seed);
        let split_ratio = 0.05 + 0.9 * (case as f64 / CASES as f64);
        assert!(base.flip(0).is_partition_of(&all));
        if let Some(c) = base.split(&cluster, 0, split_ratio, &mut rng) {
            assert!(c.is_partition_of(&all));
        }
        if let Some(c) = base.merge(0, 1, &mut rng) {
            assert!(c.is_partition_of(&all));
        }
        if let Some(c) = base.move_gpus(&cluster, 0, 1, &mut rng) {
            assert!(c.is_partition_of(&all));
            assert!(c.groups.iter().all(|g| !g.gpus.is_empty()));
        }
    }
}

/// The orchestration LP always returns a feasible solution that matches a
/// generic simplex formulation's objective.
#[test]
fn transport_matches_simplex() {
    for case in 0..CASES {
        let mut rng = seeded_rng(derive_seed(0xD00D, case));
        let m = rng.gen_range(1usize..4);
        let n = rng.gen_range(1usize..4);
        let d: Vec<Vec<f64>> = (0..m)
            .map(|_| (0..n).map(|_| rng.gen_range(0.0..1.0)).collect())
            .collect();
        let row: Vec<f64> = (0..m).map(|_| rng.gen_range(0.1..1.0)).collect();
        let col: Vec<f64> = (0..n).map(|_| rng.gen_range(0.1..1.0)).collect();
        let orch = solve_orchestration(&d, &row, &col).unwrap();

        // feasibility
        let total: f64 = orch.rates.iter().flatten().sum();
        assert!((total - orch.mass).abs() < 1e-6);
        for i in 0..m {
            assert!(orch.rates[i].iter().sum::<f64>() <= row[i] + 1e-6);
        }
        for j in 0..n {
            assert!(orch.rates.iter().map(|r| r[j]).sum::<f64>() <= col[j] + 1e-6);
        }

        // optimality vs. generic simplex
        let mut lp = LinearProgram::new(m * n);
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                c[i * n + j] = d[i][j];
            }
        }
        lp.set_objective(c);
        lp.add_constraint(vec![1.0; m * n], Relation::Eq, orch.mass);
        for i in 0..m {
            let mut a = vec![0.0; m * n];
            for j in 0..n {
                a[i * n + j] = 1.0;
            }
            lp.add_constraint(a, Relation::Le, row[i]);
        }
        for j in 0..n {
            let mut a = vec![0.0; m * n];
            for i in 0..m {
                a[i * n + j] = 1.0;
            }
            lp.add_constraint(a, Relation::Le, col[j]);
        }
        let s = lp.solve().unwrap();
        assert!((s.value - orch.value).abs() < 1e-6);
    }
}

/// The routing DP's claimed bottleneck is achieved by its own order and
/// matches brute force for small sizes.
#[test]
fn routing_dp_is_optimal() {
    for case in 0..CASES {
        let mut rng = seeded_rng(derive_seed(0xD9, case));
        let n = rng.gen_range(2usize..6);
        let mut bw = vec![vec![0.0f64; n]; n];
        for i in 0..n {
            for j in (i + 1)..n {
                let v = rng.gen_range(1.0..100.0);
                bw[i][j] = v;
                bw[j][i] = v;
            }
        }
        let dp = best_stage_order(&bw).unwrap();
        let achieved = dp
            .order
            .windows(2)
            .map(|w| bw[w[0]][w[1]])
            .fold(f64::INFINITY, f64::min);
        assert_eq!(achieved, dp.bottleneck);

        fn perms(items: &mut Vec<usize>, k: usize, best: &mut f64, bw: &[Vec<f64>]) {
            if k == items.len() {
                let b = items
                    .windows(2)
                    .map(|w| bw[w[0]][w[1]])
                    .fold(f64::INFINITY, f64::min);
                *best = best.max(b);
                return;
            }
            for i in k..items.len() {
                items.swap(k, i);
                perms(items, k + 1, best, bw);
                items.swap(k, i);
            }
        }
        let mut brute = f64::NEG_INFINITY;
        perms(&mut (0..n).collect(), 0, &mut brute, &bw);
        assert_eq!(dp.bottleneck, brute);
    }
}

/// Clustering always yields a partition with exactly k groups.
#[test]
fn clustering_is_partition() {
    for case in 0..CASES {
        let mut rng = seeded_rng(derive_seed(0xC105, case));
        let n = rng.gen_range(2usize..12);
        let k_frac = rng.gen_range(0.01f64..1.0);
        let mut bw = vec![vec![0.0f64; n]; n];
        for i in 0..n {
            for j in (i + 1)..n {
                let v = rng.gen_range(1.0..100.0);
                bw[i][j] = v;
                bw[j][i] = v;
            }
            bw[i][i] = f64::INFINITY;
        }
        let k = ((n as f64 * k_frac).ceil() as usize).clamp(1, n);
        let groups = cluster_by_bandwidth(&bw, k).unwrap();
        assert_eq!(groups.len(), k);
        let mut all: Vec<usize> = groups.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..n).collect::<Vec<_>>());
    }
}

/// Block allocator invariants hold under arbitrary admit/append/release
/// sequences.
#[test]
fn block_allocator_invariants() {
    for case in 0..CASES {
        let mut rng = seeded_rng(derive_seed(0xB10C, case));
        let n_ops = rng.gen_range(1usize..120);
        let mut alloc = BlockAllocator::new(32, 8);
        let total = alloc.total_blocks();
        for _ in 0..n_ops {
            let op: u8 = rng.gen_range(0..3);
            let id = RequestId(rng.gen_range(0u64..8));
            let tokens = rng.gen_range(1usize..40);
            match op {
                0 => {
                    let _ = alloc.admit(id, tokens);
                }
                1 => {
                    let _ = alloc.append_token(id);
                }
                _ => {
                    let _ = alloc.release(id);
                }
            }
            assert_eq!(alloc.total_blocks(), total);
            assert_eq!(alloc.used_blocks() + alloc.free_blocks(), total);
            let occ = alloc.occupancy();
            assert!((0.0..=1.0 + 1e-9).contains(&occ));
        }
    }
}

/// The simulator conserves requests for arbitrary small workloads.
#[test]
fn simulator_conserves_requests() {
    let cluster = thunderserve::cluster::presets::network_case_cluster(
        thunderserve::cluster::presets::ETH_40GBPS,
    );
    let model = thunderserve::common::ModelSpec::llama_13b();
    let plan = {
        use thunderserve::common::{
            DeploymentPlan, GroupSpec, ParallelConfig, RoutingMatrix, StageSpec,
        };
        let group = |phase, ids: [u32; 4]| {
            GroupSpec::new(
                phase,
                ParallelConfig::new(2, 2).unwrap(),
                vec![
                    StageSpec {
                        gpus: vec![GpuId(ids[0]), GpuId(ids[1])],
                        layers: 20,
                    },
                    StageSpec {
                        gpus: vec![GpuId(ids[2]), GpuId(ids[3])],
                        layers: 20,
                    },
                ],
            )
            .unwrap()
        };
        DeploymentPlan::new(
            vec![
                group(Phase::Prefill, [0, 1, 2, 3]),
                group(Phase::Decode, [4, 5, 6, 7]),
            ],
            RoutingMatrix::uniform(1, 1),
        )
        .unwrap()
    };
    for case in 0..CASES {
        let mut rng = seeded_rng(derive_seed(0x5E4F, case));
        let n_reqs = rng.gen_range(1usize..40);
        let reqs: Vec<Request> = (0..n_reqs)
            .map(|i| {
                Request::new(
                    RequestId(i as u64),
                    SimTime::from_secs_f64(rng.gen_range(0.0..30.0)),
                    rng.gen_range(1..3000),
                    rng.gen_range(1..200),
                )
            })
            .collect();
        let mut sorted = reqs;
        sorted.sort_by_key(|r| r.arrival);
        let metrics = thunderserve::sim::engine::Simulation::new(
            &cluster,
            &plan,
            thunderserve::sim::config::SimConfig::new(model.clone()),
        )
        .unwrap()
        .run(&sorted)
        .unwrap();
        assert_eq!(
            metrics.num_completed() + metrics.num_dropped(),
            sorted.len()
        );
        for r in metrics.records() {
            assert!(r.finished_at >= r.first_token_at);
            assert!(r.first_token_at >= r.request.arrival);
        }
    }
}

/// The colocated simulator conserves requests too — including under
/// mid-flight faults, where `completed + dropped + rejected == submitted`
/// must hold whether lost work is recovered or shed. (Both engines share
/// the execution core, but each topology drains lost work differently;
/// this sweeps the colocated paths.)
#[test]
fn colocated_simulator_conserves_requests() {
    use thunderserve::sim::colocated::ColocatedSimulation;
    use thunderserve::sim::fault::{FaultKind, FaultScript, TimedFault};
    let cluster = thunderserve::cluster::presets::paper_inhouse_cluster();
    let model = thunderserve::common::ModelSpec::llama_30b();
    let groups = {
        use thunderserve::common::{GroupSpec, ParallelConfig, StageSpec};
        let g = |ids: [u32; 2]| {
            GroupSpec::new(
                Phase::Prefill,
                ParallelConfig::new(2, 1).unwrap(),
                vec![StageSpec {
                    gpus: ids.iter().map(|&i| GpuId(i)).collect(),
                    layers: model.num_layers,
                }],
            )
            .unwrap()
        };
        vec![g([0, 1]), g([2, 3])]
    };
    for case in 0..CASES {
        let mut rng = seeded_rng(derive_seed(0xC010, case));
        let n_reqs = rng.gen_range(1usize..40);
        let mut reqs: Vec<Request> = (0..n_reqs)
            .map(|i| {
                Request::new(
                    RequestId(i as u64),
                    SimTime::from_secs_f64(rng.gen_range(0.0..30.0)),
                    rng.gen_range(1..3000),
                    rng.gen_range(1..200),
                )
            })
            .collect();
        reqs.sort_by_key(|r| r.arrival);
        // One arm per case: no faults, a kill, a kill+revive blip, or a
        // kill without recovery — all mid-flight of the arrival window.
        let script = match case % 4 {
            0 => FaultScript::none(),
            1 => FaultScript::new(
                vec![TimedFault {
                    at: SimTime::from_secs_f64(rng.gen_range(1.0..25.0)),
                    kind: FaultKind::DecodeDown(0),
                }],
                SimDuration::from_millis(rng.gen_range(50..2000)),
            ),
            2 => {
                let down = rng.gen_range(1.0..15.0);
                FaultScript::new(
                    vec![
                        TimedFault {
                            at: SimTime::from_secs_f64(down),
                            kind: FaultKind::PrefillDown(1),
                        },
                        TimedFault {
                            at: SimTime::from_secs_f64(down + rng.gen_range(1.0..10.0)),
                            kind: FaultKind::PrefillUp(1),
                        },
                    ],
                    SimDuration::from_millis(rng.gen_range(50..2000)),
                )
            }
            _ => FaultScript::new(
                vec![TimedFault {
                    at: SimTime::from_secs_f64(rng.gen_range(1.0..25.0)),
                    kind: FaultKind::DecodeDown(1),
                }],
                SimDuration::from_millis(rng.gen_range(50..2000)),
            )
            .without_recovery(),
        };
        let metrics = ColocatedSimulation::new(
            &cluster,
            &groups,
            thunderserve::sim::config::SimConfig::new(model.clone()),
        )
        .unwrap()
        .run_with_faults(&reqs, &script)
        .unwrap();
        assert_eq!(
            metrics.num_completed() + metrics.num_dropped() + metrics.num_rejected(),
            reqs.len(),
            "case {case}: conservation violated ({:?})",
            metrics.recovery()
        );
        for r in metrics.records() {
            assert!(r.finished_at >= r.first_token_at);
            assert!(r.first_token_at >= r.request.arrival);
        }
    }
}

/// Gray failures never break request conservation: under stragglers, flaky
/// heartbeats, degraded links and exhausted retry budgets — with hedging,
/// quarantine and deadline shedding all armed — every submitted request is
/// exactly one of completed, dropped or rejected, and identical runs are
/// bit-identical.
#[test]
fn gray_failures_conserve_requests() {
    use thunderserve::sim::config::SimConfig;
    use thunderserve::sim::engine::Simulation;
    use thunderserve::sim::fault::{FaultKind, FaultScript, TimedFault};
    let cluster = thunderserve::cluster::presets::network_case_cluster(
        thunderserve::cluster::presets::ETH_40GBPS,
    );
    let model = thunderserve::common::ModelSpec::llama_13b();
    let plan = {
        use thunderserve::common::{
            DeploymentPlan, GroupSpec, ParallelConfig, RoutingMatrix, StageSpec,
        };
        let g = |phase, ids: &[u32], tp: usize| {
            GroupSpec::new(
                phase,
                ParallelConfig::new(tp, 1).unwrap(),
                vec![StageSpec {
                    gpus: ids.iter().map(|&i| GpuId(i)).collect(),
                    layers: model.num_layers,
                }],
            )
            .unwrap()
        };
        DeploymentPlan::new(
            vec![
                g(Phase::Prefill, &[0, 1, 2, 3], 4),
                g(Phase::Decode, &[4, 5], 2),
                g(Phase::Decode, &[6, 7], 2),
            ],
            RoutingMatrix::uniform(1, 2),
        )
        .unwrap()
    };
    for case in 0..CASES {
        let mut rng = seeded_rng(derive_seed(0x6E47, case));
        let n_reqs = rng.gen_range(1usize..40);
        let mut reqs: Vec<Request> = (0..n_reqs)
            .map(|i| {
                Request::new(
                    RequestId(i as u64),
                    SimTime::from_secs_f64(rng.gen_range(0.0..30.0)),
                    rng.gen_range(1..3000),
                    rng.gen_range(1..200),
                )
            })
            .collect();
        reqs.sort_by_key(|r| r.arrival);
        let fault = |at: f64, kind| TimedFault {
            at: SimTime::from_secs_f64(at),
            kind,
        };
        // One arm per case: a decode straggler under quarantine, a flaky
        // heartbeat flapping through the run, a dead link with a tight
        // retry budget, or everything at once with hedging and deadlines.
        let (script, cfg) = match case % 4 {
            0 => (
                FaultScript::new(
                    vec![fault(
                        rng.gen_range(1.0..15.0),
                        FaultKind::DecodeSlow(0, rng.gen_range(2.0..10.0)),
                    )],
                    SimDuration::from_millis(500),
                ),
                SimConfig::new(model.clone())
                    .with_straggler_detection(1.5)
                    .with_straggler_readmit_after(SimDuration::from_secs(3)),
            ),
            1 => (
                FaultScript::new(
                    vec![fault(
                        rng.gen_range(1.0..15.0),
                        FaultKind::HeartbeatFlaky(1, rng.gen_range(0.2..0.9)),
                    )],
                    SimDuration::from_millis(rng.gen_range(200..2000)),
                ),
                SimConfig::new(model.clone()),
            ),
            2 => (
                FaultScript::new(
                    vec![fault(
                        rng.gen_range(1.0..15.0),
                        FaultKind::LinkDown {
                            prefill: 0,
                            decode: 0,
                        },
                    )],
                    SimDuration::from_millis(100),
                ),
                SimConfig::new(model.clone()).with_kv_retry_budget(rng.gen_range(0..3)),
            ),
            _ => (
                FaultScript::new(
                    vec![
                        fault(
                            rng.gen_range(1.0..10.0),
                            FaultKind::DecodeSlow(1, rng.gen_range(2.0..8.0)),
                        ),
                        fault(
                            rng.gen_range(1.0..10.0),
                            FaultKind::LinkDegraded {
                                prefill: 0,
                                decode: 0,
                                factor: rng.gen_range(1.5..6.0),
                            },
                        ),
                        fault(
                            rng.gen_range(10.0..20.0),
                            FaultKind::HeartbeatFlaky(2, rng.gen_range(0.2..0.8)),
                        ),
                    ],
                    SimDuration::from_millis(rng.gen_range(200..1000)),
                ),
                SimConfig::new(model.clone())
                    .with_straggler_detection(1.5)
                    .with_hedging(SimDuration::from_millis(rng.gen_range(200..800)))
                    .with_kv_retry_budget(2)
                    .with_kv_retry_jitter(0.5)
                    .with_deadlines(
                        thunderserve::common::SloSpec::new(
                            SimDuration::from_millis(rng.gen_range(300..2000)),
                            SimDuration::from_millis(80),
                            SimDuration::from_secs(20),
                        ),
                        rng.gen_range(1.0..4.0),
                    ),
            ),
        };
        let run = || {
            Simulation::new(&cluster, &plan, cfg.clone())
                .unwrap()
                .run_with_faults(&reqs, &script)
                .unwrap()
        };
        let metrics = run();
        assert_eq!(
            metrics.num_completed() + metrics.num_dropped() + metrics.num_rejected(),
            reqs.len(),
            "case {case}: conservation violated ({:?})",
            metrics.recovery()
        );
        for r in metrics.records() {
            assert!(r.finished_at >= r.first_token_at);
            assert!(r.first_token_at >= r.request.arrival);
        }
        assert_eq!(metrics, run(), "case {case}: run must be bit-identical");
    }
}

/// SLO scaling is monotone: a looser deadline never reduces attainment.
#[test]
fn slo_scaling_monotone() {
    use thunderserve::common::SloSpec;
    let base = SloSpec::new(
        SimDuration::from_millis(500),
        SimDuration::from_millis(50),
        SimDuration::from_secs(5),
    );
    for case in 0..CASES {
        let mut rng = seeded_rng(derive_seed(0x510, case));
        let scale_a = rng.gen_range(0.1f64..10.0);
        let scale_b = rng.gen_range(0.1f64..10.0);
        let (lo, hi) = if scale_a <= scale_b {
            (scale_a, scale_b)
        } else {
            (scale_b, scale_a)
        };
        let a = base.scaled(lo);
        let b = base.scaled(hi);
        assert!(a.ttft <= b.ttft);
        assert!(a.tpot <= b.tpot);
        assert!(a.e2e <= b.e2e);
    }
}

/// Arbitrary well-formed plans survive the text round trip.
#[test]
fn plan_text_round_trips() {
    use thunderserve::common::plan_io;
    use thunderserve::common::{
        DeploymentPlan, GroupSpec, ParallelConfig, RoutingMatrix, StageSpec,
    };

    for case in 0..CASES {
        let mut rng = seeded_rng(derive_seed(0x914A, case));
        let num_prefill = rng.gen_range(1usize..4);
        let num_decode = rng.gen_range(1usize..4);
        let tp = 1usize << rng.gen_range(0u32..2);
        let layers = rng.gen_range(4usize..60);

        let mut next_gpu = 0u32;
        let mut mk_group = |phase| {
            let stages = vec![StageSpec {
                gpus: (0..tp)
                    .map(|_| {
                        let id = GpuId(next_gpu);
                        next_gpu += 1;
                        id
                    })
                    .collect(),
                layers,
            }];
            GroupSpec::new(phase, ParallelConfig::new(tp, 1).unwrap(), stages).unwrap()
        };
        let mut groups = Vec::new();
        for _ in 0..num_prefill {
            groups.push(mk_group(Phase::Prefill));
        }
        for _ in 0..num_decode {
            groups.push(mk_group(Phase::Decode));
        }
        // random routing summing to 1
        let mut rates = vec![vec![0.0f64; num_decode]; num_prefill];
        let mut total = 0.0;
        for row in rates.iter_mut() {
            for v in row.iter_mut() {
                *v = rng.gen_range(0.0..1.0);
                total += *v;
            }
        }
        for row in rates.iter_mut() {
            for v in row.iter_mut() {
                *v /= total;
            }
        }
        let plan = DeploymentPlan::new(groups, RoutingMatrix::new(rates).unwrap()).unwrap();
        let text = plan_io::to_text(&plan);
        let back = plan_io::from_text(&text).unwrap();
        // group structure identical; routing equal within text precision
        assert_eq!(&plan.groups, &back.groups);
        for i in 0..num_prefill {
            for j in 0..num_decode {
                assert!((plan.routing.rate(i, j) - back.routing.rate(i, j)).abs() < 1e-9);
            }
        }
    }
}

/// The single-model scheduling path is the exact special case of the
/// multi-model one: a one-entry default catalog through `schedule_multi`
/// yields a byte-identical plan and identical search counters to `schedule`,
/// across seeds.
#[test]
fn single_model_schedule_is_bit_identical_through_multi_path() {
    use thunderserve::common::{ModelId, ModelSpec, ServedModel, SloSpec};
    use thunderserve::scheduler::{Scheduler, SchedulerConfig};
    use thunderserve::workload::spec;
    let cluster = thunderserve::cluster::presets::a5000_cluster(8);
    let model = ModelSpec::llama_13b();
    let slo = SloSpec::new(
        SimDuration::from_secs(5),
        SimDuration::from_millis(300),
        SimDuration::from_secs(60),
    );
    for (case, w) in [spec::coding(2.0), spec::conversation(2.0)]
        .into_iter()
        .enumerate()
    {
        let mut cfg = SchedulerConfig::fast();
        cfg.seed = 8 + case as u64;
        let s = Scheduler::new(cfg);
        let single = s.schedule(&cluster, &model, &w, &slo).unwrap();
        let multi = s
            .schedule_multi(
                &cluster,
                &[ServedModel::single(model.clone(), slo)],
                std::slice::from_ref(&w),
            )
            .unwrap();
        assert_eq!(single.plan, multi.schedule.plan, "case {case}: plan drift");
        assert!(!multi.schedule.plan.is_multi_model());
        assert_eq!(multi.schedule.plan.models(), vec![ModelId(0)]);
        assert_eq!(
            single.estimated_attainment.to_bits(),
            multi.schedule.estimated_attainment.to_bits(),
            "case {case}: attainment drift"
        );
        assert_eq!(single.evaluations, multi.schedule.evaluations);
        assert_eq!(
            single.neighbors_generated,
            multi.schedule.neighbors_generated
        );
    }
}

/// A catalog with only the default model leaves single-model simulation
/// untouched: the run through the model-tracking machinery produces records
/// and recovery counters identical to the untracked run (modulo the new
/// per-model ledger itself, which must balance), on both engines, with and
/// without faults.
#[test]
fn single_model_metrics_survive_the_catalog_bit_identically() {
    use thunderserve::common::{
        DeploymentPlan, GroupSpec, ModelId, ParallelConfig, RoutingMatrix, ServedModel, StageSpec,
    };
    use thunderserve::sim::colocated::ColocatedSimulation;
    use thunderserve::sim::config::SimConfig;
    use thunderserve::sim::engine::Simulation;
    use thunderserve::sim::fault::{FaultKind, FaultScript, TimedFault};
    let cluster = thunderserve::cluster::presets::network_case_cluster(
        thunderserve::cluster::presets::ETH_40GBPS,
    );
    let tenant = ServedModel::llama_13b_chat(ModelId(0), 1.0).unwrap();
    let (model, slo) = (tenant.spec.clone(), tenant.slo);
    let g = |phase, ids: &[u32], tp: usize| {
        GroupSpec::new(
            phase,
            ParallelConfig::new(tp, 1).unwrap(),
            vec![StageSpec {
                gpus: ids.iter().map(|&i| GpuId(i)).collect(),
                layers: model.num_layers,
            }],
        )
        .unwrap()
    };
    let plan = DeploymentPlan::new(
        vec![
            g(Phase::Prefill, &[0, 1], 2),
            g(Phase::Prefill, &[2, 3], 2),
            g(Phase::Decode, &[4, 5], 2),
            g(Phase::Decode, &[6, 7], 2),
        ],
        RoutingMatrix::uniform(2, 2),
    )
    .unwrap();
    let colo_groups = vec![g(Phase::Prefill, &[0, 1], 2), g(Phase::Prefill, &[2, 3], 2)];
    for case in 0..CASES {
        let mut rng = seeded_rng(derive_seed(0xB17, case));
        let n_reqs = rng.gen_range(1usize..40);
        let mut reqs: Vec<Request> = (0..n_reqs)
            .map(|i| {
                Request::new(
                    RequestId(i as u64),
                    SimTime::from_secs_f64(rng.gen_range(0.0..30.0)),
                    rng.gen_range(1..3000),
                    rng.gen_range(1..200),
                )
            })
            .collect();
        reqs.sort_by_key(|r| r.arrival);
        let script = match case % 3 {
            0 => FaultScript::none(),
            1 => FaultScript::new(
                vec![TimedFault {
                    at: SimTime::from_secs_f64(rng.gen_range(1.0..20.0)),
                    kind: FaultKind::DecodeDown(0),
                }],
                SimDuration::from_millis(rng.gen_range(50..2000)),
            ),
            _ => FaultScript::new(
                vec![TimedFault {
                    at: SimTime::from_secs_f64(rng.gen_range(1.0..15.0)),
                    kind: FaultKind::DecodeSlow(0, rng.gen_range(2.0..8.0)),
                }],
                SimDuration::from_millis(500),
            ),
        };
        let base = || {
            let mut c = SimConfig::new(model.clone());
            if case % 3 == 2 {
                c = c
                    .with_straggler_detection(1.5)
                    .with_hedging(SimDuration::from_millis(400));
            }
            c
        };
        let tagged = || base().with_catalog(vec![ServedModel::single(model.clone(), slo)]);
        let check = |plain: thunderserve::sim::metrics::Metrics,
                     with_catalog: thunderserve::sim::metrics::Metrics| {
            assert_eq!(
                plain.records(),
                with_catalog.records(),
                "case {case}: records drifted under the catalog"
            );
            assert_eq!(plain.num_dropped(), with_catalog.num_dropped());
            assert_eq!(plain.num_rejected(), with_catalog.num_rejected());
            assert!(plain.recovery().per_model.is_empty());
            let per = &with_catalog.recovery().per_model;
            assert_eq!(per.len(), 1, "case {case}: one tenant, one ledger entry");
            assert!(per[0].balanced());
            assert_eq!(per[0].submitted, reqs.len());
            let mut scrubbed = with_catalog.recovery().clone();
            scrubbed.per_model.clear();
            assert_eq!(
                &scrubbed,
                plain.recovery(),
                "case {case}: recovery counters drifted under the catalog"
            );
        };
        check(
            Simulation::new(&cluster, &plan, base())
                .unwrap()
                .run_with_faults(&reqs, &script)
                .unwrap(),
            Simulation::new(&cluster, &plan, tagged())
                .unwrap()
                .run_with_faults(&reqs, &script)
                .unwrap(),
        );
        // Colocated engine: skip the split-only fault arms' replica indices
        // when they exceed the two colocated replicas (they don't here).
        check(
            ColocatedSimulation::new(&cluster, &colo_groups, base())
                .unwrap()
                .run_with_faults(&reqs, &script)
                .unwrap(),
            ColocatedSimulation::new(&cluster, &colo_groups, tagged())
                .unwrap()
                .run_with_faults(&reqs, &script)
                .unwrap(),
        );
    }
}

/// A two-tenant plan from `schedule_multi` serves tagged traffic end to end
/// on one shared pool: both models complete work, the per-model conservation
/// ledger balances for each, and identical runs are bit-identical.
#[test]
fn multi_model_plan_serves_both_tenants_end_to_end() {
    use thunderserve::common::{ModelId, ServedModel};
    use thunderserve::scheduler::{Scheduler, SchedulerConfig};
    use thunderserve::sim::config::SimConfig;
    use thunderserve::sim::engine::Simulation;
    use thunderserve::workload::generator::generate_multi_tenant;
    use thunderserve::workload::spec;
    let cluster = thunderserve::cluster::presets::a5000_cluster(12);
    let catalog = vec![
        ServedModel::llama_7b_chat(ModelId(1), 0.6).unwrap(),
        ServedModel::llama_13b_chat(ModelId(2), 0.4).unwrap(),
    ];
    let workloads = [spec::conversation(1.5), spec::coding(1.0)];
    let mut cfg = SchedulerConfig::fast();
    cfg.seed = 21;
    let r = Scheduler::new(cfg)
        .schedule_multi(&cluster, &catalog, &workloads)
        .unwrap();
    let plan = &r.schedule.plan;
    assert!(plan.is_multi_model());
    for m in &catalog {
        assert!(
            !plan.prefill_indices_for(m.id).is_empty(),
            "{} has no prefill groups",
            m.id
        );
        assert!(
            !plan.decode_indices_for(m.id).is_empty(),
            "{} has no decode groups",
            m.id
        );
    }
    let reqs = generate_multi_tenant(
        &[
            (ModelId(1), workloads[0].clone()),
            (ModelId(2), workloads[1].clone()),
        ],
        SimDuration::from_secs(20),
        97,
    );
    assert!(!reqs.is_empty());
    let sim_cfg = SimConfig::new(catalog[0].spec.clone()).with_catalog(catalog.clone());
    let run = || {
        Simulation::new(&cluster, plan, sim_cfg.clone())
            .unwrap()
            .run(&reqs)
            .unwrap()
    };
    let m = run();
    let per = &m.recovery().per_model;
    assert_eq!(per.len(), 2);
    for c in per {
        assert!(c.balanced(), "unbalanced ledger for {}: {c:?}", c.model);
        assert!(c.submitted > 0);
    }
    for id in [ModelId(1), ModelId(2)] {
        let view = m.for_model(id);
        assert!(
            view.num_completed() > 0,
            "tenant {id} completed nothing on the shared pool"
        );
        for rec in view.records() {
            assert_eq!(rec.request.model, id);
        }
    }
    assert_eq!(
        m.for_model(ModelId(1)).num_completed() + m.for_model(ModelId(2)).num_completed(),
        m.num_completed()
    );
    assert_eq!(m, run(), "multi-model run must be bit-identical");
}

/// Per-request invariants of the engine's latency metrics: the largest
/// inter-token gap is at least the mean gap (TPOT) and at most E2E.
#[test]
fn itl_bounds_hold() {
    use thunderserve::workload::generator::generate;
    let cluster = thunderserve::cluster::presets::network_case_cluster(
        thunderserve::cluster::presets::ETH_40GBPS,
    );
    let model = thunderserve::common::ModelSpec::llama_13b();
    let plan = {
        use thunderserve::common::{
            DeploymentPlan, GroupSpec, ParallelConfig, RoutingMatrix, StageSpec,
        };
        let g = |phase, ids: [u32; 4]| {
            GroupSpec::new(
                phase,
                ParallelConfig::new(4, 1).unwrap(),
                vec![StageSpec {
                    gpus: ids.iter().map(|&i| GpuId(i)).collect(),
                    layers: 40,
                }],
            )
            .unwrap()
        };
        DeploymentPlan::new(
            vec![
                g(Phase::Prefill, [0, 1, 2, 3]),
                g(Phase::Decode, [4, 5, 6, 7]),
            ],
            RoutingMatrix::uniform(1, 1),
        )
        .unwrap()
    };
    for case in 0..12 {
        let seed = derive_seed(0x171, case);
        let rate = 0.5 + 2.5 * (case as f64 / 12.0);
        let w = thunderserve::workload::spec::fixed(512, 32, rate);
        let reqs = generate(&w, SimDuration::from_secs(20), seed);
        if reqs.is_empty() {
            continue;
        }
        let m = thunderserve::sim::engine::Simulation::new(
            &cluster,
            &plan,
            thunderserve::sim::config::SimConfig::new(model.clone()),
        )
        .unwrap()
        .run(&reqs)
        .unwrap();
        for r in m.records() {
            if r.request.decode_steps() > 0 {
                assert!(
                    r.max_token_gap >= r.tpot(),
                    "max gap {} < mean gap {}",
                    r.max_token_gap,
                    r.tpot()
                );
                assert!(r.max_token_gap <= r.e2e());
            } else {
                assert!(r.max_token_gap.is_zero());
            }
        }
    }
}
