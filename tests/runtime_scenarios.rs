//! Integration tests combining the runtime components the way an operator
//! would: heartbeats drive failure handling, elasticity grows deployments,
//! and replayed traces run through the CLI-visible paths.

use thunderserve::prelude::*;
use thunderserve::runtime::heartbeat::HeartbeatMonitor;
use thunderserve::runtime::service::{ReschedulePolicy, ServingRuntime};
use thunderserve::workload::generator::generate;
use thunderserve::workload::spec;

fn slo() -> SloSpec {
    // The catalog's LLaMA-30B coding preset is the paper's long-form SLO.
    ServedModel::llama_30b_coding(ModelId(0), 1.0).unwrap().slo
}

/// Heartbeat timeout → node declared dead → lightweight reschedule → serving
/// continues on the survivors.
#[test]
fn heartbeat_timeout_drives_failure_handling() {
    let cluster = thunderserve::cluster::presets::paper_cloud_cluster();
    let mut cfg = SchedulerConfig::fast();
    cfg.seed = 41;
    let mut rt = ServingRuntime::new(cluster, ModelSpec::llama_30b(), slo(), cfg);
    let w = spec::coding(2.0);
    rt.deploy(&w).unwrap();

    // All 7 nodes heartbeat at t=0; node 6 goes silent.
    let mut hb = HeartbeatMonitor::new(SimDuration::from_secs(30));
    let node_ids: Vec<thunderserve::common::NodeId> =
        rt.cluster().nodes().iter().map(|n| n.id).collect();
    for &n in &node_ids {
        hb.register(n, SimTime::ZERO);
    }
    let t1 = SimTime::from_secs_f64(20.0);
    for &n in &node_ids {
        if n.index() != 6 {
            hb.beat(n, t1);
        }
    }
    let dead = hb.expired(SimTime::from_secs_f64(45.0));
    assert_eq!(dead, vec![thunderserve::common::NodeId(6)]);

    // The runtime reacts: fail the node's GPUs, lightweight-reschedule.
    let failed: Vec<GpuId> = rt.cluster().node(dead[0]).gpus.clone();
    rt.handle_failure(&failed, &w, ReschedulePolicy::Lightweight)
        .unwrap();
    let rep = rt
        .serve_segment(&generate(&w, SimDuration::from_secs(60), 1))
        .unwrap();
    assert!(rep.blackout.is_zero());
    assert!(rep.metrics.num_completed() > 0);
    for g in &rt.plan().unwrap().groups {
        for gpu in g.gpus() {
            assert_ne!(rt.cluster().gpu(gpu).node, dead[0]);
        }
    }
}

/// Trace round trip through the workload trace format feeds the engine the
/// same requests.
#[test]
fn trace_replay_matches_generated_run() {
    use thunderserve::workload::trace::{from_csv, to_csv};
    let cluster = thunderserve::cluster::presets::network_case_cluster(
        thunderserve::cluster::presets::ETH_40GBPS,
    );
    let model = ModelSpec::llama_13b();
    let mut cfg = SchedulerConfig::fast();
    cfg.seed = 43;
    let w = spec::coding(1.5);
    let plan = Scheduler::new(cfg)
        .schedule(&cluster, &model, &w, &slo())
        .unwrap()
        .plan;
    let reqs = generate(&w, SimDuration::from_secs(45), 11);
    let replayed = from_csv(&to_csv(&reqs)).unwrap();
    let m1 = Simulation::new(&cluster, &plan, SimConfig::new(model.clone()))
        .unwrap()
        .run(&reqs)
        .unwrap();
    let m2 = Simulation::new(&cluster, &plan, SimConfig::new(model))
        .unwrap()
        .run(&replayed)
        .unwrap();
    assert_eq!(m1.num_completed(), m2.num_completed());
    // throughputs agree to the trace format's microsecond precision
    assert!((m1.throughput_tokens() - m2.throughput_tokens()).abs() < 0.5);
}

/// Planning for a blended workload serves a mixed stream at least as well as
/// planning for the wrong single component.
#[test]
fn blended_planning_handles_mixtures() {
    use thunderserve::workload::generator::generate_mixture;
    let cluster = thunderserve::cluster::presets::paper_cloud_cluster();
    let model = ModelSpec::llama_30b();
    let rate = 2.4;
    let coding = spec::coding(rate / 2.0);
    let conv = spec::conversation(rate / 2.0);
    let blended = spec::blend(&[(coding.clone(), 1.0), (conv.clone(), 1.0)]);
    let mix_trace = generate_mixture(&[coding, conv], SimDuration::from_secs(120), 13);

    let run = |workload: &thunderserve::workload::WorkloadSpec, seed: u64| {
        let mut cfg = SchedulerConfig::fast();
        cfg.seed = seed;
        let plan = Scheduler::new(cfg)
            .schedule(&cluster, &model, workload, &slo())
            .unwrap()
            .plan;
        Simulation::new(&cluster, &plan, SimConfig::new(model.clone()))
            .unwrap()
            .run(&mix_trace)
            .unwrap()
            .joint_attainment(&slo())
    };
    let planned_for_blend = run(&blended, 3);
    let planned_for_coding_only = run(&spec::coding(rate), 3);
    assert!(
        planned_for_blend >= planned_for_coding_only - 0.1,
        "blend-planned {planned_for_blend} vs coding-planned {planned_for_coding_only}"
    );
}

/// Replays a sorted availability script — node down, node back up, then a
/// GPU-level failure — through mid-flight serving segments. After every
/// event the runtime's plan must only reference GPUs that are active in its
/// cluster view.
#[test]
fn availability_script_replay_keeps_plan_on_active_gpus() {
    use thunderserve::cluster::availability::{sort_script, ClusterEvent, EventKind};
    use thunderserve::common::NodeId;

    let cluster = thunderserve::cluster::presets::paper_cloud_cluster();
    let mut cfg = SchedulerConfig::fast();
    cfg.seed = 47;
    let mut rt = ServingRuntime::new(cluster, ModelSpec::llama_30b(), slo(), cfg);
    let w = spec::coding(1.0);
    rt.deploy(&w).unwrap();

    // A script over one absolute timeline, deliberately out of order; each
    // 30s serving segment replays the events that fall inside it.
    let mut script = vec![
        ClusterEvent::new(SimTime::from_secs_f64(40.0), EventKind::NodeUp(NodeId(6))),
        ClusterEvent::new(SimTime::from_secs_f64(15.0), EventKind::NodeDown(NodeId(6))),
        ClusterEvent::new(
            SimTime::from_secs_f64(72.0),
            EventKind::GpusDown(vec![GpuId(0)]),
        ),
    ];
    sort_script(&mut script);
    assert!(script.windows(2).all(|w| w[0].at <= w[1].at));
    let seg_len = SimDuration::from_secs(30);
    let gpus_all_active = |rt: &ServingRuntime| {
        rt.plan()
            .unwrap()
            .groups
            .iter()
            .flat_map(|g| g.gpus().collect::<Vec<_>>())
            .all(|g| rt.cluster().is_active(g))
    };
    for seg in 0..3usize {
        let start = SimTime::ZERO + seg_len * seg as u64;
        let events: Vec<ClusterEvent> = script
            .iter()
            .filter(|e| e.at >= start && e.at < start + seg_len)
            .map(|e| {
                ClusterEvent::new(SimTime::ZERO + e.at.saturating_since(start), e.kind.clone())
            })
            .collect();
        assert_eq!(events.len(), 1, "one event per segment");
        let reqs = generate(&w, seg_len, 50 + seg as u64);
        let rep = rt
            .serve_segment_with_faults(
                &reqs,
                &events,
                ReschedulePolicy::Lightweight,
                &w,
                SimDuration::from_secs(2),
            )
            .unwrap();
        let m = &rep.metrics;
        assert_eq!(
            m.num_completed() + m.num_dropped() + m.num_rejected(),
            reqs.len(),
            "segment {seg}: conservation"
        );
        assert!(
            gpus_all_active(&rt),
            "segment {seg}: plan references an inactive GPU"
        );
    }
    // Net effect: node 6 is back, GPU 0 is out.
    assert!(rt
        .cluster()
        .node(NodeId(6))
        .gpus
        .iter()
        .all(|g| rt.cluster().is_active(*g)));
    assert!(!rt.cluster().is_active(GpuId(0)));
}
