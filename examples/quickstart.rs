//! Quickstart: schedule a phase-split deployment of LLaMA-30B on the
//! paper's 32-GPU heterogeneous cloud and simulate serving a coding
//! workload against it.
//!
//! ```text
//! cargo run --example quickstart --release
//! ```

use thunderserve::prelude::*;

fn main() -> thunderserve::Result<()> {
    // 1. Describe the environment: the paper's heterogeneous cloud rig
    //    (2x 4xA6000, 2x 4xA5000, 1x 8xA40, 2x 4x3090Ti).
    let cluster = thunderserve::cluster::presets::paper_cloud_cluster();
    println!(
        "cluster: {} GPUs on {} nodes, ${:.2}/hour",
        cluster.num_gpus(),
        cluster.num_nodes(),
        cluster.price_per_hour()
    );

    // 2. Pick the model, workload and SLO. The catalog's LLaMA-30B coding
    //    preset bundles the model with the paper's long-form SLO (TTFT
    //    3200ms, TPOT 240ms, E2E 48s).
    let tenant = ServedModel::llama_30b_coding(ModelId(0), 1.0)?;
    let (model, slo) = (tenant.spec, tenant.slo);
    let workload = thunderserve::workload::spec::coding(2.5);

    // 3. Run the two-level scheduler (tabu search over group construction &
    //    phase designation; parallel-config deduction + orchestration below).
    let mut cfg = SchedulerConfig::default();
    cfg.seed = 7;
    let result = Scheduler::new(cfg).schedule(&cluster, &model, &workload, &slo)?;
    let (prefill, decode) = result.plan.phase_ratio();
    println!(
        "scheduled {prefill} prefill + {decode} decode replicas in {:.2}s \
         ({} lower-level evaluations, estimated attainment {:.3})",
        result.elapsed, result.evaluations, result.estimated_attainment
    );
    for g in &result.plan.groups {
        let models: Vec<String> = g
            .gpus()
            .map(|id| cluster.gpu(id).model.to_string())
            .collect();
        println!(
            "  {:7} {} on [{}]",
            g.phase.to_string(),
            g.parallel,
            models.join(",")
        );
    }

    // 4. Serve a 3-minute Poisson trace on the discrete-event engine.
    let requests =
        thunderserve::workload::generator::generate(&workload, SimDuration::from_secs(180), 1);
    let mut sim = Simulation::new(&cluster, &result.plan, SimConfig::new(model))?;
    let metrics = sim.run(&requests)?;

    println!(
        "served {} requests: {:.1} req/s, {:.0} output tokens/s",
        metrics.num_completed(),
        metrics.throughput_rps(),
        metrics.throughput_tokens()
    );
    for kind in SloKind::ALL {
        println!(
            "  {kind}: p50 {} p99 {} attainment {:.1}%",
            metrics.latency_percentile(kind, 0.5).unwrap(),
            metrics.latency_percentile(kind, 0.99).unwrap(),
            100.0 * metrics.slo_attainment(&slo, kind)
        );
    }
    println!(
        "joint SLO attainment: {:.1}%",
        100.0 * metrics.joint_attainment(&slo)
    );
    Ok(())
}
