//! Multi-model serving: two tenants share one GPU pool under a single
//! deployment plan, each with its own model, workload and SLO.
//!
//! A LLaMA-7B conversation service (60% traffic share) and a LLaMA-13B
//! coding service (40%) rent the same 12×A5000 pool. `schedule_multi`
//! decides which groups serve which model and routes each tenant's traffic
//! over its own replicas; the simulator then serves the merged trace and
//! reports per-tenant attainment and the per-model conservation ledger.
//!
//! ```text
//! cargo run --example multi_model --release
//! ```

use thunderserve::common::{ModelId, ServedModel};
use thunderserve::prelude::*;
use thunderserve::workload::generator::generate_multi_tenant;

fn main() -> thunderserve::Result<()> {
    // 1. The shared pool: three 4xA5000 nodes.
    let cluster = thunderserve::cluster::presets::a5000_cluster(12);
    println!(
        "pool: {} GPUs on {} nodes, ${:.2}/hour",
        cluster.num_gpus(),
        cluster.num_nodes(),
        cluster.price_per_hour()
    );

    // 2. The tenant catalog. Presets carry each model's spec and SLO; the
    //    SLOs are rescaled to what this GPU class can deliver.
    let chat = ServedModel::llama_7b_chat(ModelId(1), 0.6)?;
    let code = ServedModel::llama_13b_chat(ModelId(2), 0.4)?;
    let catalog = vec![
        ServedModel::new(chat.id, chat.spec, chat.slo.scaled(2.0), 0.6)?,
        ServedModel::new(code.id, code.spec, code.slo.scaled(3.0), 0.4)?,
    ];
    let workloads = vec![
        thunderserve::workload::spec::conversation(0.8),
        thunderserve::workload::spec::coding(1.2),
    ];

    // 3. One scheduling run places both tenants on the shared pool: the
    //    upper-level tabu search also decides group-to-model assignment,
    //    and the lower level solves one transportation problem per model.
    let mut cfg = SchedulerConfig::fast();
    cfg.n_step = 40;
    cfg.n_nghb = 10;
    cfg.seed = 23;
    let result = Scheduler::new(cfg).schedule_multi(&cluster, &catalog, &workloads)?;
    let plan = &result.schedule.plan;
    for m in &catalog {
        println!(
            "{}: {} prefill + {} decode groups, estimated attainment {:.3}",
            m.id,
            plan.prefill_indices_for(m.id).len(),
            plan.decode_indices_for(m.id).len(),
            result
                .per_model
                .iter()
                .find(|e| e.model == m.id)
                .map_or(f64::NAN, |e| e.estimated_attainment),
        );
    }

    // 4. Serve a merged two-tenant trace: every request is tagged with its
    //    model and routed only over that tenant's replicas.
    let requests = generate_multi_tenant(
        &[
            (catalog[0].id, workloads[0].clone()),
            (catalog[1].id, workloads[1].clone()),
        ],
        SimDuration::from_secs(90),
        11,
    );
    let sim_cfg = SimConfig::new(catalog[0].spec.clone()).with_catalog(catalog.clone());
    let metrics = Simulation::new(&cluster, plan, sim_cfg)?.run(&requests)?;

    // 5. Per-tenant views of the shared run, and the conservation ledger.
    for m in &catalog {
        let view = metrics.for_model(m.id);
        println!(
            "{}: {} completed, joint attainment {:.3} under its own SLO",
            m.id,
            view.num_completed(),
            view.joint_attainment(&m.slo)
        );
    }
    for ledger in &metrics.recovery().per_model {
        println!(
            "{}: submitted {} = completed {} + dropped {} + rejected {} (balanced: {})",
            ledger.model,
            ledger.submitted,
            ledger.completed,
            ledger.dropped,
            ledger.rejected,
            ledger.balanced()
        );
    }
    Ok(())
}
