//! Live serving demo: drive the multi-threaded task coordinator with real
//! threads and channels. GPU work is paced by the cost model, compressed
//! 1000x so the demo finishes in about a second.
//!
//! ```text
//! cargo run --example live_serving --release
//! ```

use thunderserve::prelude::*;
use thunderserve::runtime::coordinator::{CoordinatorConfig, TaskCoordinator};
use thunderserve::workload::spec;
use ts_costmodel::ModelParams;

fn main() -> thunderserve::Result<()> {
    let cluster = thunderserve::cluster::presets::network_case_cluster(
        thunderserve::cluster::presets::ETH_40GBPS,
    );
    let model = ModelSpec::llama_13b();
    let workload = spec::coding(4.0);
    let slo = SloSpec::new(
        SimDuration::from_secs(4),
        SimDuration::from_millis(200),
        SimDuration::from_secs(40),
    );

    let mut cfg = SchedulerConfig::fast();
    cfg.seed = 3;
    let plan = Scheduler::new(cfg)
        .schedule(&cluster, &model, &workload, &slo)?
        .plan;
    let (p, d) = plan.phase_ratio();
    println!("serving with {p} prefill + {d} decode replicas (live threads)");

    let coordinator = TaskCoordinator::start(
        &cluster,
        &model,
        &plan,
        &ModelParams::default(),
        CoordinatorConfig {
            time_scale: 1e-3, // 1 simulated second = 1ms wall clock
            decode_batch: 16,
        },
    )?;

    // Submit a burst of requests.
    let requests =
        thunderserve::workload::generator::generate(&workload, SimDuration::from_secs(10), 9);
    for r in &requests {
        coordinator.submit(*r)?;
    }
    println!(
        "submitted {} requests, waiting for completions...",
        requests.len()
    );

    let done = coordinator.shutdown();
    let mean_ttft = done.iter().map(|c| c.ttft_s).sum::<f64>() / done.len() as f64;
    let mean_e2e = done.iter().map(|c| c.e2e_s).sum::<f64>() / done.len() as f64;
    println!(
        "completed {}: mean TTFT {:.2}s, mean E2E {:.2}s (simulated-time scale)",
        done.len(),
        mean_ttft,
        mean_e2e
    );
    Ok(())
}
