//! Coordinated prefill/decode autoscaling over a spot-priced elastic fleet.
//!
//! A diurnal day — overnight trough, morning ramp into a midday peak, a
//! flash crowd, and a spot reclaim wave — is compressed into six 90-second
//! segments and served on the elastic cloud pool two ways:
//!
//! * **autoscale** — the fleet starts as the two on-demand base nodes; at
//!   each segment boundary the controller reads attainment, queue depth and
//!   occupancy, acquires the cheapest spot nodes under pressure, releases
//!   the most expensive held node when cold, and drains warned nodes before
//!   the provider reclaims them. Every fleet edit goes through the
//!   lightweight rescheduler (no weight reload).
//! * **static** — the whole 32-GPU pool held on-demand all day: the oracle
//!   peak-provisioned quality ceiling, and its cost ceiling.
//!
//! ```text
//! cargo run --example autoscale --release
//! ```

use thunderserve::autoscale::{run_elastic, run_static, AutoscaleConfig, Segment};
use thunderserve::cluster::availability::{ClusterEvent, EventKind};
use thunderserve::cluster::presets::elastic_cloud_pool;
use thunderserve::common::{ModelSpec, NodeId, Request, SimDuration, SimTime, SloSpec};
use thunderserve::scheduler::SchedulerConfig;
use thunderserve::telemetry::{ScaleKind, TraceKind};
use thunderserve::workload::generator::{diurnal_phases, generate_phased, with_flash_crowd};
use thunderserve::workload::spec;

/// Six 90-second segments tracing one diurnal period: a flash crowd doubles
/// segment 4, and the cheapest spot node (node 6, 4xA5000) is warned early
/// in segment 2 and reclaimed early in segment 3.
fn segments() -> Vec<Segment> {
    let window = SimDuration::from_secs(90);
    let horizon = window.mul_f64(6.0);
    let phases = with_flash_crowd(
        &diurnal_phases(&spec::conversation(2.0), horizon, horizon, 0.65, window),
        window.mul_f64(4.0),
        window,
        1.5,
    );
    let all = generate_phased(&phases, 1009);
    let mut out = Vec::new();
    let mut start = SimTime::ZERO;
    for (i, ph) in phases.iter().enumerate() {
        let end = start + window;
        let requests: Vec<Request> = all
            .iter()
            .filter(|r| r.arrival >= start && r.arrival < end)
            .map(|r| {
                let mut q = *r;
                q.arrival = SimTime::ZERO + r.arrival.saturating_since(start);
                q
            })
            .collect();
        let mut events = Vec::new();
        if i == 2 {
            events.push(ClusterEvent::new(
                SimTime::ZERO + SimDuration::from_secs(9),
                EventKind::PreemptionWarning(NodeId(6)),
            ));
        }
        if i == 3 {
            events.push(ClusterEvent::new(
                SimTime::ZERO + SimDuration::from_secs(9),
                EventKind::ScaleDown(NodeId(6)),
            ));
        }
        out.push(Segment {
            requests,
            window,
            workload: ph.spec.clone(),
            events,
        });
        start = end;
    }
    out
}

fn main() -> thunderserve::Result<()> {
    let pool = elastic_cloud_pool();
    let model = ModelSpec::llama_30b();
    let slo = SloSpec::new(
        SimDuration::from_secs(5),
        SimDuration::from_millis(300),
        SimDuration::from_secs(60),
    );
    let mut sched = SchedulerConfig::fast();
    sched.n_step = 40;
    sched.n_nghb = 10;
    sched.seed = 47;
    let cfg = AutoscaleConfig {
        attainment_floor: 0.97,
        attainment_ceiling: 0.98,
        queue_depth_high: 1.0,
        occupancy_low: 0.20,
        cooldown_segments: 1,
        warning_lead_time: SimDuration::from_secs(120),
        max_acquire_per_step: 4,
        max_release_per_step: 1,
        // 90s segments cannot absorb a full-replan weight-reload blackout,
        // so fleet edits always take the graft path.
        full_replan_fraction: 1.0,
        ..AutoscaleConfig::default()
    };

    let segs = segments();
    println!(
        "elastic pool: {} base + {} spot nodes, ${:.2}/hr fully on-demand\n",
        pool.base.len(),
        pool.spot.len(),
        pool.static_price_per_hour()
    );

    let elastic = run_elastic(&pool, &model, &slo, &sched, &cfg, &segs)?;
    let static_fleet = run_static(&pool, &model, &slo, &sched, &segs)?;

    for (name, arm) in [("static", &static_fleet), ("autoscale", &elastic)] {
        println!("{name}:");
        for rec in &arm.records {
            println!(
                "  seg {}  att {:.3}  {:>4} reqs  {:>2} gpus ({}p:{}d)  ${:.2}/hr",
                rec.segment,
                rec.attainment,
                rec.submitted,
                rec.fleet_gpus,
                rec.prefill_groups,
                rec.decode_groups,
                rec.rate_per_hour,
            );
        }
        let count = |k: ScaleKind| {
            arm.scale_log
                .iter()
                .filter(|e| matches!(e.kind, TraceKind::ScaleAction { kind, .. } if kind == k))
                .count()
        };
        println!(
            "  attainment {:.3} | total ${:.2} | acquire {} release {} drain {} flip {}\n",
            arm.mean_attainment(),
            arm.total_cost(),
            count(ScaleKind::Acquire),
            count(ScaleKind::Release),
            count(ScaleKind::Drain),
            count(ScaleKind::PhaseFlip),
        );
    }

    println!(
        "Autoscaling gives up {:.1} points of attainment and cuts the bill by \
         {:.0}%: the fleet rides the diurnal curve instead of paying for the \
         peak all day, and the warned spot node is drained before the \
         provider takes it. `bench_autoscale` runs the full 24-hour version \
         and asserts the gap, the saving, ledger consistency and \
         bit-reproducibility.",
        100.0 * (static_fleet.mean_attainment() - elastic.mean_attainment()),
        100.0 * (1.0 - elastic.total_cost() / static_fleet.total_cost()),
    );
    Ok(())
}
