//! Live metrics from the streaming observability plane: serve a segment
//! whose prefill→decode link dies mid-flight, and read the whole story —
//! online latency quantiles, windowed counters, SLO burn-rate health — from
//! the plane's snapshot, without ever materializing a full event trace.
//!
//! ```text
//! cargo run --example live_metrics --release
//! ```
//!
//! Pass a path argument to additionally write the Prometheus text
//! exposition (e.g. `metrics.prom`) as a scrape endpoint would serve it.

use thunderserve::prelude::*;
use thunderserve::sim::{FaultKind, FaultScript, TimedFault};
use thunderserve::telemetry::{render_prometheus, validate_exposition, StreamConfig};
use thunderserve::workload::generator::generate;
use thunderserve::workload::spec;
use ts_common::{stats, GroupSpec, ParallelConfig, Phase, RoutingMatrix, SimTime, StageSpec};

fn main() -> thunderserve::Result<()> {
    // 4xA40 prefill + two 2x3090Ti decode replicas on a slow 5 Gbps fabric,
    // so the mid-run link fault genuinely backs traffic up.
    let cluster = thunderserve::cluster::presets::network_case_cluster(
        thunderserve::cluster::presets::ETH_5GBPS,
    );
    let model = ModelSpec::llama_13b();
    let group = |phase, ids: &[u32], tp: usize| {
        GroupSpec::new(
            phase,
            ParallelConfig::new(tp, 1).unwrap(),
            vec![StageSpec {
                gpus: ids.iter().map(|&i| GpuId(i)).collect(),
                layers: model.num_layers,
            }],
        )
        .unwrap()
    };
    let plan = DeploymentPlan::new(
        vec![
            group(Phase::Prefill, &[0, 1, 2, 3], 4),
            group(Phase::Decode, &[4, 5], 2),
            group(Phase::Decode, &[6, 7], 2),
        ],
        RoutingMatrix::uniform(1, 2),
    )?;

    // A tight SLO and a 3-second link outage: the burn-rate monitors have
    // something real to report.
    let slo = SloSpec::new(
        SimDuration::from_millis(800),
        SimDuration::from_millis(60),
        SimDuration::from_secs(30),
    );
    let requests = generate(&spec::fixed(1024, 48, 3.0), SimDuration::from_secs(40), 41);
    let script = FaultScript::new(
        vec![
            TimedFault {
                at: SimTime::from_secs_f64(10.0),
                kind: FaultKind::LinkDown {
                    prefill: 0,
                    decode: 0,
                },
            },
            TimedFault {
                at: SimTime::from_secs_f64(13.0),
                kind: FaultKind::LinkUp {
                    prefill: 0,
                    decode: 0,
                },
            },
        ],
        SimDuration::from_millis(100),
    );
    println!(
        "serving {} requests with a link blip at t=10s…\n",
        requests.len()
    );

    // The plane aggregates online as the engine emits events; no trace log
    // is kept (contrast with the `trace_request` example, which records
    // every event for post-hoc forensics).
    let stream_cfg = StreamConfig::new(slo).with_window(SimDuration::from_secs(5));
    let cfg = SimConfig::new(model)
        .with_network_contention(true)
        .with_streaming(stream_cfg);
    let mut sim = Simulation::new(&cluster, &plan, cfg)?;
    let metrics = sim.run_with_faults(&requests, &script)?;
    let snap = sim
        .take_streaming()
        .expect("streaming was enabled")
        .snapshot();

    // -- Counters: lifetime totals and the most recent closed window. ----
    let t = &snap.totals;
    println!(
        "totals: {} arrived, {} finished, {} dropped, {} rejected, {} SLO misses, \
         {} requeues ({} windows closed)",
        t.arrived, t.finished, t.dropped, t.rejected, t.slo_miss, t.requeues, snap.windows_closed,
    );
    if let Some(w) = &snap.last_window {
        println!(
            "last closed window (start {}): {} finished, {} SLO misses",
            w.start, w.finished, w.slo_miss
        );
    }

    // -- Online quantiles vs the engine's own exact records. -------------
    let exact_ttft: Vec<SimDuration> = metrics.records().iter().map(|r| r.ttft()).collect();
    let exact_e2e: Vec<SimDuration> = metrics.records().iter().map(|r| r.e2e()).collect();
    println!("\n{:>22} {:>12} {:>12}", "", "sketch", "exact");
    for (name, sketch, exact) in [
        ("ttft", &snap.ttft, &exact_ttft),
        ("e2e", &snap.e2e, &exact_e2e),
    ] {
        for q in [0.5, 0.99] {
            println!(
                "{:>18} p{:<3} {:>12} {:>12}",
                name,
                (q * 100.0) as u32,
                sketch
                    .quantile_duration(q)
                    .expect("non-empty sketch")
                    .to_string(),
                stats::percentile(exact, q)
                    .expect("non-empty records")
                    .to_string(),
            );
        }
    }
    println!(
        "{:>18} {:>16.1} jobs (EWMA {:.1})",
        "queue depth p99",
        snap.queue_depth.quantile(0.99).unwrap_or(0.0),
        snap.queue_depth_ewma.unwrap_or(0.0),
    );

    // -- SLO burn-rate health. -------------------------------------------
    println!();
    for h in &snap.health {
        let who = match h.tenant {
            None => "fleet".to_string(),
            Some(m) => format!("tenant {m}"),
        };
        println!(
            "health [{who}]: {:?} — fast burn {:.2}, slow burn {:.2} over {} requests",
            h.state, h.fast_burn, h.slow_burn, h.samples
        );
    }
    let summary = snap.health_summary();
    println!(
        "worst state {:?}, peak fast burn {:.2}",
        summary.worst, summary.max_fast_burn
    );

    // -- Exporters: Prometheus text exposition and compact JSON. ---------
    let prom = render_prometheus(&snap);
    let stats = validate_exposition(&prom).expect("exposition must conform");
    println!(
        "\nPrometheus exposition: {} metric families, {} samples",
        stats.families, stats.samples
    );
    match std::env::args().nth(1) {
        Some(path) => {
            std::fs::write(&path, &prom).expect("exposition file must be writable");
            println!("wrote exposition to {path}");
        }
        None => {
            for line in prom.lines().take(12) {
                println!("  {line}");
            }
            println!("  … (pass a path argument to write the full exposition)");
        }
    }
    println!("\ncompact JSON snapshot: {} bytes", snap.to_json().len());
    Ok(())
}
