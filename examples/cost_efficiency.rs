//! Cost-efficiency comparison (the paper's Figure 8 question): what does a
//! dollar buy on the heterogeneous cloud versus an in-house A100 box?
//!
//! ```text
//! cargo run --example cost_efficiency --release
//! ```

use thunderserve::baselines::{DistServePlanner, VllmPlanner};
use thunderserve::prelude::*;
use thunderserve::sim::colocated::ColocatedSimulation;
use thunderserve::workload::generator::generate;
use thunderserve::workload::spec;

fn main() -> thunderserve::Result<()> {
    let cloud = thunderserve::cluster::presets::paper_cloud_cluster();
    let inhouse = thunderserve::cluster::presets::paper_inhouse_cluster();
    let model = ModelSpec::llama_30b();
    let workload = spec::conversation(2.5);
    let slo = SloSpec::new(
        SimDuration::from_millis(2400),
        SimDuration::from_millis(180),
        SimDuration::from_secs(36),
    );
    let trace = generate(&workload, SimDuration::from_secs(180), 5);

    println!(
        "budget: cloud ${:.2}/hr ({} GPUs) vs in-house ${:.2}/hr (8xA100)\n",
        cloud.price_per_hour(),
        cloud.num_gpus(),
        inhouse.price_per_hour()
    );

    // ThunderServe on the cloud.
    let mut cfg = SchedulerConfig::default();
    cfg.seed = 5;
    cfg.n_step = 50;
    let plan = Scheduler::new(cfg)
        .schedule(&cloud, &model, &workload, &slo)?
        .plan;
    let ts = Simulation::new(&cloud, &plan, SimConfig::new(model.clone()))?.run(&trace)?;
    report(
        "ThunderServe (cloud)",
        &cloud.price_per_hour(),
        &ts,
        &slo,
        plan.groups.len(),
    );

    // DistServe-like on the A100 box.
    let ds_plan = DistServePlanner::new().plan(&inhouse, &model, &workload, &slo)?;
    let ds = Simulation::new(
        &inhouse,
        &ds_plan,
        SimConfig::new(model.clone()).with_f16_kv(),
    )?
    .run(&trace)?;
    report(
        "DistServe (in-house)",
        &inhouse.price_per_hour(),
        &ds,
        &slo,
        ds_plan.groups.len(),
    );

    // vLLM-like on the A100 box.
    let groups = VllmPlanner::new().plan(&inhouse, &model)?;
    let n = groups.len();
    let vl = ColocatedSimulation::new(&inhouse, &groups, SimConfig::new(model))?.run(&trace)?;
    report("vLLM (in-house)", &inhouse.price_per_hour(), &vl, &slo, n);

    println!(
        "\nThe cloud rig hosts ~3x the replicas per dollar; under a pure \
         roofline substrate the A100 box retains a raw-bandwidth edge at \
         saturation (see EXPERIMENTS.md for the full discussion)."
    );
    Ok(())
}

fn report(name: &str, price: &f64, m: &Metrics, slo: &SloSpec, replicas: usize) {
    let per_kilo =
        ts_costmodel::price::dollars_per_kilo_token(*price, m.throughput_tokens().max(1e-9));
    println!(
        "{name:22} {replicas:2} replicas | {:6.0} tok/s | ${:.4}/1k tok | joint SLO {:.1}%",
        m.throughput_tokens(),
        per_kilo,
        100.0 * m.joint_attainment(slo)
    );
}
