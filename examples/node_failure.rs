//! Node-failure scenario (the paper's Figure 11): 4 of 32 GPUs go offline
//! mid-service. Compare keeping the plan, lightweight rescheduling and full
//! rescheduling (which blacks out service while weights reload).
//!
//! ```text
//! cargo run --example node_failure --release
//! ```

use thunderserve::cluster::availability::{ClusterEvent, EventKind};
use thunderserve::prelude::*;
use thunderserve::runtime::service::{ReschedulePolicy, ServingRuntime};
use thunderserve::workload::generator::generate;
use thunderserve::workload::spec;

fn pick_failed_node(cluster: &thunderserve::cluster::Cluster, plan: &DeploymentPlan) -> Vec<GpuId> {
    let mut best: Option<(usize, Vec<GpuId>)> = None;
    for node in cluster.nodes() {
        let dead: std::collections::BTreeSet<GpuId> = node.gpus.iter().copied().collect();
        let (mut prefill, mut decode, mut lost) = (0usize, 0usize, 0usize);
        for g in &plan.groups {
            let alive = g.gpus().all(|id| !dead.contains(&id));
            if alive {
                match g.phase {
                    Phase::Prefill => prefill += 1,
                    Phase::Decode => decode += 1,
                }
            } else if g.phase == Phase::Prefill {
                lost += g.num_gpus();
            }
        }
        if node.gpus.len() <= 4
            && prefill >= 1
            && decode >= 1
            && best.as_ref().map(|(s, _)| lost > *s).unwrap_or(true)
        {
            best = Some((lost, node.gpus.clone()));
        }
    }
    best.map(|(_, g)| g)
        .expect("a survivable node failure exists")
}

fn main() -> thunderserve::Result<()> {
    // The catalog's LLaMA-30B coding preset bundles the model with the
    // paper's long-form SLO.
    let tenant = ServedModel::llama_30b_coding(ModelId(0), 1.0)?;
    let (model, slo) = (tenant.spec, tenant.slo);
    let workload = spec::coding(3.0);

    for (name, policy) in [
        ("no rescheduling", ReschedulePolicy::None),
        ("lightweight    ", ReschedulePolicy::Lightweight),
        ("full           ", ReschedulePolicy::Full),
    ] {
        let mut cfg = SchedulerConfig::default();
        cfg.seed = 42;
        cfg.n_step = 50;
        let mut rt = ServingRuntime::new(
            thunderserve::cluster::presets::paper_cloud_cluster(),
            model.clone(),
            slo,
            cfg,
        );
        rt.deploy(&workload)?;
        // Fail a node carrying decode capacity whose loss keeps both phases
        // alive (the paper removes decode replicas without killing service).
        let failed = pick_failed_node(rt.cluster(), rt.plan().unwrap());
        let before = rt
            .serve_segment(&generate(&workload, SimDuration::from_secs(120), 1))?
            .metrics
            .joint_attainment(&slo);
        rt.handle_failure(&failed, &workload, policy)?;
        let seg = rt.serve_segment(&generate(&workload, SimDuration::from_secs(120), 2))?;
        let after = seg.metrics.joint_attainment(&slo);
        println!(
            "{name}: attainment {:.1}% -> {:.1}% | blackout {}",
            100.0 * before,
            100.0 * after,
            seg.blackout
        );
    }
    println!(
        "\nAt this failure scale the zero-cost arms coincide: renormalizing \
         routing over the survivors is enough, and lightweight rescheduling \
         confirms no phase flip improves on it. Full rescheduling finds an \
         equally good plan but pays a ~54s parameter-reload blackout (the \
         paper's Table 4: 13s vs 157s). See the workload_shift example for a \
         case where the lightweight adjustment itself is decisive."
    );

    // ── Mid-flight variant ──────────────────────────────────────────────
    // Above, the failure conveniently falls between two segments. Here the
    // GPUs hosting the busiest prefill replica die 60s INTO a segment, with
    // requests queued and decoding: the engine loses that work, notices one
    // heartbeat timeout later, and (policy permitting) re-routes and
    // re-prefills onto the survivors.
    println!("\nMid-flight failure (same cluster, 4 GPUs die at t=60s):");
    let workload = spec::coding(1.0);
    for (name, policy) in [
        ("no rescheduling", ReschedulePolicy::None),
        ("lightweight    ", ReschedulePolicy::Lightweight),
        ("full           ", ReschedulePolicy::Full),
    ] {
        let mut cfg = SchedulerConfig::default();
        cfg.seed = 42;
        cfg.n_step = 50;
        let mut rt = ServingRuntime::new(
            thunderserve::cluster::presets::paper_cloud_cluster(),
            model.clone(),
            slo,
            cfg,
        );
        rt.deploy(&workload)?;
        let plan = rt.plan().unwrap();
        let prefill_idx = plan.prefill_indices();
        let busiest = (0..prefill_idx.len())
            .max_by(|&a, &b| {
                plan.routing
                    .prefill_share(a)
                    .total_cmp(&plan.routing.prefill_share(b))
            })
            .expect("plan has prefill replicas");
        let doomed: Vec<GpuId> = plan.groups[prefill_idx[busiest]].gpus().take(4).collect();
        let events = vec![ClusterEvent::new(
            SimTime::ZERO + SimDuration::from_secs(60),
            EventKind::GpusDown(doomed),
        )];
        let seg = rt.serve_segment_with_faults(
            &generate(&workload, SimDuration::from_secs(120), 3),
            &events,
            policy,
            &workload,
            SimDuration::from_secs(2),
        )?;
        let m = &seg.metrics;
        println!(
            "{name}: attainment {:.1}% | lost {} | requeued {} | re-prefilled {} toks | \
             time-to-recover {}",
            100.0 * m.joint_attainment(&slo),
            m.num_dropped() + m.num_rejected(),
            m.recovery().requeued_requests,
            m.recovery().reprefilled_tokens,
            m.recovery()
                .max_time_to_recover()
                .map(|d| d.to_string())
                .unwrap_or_else(|| "-".into()),
        );
    }
    println!(
        "\nWithout recovery every request routed to the dead replica is lost \
         until the segment ends. Lightweight recovery re-queues them to the \
         survivors after one heartbeat timeout at zero pause; full \
         rescheduling recovers too but stalls the whole service for the \
         weight reload first."
    );

    // ── Colocated-baseline variant ──────────────────────────────────────
    // Fault handling lives in the shared execution core, so the colocated
    // vLLM-like baseline takes the very same fault scripts. A colocated
    // replica hosts both phases: losing it forfeits its queued prefills AND
    // its decode KV at once.
    println!("\nColocated vLLM-like baseline (one of four replicas dies at t=60s):");
    {
        use thunderserve::baselines::VllmPlanner;
        use thunderserve::sim::colocated::ColocatedSimulation;
        use thunderserve::sim::fault::{FaultKind, FaultScript, TimedFault};

        let cluster = thunderserve::cluster::presets::paper_inhouse_cluster();
        let groups = VllmPlanner::new().plan(&cluster, &model)?;
        let reqs = generate(&spec::conversation(2.0), SimDuration::from_secs(120), 3);
        for (name, recover) in [("no recovery    ", false), ("recovery       ", true)] {
            let script = FaultScript::new(
                vec![TimedFault {
                    at: SimTime::ZERO + SimDuration::from_secs(60),
                    kind: FaultKind::DecodeDown(0),
                }],
                SimDuration::from_secs(2),
            );
            let script = if recover {
                script
            } else {
                script.without_recovery()
            };
            let m = ColocatedSimulation::new(&cluster, &groups, SimConfig::new(model.clone()))?
                .run_with_faults(&reqs, &script)?;
            println!(
                "{name}: completed {}/{} | lost {} | requeued {} | re-prefilled {} toks | \
                 time-to-recover {}",
                m.num_completed(),
                reqs.len(),
                m.num_dropped() + m.num_rejected(),
                m.recovery().requeued_requests,
                m.recovery().reprefilled_tokens,
                m.recovery()
                    .max_time_to_recover()
                    .map(|d| d.to_string())
                    .unwrap_or_else(|| "-".into()),
            );
        }
    }
    println!(
        "\nThe identical RecoveryCounters come out of both engines, so failure \
         behaviour is directly comparable between phase-split serving and the \
         colocated baselines."
    );

    // ── Gray-failure variant ────────────────────────────────────────────
    // The failures above are crash-stop: capacity disappears and heartbeats
    // say so. The dominant cloud failure mode is *gray* — here a decode
    // replica degrades to 6x iteration time at t=30s without dying, so no
    // heartbeat ever fires and rescheduling never engages. Only the
    // mitigation layer (straggler quarantine + hedged re-dispatch) sees it.
    println!("\nGray failure (one decode replica runs 6x slow from t=30s, nobody dies):");
    {
        use thunderserve::common::{RoutingMatrix, StageSpec};
        use thunderserve::sim::engine::Simulation;
        use thunderserve::sim::fault::{FaultKind, FaultScript, TimedFault};

        let cluster = thunderserve::cluster::presets::network_case_cluster(
            thunderserve::cluster::presets::ETH_40GBPS,
        );
        let model = ModelSpec::llama_13b();
        let group = |phase, ids: &[u32]| -> thunderserve::Result<GroupSpec> {
            GroupSpec::new(
                phase,
                ParallelConfig::new(2, 1)?,
                vec![StageSpec {
                    gpus: ids.iter().map(|&i| GpuId(i)).collect(),
                    layers: model.num_layers,
                }],
            )
        };
        let plan = DeploymentPlan::new(
            vec![
                group(Phase::Prefill, &[0, 1])?,
                group(Phase::Prefill, &[2, 3])?,
                group(Phase::Decode, &[4, 5])?,
                group(Phase::Decode, &[6, 7])?,
            ],
            RoutingMatrix::uniform(2, 2),
        )?;
        let reqs = generate(&spec::coding(1.5), SimDuration::from_secs(120), 5);
        let script = FaultScript::new(
            vec![TimedFault {
                at: SimTime::ZERO + SimDuration::from_secs(30),
                kind: FaultKind::DecodeSlow(0, 6.0),
            }],
            SimDuration::from_millis(500),
        );
        let mut p99s = Vec::new();
        for (name, mitigate) in [("hedging off    ", false), ("hedging on     ", true)] {
            let cfg = SimConfig::new(model.clone());
            let cfg = if mitigate {
                cfg.with_straggler_detection(1.5)
                    .with_hedging(SimDuration::from_millis(400))
            } else {
                cfg
            };
            let m = Simulation::new(&cluster, &plan, cfg)?.run_with_faults(&reqs, &script)?;
            let p99 = m
                .latency_percentile(SloKind::E2e, 0.99)
                .expect("completions exist");
            println!(
                "{name}: completed {}/{} | p99 E2E {} | quarantines {} | hedges {} (won {})",
                m.num_completed(),
                reqs.len(),
                p99,
                m.recovery().quarantines,
                m.recovery().hedges_launched,
                m.recovery().hedges_won,
            );
            p99s.push(p99.as_secs_f64());
        }
        println!(
            "\nMitigation cuts the p99 E2E tail by {:.1}x: quarantine routes new \
             work away from the straggler while hedged re-dispatch rescues the \
             requests already stuck behind it — a failure class the crash-stop \
             machinery above is structurally blind to.",
            p99s[0] / p99s[1].max(1e-9),
        );
    }
    Ok(())
}
