//! Node-failure scenario (the paper's Figure 11): 4 of 32 GPUs go offline
//! mid-service. Compare keeping the plan, lightweight rescheduling and full
//! rescheduling (which blacks out service while weights reload).
//!
//! ```text
//! cargo run --example node_failure --release
//! ```

use thunderserve::cluster::availability::{ClusterEvent, EventKind};
use thunderserve::prelude::*;
use thunderserve::runtime::service::{ReschedulePolicy, ServingRuntime};
use thunderserve::workload::generator::generate;
use thunderserve::workload::spec;

fn pick_failed_node(cluster: &thunderserve::cluster::Cluster, plan: &DeploymentPlan) -> Vec<GpuId> {
    let mut best: Option<(usize, Vec<GpuId>)> = None;
    for node in cluster.nodes() {
        let dead: std::collections::BTreeSet<GpuId> = node.gpus.iter().copied().collect();
        let (mut prefill, mut decode, mut lost) = (0usize, 0usize, 0usize);
        for g in &plan.groups {
            let alive = g.gpus().all(|id| !dead.contains(&id));
            if alive {
                match g.phase {
                    Phase::Prefill => prefill += 1,
                    Phase::Decode => decode += 1,
                }
            } else if g.phase == Phase::Prefill {
                lost += g.num_gpus();
            }
        }
        if node.gpus.len() <= 4
            && prefill >= 1
            && decode >= 1
            && best.as_ref().map(|(s, _)| lost > *s).unwrap_or(true)
        {
            best = Some((lost, node.gpus.clone()));
        }
    }
    best.map(|(_, g)| g)
        .expect("a survivable node failure exists")
}

fn main() -> thunderserve::Result<()> {
    let model = ModelSpec::llama_30b();
    let slo = SloSpec::new(
        SimDuration::from_millis(3200),
        SimDuration::from_millis(240),
        SimDuration::from_secs(48),
    );
    let workload = spec::coding(3.0);

    for (name, policy) in [
        ("no rescheduling", ReschedulePolicy::None),
        ("lightweight    ", ReschedulePolicy::Lightweight),
        ("full           ", ReschedulePolicy::Full),
    ] {
        let mut cfg = SchedulerConfig::default();
        cfg.seed = 42;
        cfg.n_step = 50;
        let mut rt = ServingRuntime::new(
            thunderserve::cluster::presets::paper_cloud_cluster(),
            model.clone(),
            slo,
            cfg,
        );
        rt.deploy(&workload)?;
        // Fail a node carrying decode capacity whose loss keeps both phases
        // alive (the paper removes decode replicas without killing service).
        let failed = pick_failed_node(rt.cluster(), rt.plan().unwrap());
        let before = rt
            .serve_segment(&generate(&workload, SimDuration::from_secs(120), 1))?
            .metrics
            .joint_attainment(&slo);
        rt.handle_failure(&failed, &workload, policy)?;
        let seg = rt.serve_segment(&generate(&workload, SimDuration::from_secs(120), 2))?;
        let after = seg.metrics.joint_attainment(&slo);
        println!(
            "{name}: attainment {:.1}% -> {:.1}% | blackout {}",
            100.0 * before,
            100.0 * after,
            seg.blackout
        );
    }
    println!(
        "\nAt this failure scale the zero-cost arms coincide: renormalizing \
         routing over the survivors is enough, and lightweight rescheduling \
         confirms no phase flip improves on it. Full rescheduling finds an \
         equally good plan but pays a ~54s parameter-reload blackout (the \
         paper's Table 4: 13s vs 157s). See the workload_shift example for a \
         case where the lightweight adjustment itself is decisive."
    );

    // ── Mid-flight variant ──────────────────────────────────────────────
    // Above, the failure conveniently falls between two segments. Here the
    // GPUs hosting the busiest prefill replica die 60s INTO a segment, with
    // requests queued and decoding: the engine loses that work, notices one
    // heartbeat timeout later, and (policy permitting) re-routes and
    // re-prefills onto the survivors.
    println!("\nMid-flight failure (same cluster, 4 GPUs die at t=60s):");
    let workload = spec::coding(1.0);
    for (name, policy) in [
        ("no rescheduling", ReschedulePolicy::None),
        ("lightweight    ", ReschedulePolicy::Lightweight),
        ("full           ", ReschedulePolicy::Full),
    ] {
        let mut cfg = SchedulerConfig::default();
        cfg.seed = 42;
        cfg.n_step = 50;
        let mut rt = ServingRuntime::new(
            thunderserve::cluster::presets::paper_cloud_cluster(),
            model.clone(),
            slo,
            cfg,
        );
        rt.deploy(&workload)?;
        let plan = rt.plan().unwrap();
        let prefill_idx = plan.prefill_indices();
        let busiest = (0..prefill_idx.len())
            .max_by(|&a, &b| {
                plan.routing
                    .prefill_share(a)
                    .total_cmp(&plan.routing.prefill_share(b))
            })
            .expect("plan has prefill replicas");
        let doomed: Vec<GpuId> = plan.groups[prefill_idx[busiest]].gpus().take(4).collect();
        let events = vec![ClusterEvent::new(
            SimTime::ZERO + SimDuration::from_secs(60),
            EventKind::GpusDown(doomed),
        )];
        let seg = rt.serve_segment_with_faults(
            &generate(&workload, SimDuration::from_secs(120), 3),
            &events,
            policy,
            &workload,
            SimDuration::from_secs(2),
        )?;
        let m = &seg.metrics;
        println!(
            "{name}: attainment {:.1}% | lost {} | requeued {} | re-prefilled {} toks | \
             time-to-recover {}",
            100.0 * m.joint_attainment(&slo),
            m.num_dropped() + m.num_rejected(),
            m.recovery().requeued_requests,
            m.recovery().reprefilled_tokens,
            m.recovery()
                .max_time_to_recover()
                .map(|d| d.to_string())
                .unwrap_or_else(|| "-".into()),
        );
    }
    println!(
        "\nWithout recovery every request routed to the dead replica is lost \
         until the segment ends. Lightweight recovery re-queues them to the \
         survivors after one heartbeat timeout at zero pause; full \
         rescheduling recovers too but stalls the whole service for the \
         weight reload first."
    );

    // ── Colocated-baseline variant ──────────────────────────────────────
    // Fault handling lives in the shared execution core, so the colocated
    // vLLM-like baseline takes the very same fault scripts. A colocated
    // replica hosts both phases: losing it forfeits its queued prefills AND
    // its decode KV at once.
    println!("\nColocated vLLM-like baseline (one of four replicas dies at t=60s):");
    {
        use thunderserve::baselines::VllmPlanner;
        use thunderserve::sim::colocated::ColocatedSimulation;
        use thunderserve::sim::fault::{FaultKind, FaultScript, TimedFault};

        let cluster = thunderserve::cluster::presets::paper_inhouse_cluster();
        let groups = VllmPlanner::new().plan(&cluster, &model)?;
        let reqs = generate(&spec::conversation(2.0), SimDuration::from_secs(120), 3);
        for (name, recover) in [("no recovery    ", false), ("recovery       ", true)] {
            let script = FaultScript::new(
                vec![TimedFault {
                    at: SimTime::ZERO + SimDuration::from_secs(60),
                    kind: FaultKind::DecodeDown(0),
                }],
                SimDuration::from_secs(2),
            );
            let script = if recover {
                script
            } else {
                script.without_recovery()
            };
            let m = ColocatedSimulation::new(&cluster, &groups, SimConfig::new(model.clone()))?
                .run_with_faults(&reqs, &script)?;
            println!(
                "{name}: completed {}/{} | lost {} | requeued {} | re-prefilled {} toks | \
                 time-to-recover {}",
                m.num_completed(),
                reqs.len(),
                m.num_dropped() + m.num_rejected(),
                m.recovery().requeued_requests,
                m.recovery().reprefilled_tokens,
                m.recovery()
                    .max_time_to_recover()
                    .map(|d| d.to_string())
                    .unwrap_or_else(|| "-".into()),
            );
        }
    }
    println!(
        "\nThe identical RecoveryCounters come out of both engines, so failure \
         behaviour is directly comparable between phase-split serving and the \
         colocated baselines."
    );
    Ok(())
}
