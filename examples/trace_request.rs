//! Request-lifecycle tracing: serve a short segment with a mid-flight link
//! fault, then reconstruct the full event timeline of the worst-latency
//! request — queue wait, KV transfer retries, recovery — from the trace.
//!
//! ```text
//! cargo run --example trace_request --release
//! ```
//!
//! Pass a path argument to additionally export the whole run as Chrome
//! trace-event JSON, viewable at <https://ui.perfetto.dev>.

use thunderserve::prelude::*;
use thunderserve::sim::{FaultKind, FaultScript, TimedFault};
use thunderserve::telemetry::Role;
use thunderserve::workload::generator::generate;
use thunderserve::workload::spec;
use ts_common::{GroupSpec, ParallelConfig, Phase, RoutingMatrix, SimTime, StageSpec};

fn main() -> thunderserve::Result<()> {
    // 4xA40 prefill + two 2x3090Ti decode replicas on a slow 5 Gbps fabric:
    // KV transfers genuinely queue and contend.
    let cluster = thunderserve::cluster::presets::network_case_cluster(
        thunderserve::cluster::presets::ETH_5GBPS,
    );
    let model = ModelSpec::llama_13b();
    let group = |phase, ids: &[u32], tp: usize| {
        GroupSpec::new(
            phase,
            ParallelConfig::new(tp, 1).unwrap(),
            vec![StageSpec {
                gpus: ids.iter().map(|&i| GpuId(i)).collect(),
                layers: model.num_layers,
            }],
        )
        .unwrap()
    };
    let plan = DeploymentPlan::new(
        vec![
            group(Phase::Prefill, &[0, 1, 2, 3], 4),
            group(Phase::Decode, &[4, 5], 2),
            group(Phase::Decode, &[6, 7], 2),
        ],
        RoutingMatrix::uniform(1, 2),
    )?;

    // A ~50-request segment; the prefill→decode-0 link dies mid-flight and
    // heals three seconds later, so some transfers retry with backoff.
    let requests = generate(&spec::fixed(1024, 48, 2.5), SimDuration::from_secs(20), 41);
    println!(
        "serving {} requests with a link blip at t=6s…",
        requests.len()
    );
    let script = FaultScript::new(
        vec![
            TimedFault {
                at: SimTime::from_secs_f64(6.0),
                kind: FaultKind::LinkDown {
                    prefill: 0,
                    decode: 0,
                },
            },
            TimedFault {
                at: SimTime::from_secs_f64(9.0),
                kind: FaultKind::LinkUp {
                    prefill: 0,
                    decode: 0,
                },
            },
        ],
        SimDuration::from_millis(100),
    );

    let cfg = SimConfig::new(model)
        .with_network_contention(true)
        .with_telemetry(true);
    let mut sim = Simulation::new(&cluster, &plan, cfg)?;
    let metrics = sim.run_with_faults(&requests, &script)?;
    let log = sim.take_trace().expect("telemetry was enabled");

    println!(
        "completed {}/{} requests, {} KV-transfer retries, {} trace events\n",
        metrics.num_completed(),
        requests.len(),
        metrics.recovery().kv_transfer_retries,
        log.len(),
    );

    // The request the fault hurt the most, with its complete journey.
    let worst = metrics
        .records()
        .iter()
        .max_by_key(|r| (r.e2e(), r.request.id))
        .expect("at least one request completed");
    let span = log.request_span(worst.request.id).expect("span exists");
    println!(
        "worst request {}: e2e {}, ttft {}, kv queue wait {}, kv wire time {}, \
         {} kv retries",
        worst.request.id,
        worst.e2e(),
        worst.ttft(),
        span.kv_queue_wait(),
        span.kv_wire_time(),
        span.kv_retries,
    );
    println!("{}", log.render_request_timeline(worst.request.id));

    // What the replicas and the fabric looked like meanwhile.
    let end = log.end();
    for (role, replica) in log.replicas() {
        if role != Role::Decode {
            continue;
        }
        let batch = log.batch_occupancy_series(role, replica);
        println!(
            "decode replica {replica}: mean batch occupancy {:.1}, peak {:.0}",
            batch.time_weighted_mean(end),
            batch.peak(),
        );
    }
    for (link, kind, capacity) in log.links() {
        let util = log.link_utilization_series(link);
        if util.peak() > 0.0 {
            println!(
                "link {link} ({kind}, {:.0} MB/s): mean utilization {:.1}%, peak {:.1}%",
                capacity / 1e6,
                100.0 * util.time_weighted_mean(end),
                100.0 * util.peak(),
            );
        }
    }

    if let Some(path) = std::env::args().nth(1) {
        let json = thunderserve::telemetry::chrome::export(&log);
        thunderserve::telemetry::validate_chrome_trace(&json)
            .expect("exported trace must validate");
        std::fs::write(&path, &json).expect("trace file must be writable");
        println!("\nwrote Chrome trace to {path} — open in https://ui.perfetto.dev");
    }
    Ok(())
}
