//! Workload-shift scenario: a cloud deployment tuned for the conversation
//! workload (decode-heavy) sees traffic turn into coding (long prompts,
//! 13-token outputs). The stale plan starves on prefill capacity; the
//! workload profiler flags the shift and lightweight rescheduling flips
//! phase designations without reloading any weights.
//!
//! ```text
//! cargo run --example workload_shift --release
//! ```

use thunderserve::prelude::*;
use thunderserve::runtime::service::{ReschedulePolicy, ServingRuntime};
use thunderserve::workload::generator::generate;
use thunderserve::workload::spec;

fn main() -> thunderserve::Result<()> {
    let cluster = thunderserve::cluster::presets::paper_cloud_cluster();
    // The catalog's LLaMA-30B coding preset bundles the model with the
    // paper's long-form SLO.
    let tenant = ServedModel::llama_30b_coding(ModelId(0), 1.0)?;
    let (model, slo) = (tenant.spec, tenant.slo);
    let mut cfg = SchedulerConfig::default();
    cfg.seed = 11;
    cfg.n_step = 50;

    let conversation = spec::conversation(2.0);
    let coding = spec::coding(3.0);

    let mut rt = ServingRuntime::new(cluster, model, slo, cfg);
    rt.deploy(&conversation)?;
    let (p, d) = rt.plan().unwrap().phase_ratio();
    println!("deployed for conversation: {p} prefill : {d} decode replicas");

    // Phase 1: conversation traffic; baseline the profiler on it.
    let seg1 = rt.serve_segment(&generate(&conversation, SimDuration::from_secs(120), 1))?;
    rt.rebaseline();
    println!(
        "conversation segment: joint attainment {:.1}%",
        100.0 * seg1.metrics.joint_attainment(&slo)
    );

    // Phase 2: traffic shifts to coding under the stale plan.
    let coding_trace = generate(&coding, SimDuration::from_secs(120), 2);
    let seg2 = rt.serve_segment(&coding_trace)?;
    println!(
        "coding under stale plan: joint attainment {:.1}% (profiler shift detected: {})",
        100.0 * seg2.metrics.joint_attainment(&slo),
        rt.shift_detected()
    );

    // Phase 3: lightweight rescheduling — flips phases + re-orchestrates,
    // zero parameter reload.
    rt.reschedule(&coding, ReschedulePolicy::Lightweight)?;
    let (p2, d2) = rt.plan().unwrap().phase_ratio();
    let last = &rt.resched_log.last().unwrap().1;
    println!(
        "lightweight reschedule: now {p2} prefill : {d2} decode replicas \
         (search {:.3}s, reload {})",
        last.search_time, last.reload_time
    );
    let seg3 = rt.serve_segment(&coding_trace)?;
    println!(
        "coding after lightweight reschedule: joint attainment {:.1}%",
        100.0 * seg3.metrics.joint_attainment(&slo)
    );
    Ok(())
}
